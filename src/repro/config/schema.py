"""Architecture configuration schema.

Mirrors the paper's *architecture configuration file*: architectural
resources, hardware performance parameters, interconnection parameters and
simulator settings (Fig. 1).  The configuration is a tree of frozen-ish
dataclasses that can be loaded from / saved to JSON, validated, and handed
to both the compiler (resource shape) and the simulator (timing/energy).

All times are in core clock cycles; energies in picojoules; the clock
frequency converts cycles to wall-clock time for power reporting.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "CrossbarConfig",
    "CoreConfig",
    "ChipConfig",
    "NocConfig",
    "EnergyConfig",
    "CompilerConfig",
    "SimSettings",
    "ArchConfig",
    "ConfigError",
    "FIDELITIES",
    "SHARD_PLACEMENTS",
]


class ConfigError(ValueError):
    """Raised when a configuration fails validation."""


@dataclass
class CrossbarConfig:
    """One memristor crossbar and its converters.

    The matrix-vector multiplication latency is derived from the converter
    micro-parameters unless ``mvm_latency_cycles`` is set explicitly:
    the input vector is streamed in ``input_bits / dac_bits`` phases, and in
    each phase the ``adcs_per_crossbar`` ADCs scan the ``cols`` bitlines.
    """

    rows: int = 128
    cols: int = 128
    cell_bits: int = 2
    #: weight precision; with ``bit_sliced`` each logical weight column
    #: spreads over ceil(weight_bits / cell_bits) physical columns whose
    #: partial products are shift-added digitally (PUMA/MNSIM-style).
    weight_bits: int = 8
    bit_sliced: bool = False
    input_bits: int = 8
    dac_bits: int = 1
    adc_bits: int = 8
    adcs_per_crossbar: int = 8
    adc_cycles_per_sample: int = 1
    #: explicit override for the per-crossbar MVM latency (cycles).
    mvm_latency_cycles: int | None = None

    @property
    def dac_phases(self) -> int:
        """Number of bit-serial input phases for a full-precision input."""
        return math.ceil(self.input_bits / self.dac_bits)

    @property
    def slices_per_weight(self) -> int:
        """Physical columns per logical weight column (1 when not sliced)."""
        if not self.bit_sliced:
            return 1
        return math.ceil(self.weight_bits / self.cell_bits)

    @property
    def samples_per_phase(self) -> int:
        """ADC conversions needed to read out all columns once."""
        return math.ceil(self.cols / self.adcs_per_crossbar)

    def mvm_cycles(self) -> int:
        """Latency in cycles of one crossbar MVM (one input vector)."""
        if self.mvm_latency_cycles is not None:
            return self.mvm_latency_cycles
        return self.dac_phases * self.samples_per_phase * self.adc_cycles_per_sample


@dataclass
class CoreConfig:
    """Per-core resources: execution units, ROB, queues, local memory."""

    crossbars_per_core: int = 512
    rob_size: int = 8
    fetch_width: int = 1
    decode_cycles: int = 1
    dispatch_cycles: int = 1
    unit_queue_depth: int = 4
    vector_lanes: int = 32
    vector_issue_cycles: int = 1
    #: per-element cycle cost of transcendental-heavy vector ops
    #: (softmax / layernorm / gelu): each element runs an exp / rsqrt /
    #: erf micro-pipeline instead of one ALU op.
    vector_special_cycles_per_element: int = 4
    scalar_cycles: int = 1
    local_memory_bytes: int = 2 * 1024 * 1024
    local_memory_read_bytes_per_cycle: int = 64
    local_memory_write_bytes_per_cycle: int = 64
    #: number of ADC time-multiplex domains shared across the core's
    #: crossbars; 0 means no core-level ADC sharing constraint (each
    #: crossbar's own converters bound the rate).
    shared_adc_domains: int = 0


@dataclass
class ChipConfig:
    """Chip-level layout: mesh of cores plus a global memory node."""

    mesh_rows: int = 8
    mesh_cols: int = 8
    #: mesh coordinate of the global-memory access point.
    global_memory_xy: tuple[int, int] = (0, 0)
    global_memory_bytes_per_cycle: int = 32
    global_memory_latency_cycles: int = 100

    @property
    def n_cores(self) -> int:
        return self.mesh_rows * self.mesh_cols


@dataclass
class NocConfig:
    """Mesh interconnect parameters."""

    hop_cycles: int = 2
    flit_bytes: int = 32
    link_bytes_per_cycle: int = 32
    #: per-flow credit window (in messages) for synchronized transfers;
    #: 1 degenerates to strict rendezvous.
    sync_window: int = 4
    #: model per-link contention (serialize messages sharing a link).
    model_contention: bool = True


@dataclass
class EnergyConfig:
    """Per-operation energies (picojoules) and static power (milliwatts)."""

    xbar_read_pj_per_cell: float = 0.0002
    dac_pj_per_conversion: float = 0.1
    adc_pj_per_sample: float = 2.0
    vector_pj_per_element: float = 0.5
    #: transcendental-heavy vector ops (softmax / layernorm / gelu).
    vector_special_pj_per_element: float = 2.5
    #: one multiply-accumulate on the vector unit (dynamic matmuls that
    #: cannot live in crossbars: attention scores / context products).
    vector_mac_pj: float = 0.8
    scalar_pj_per_op: float = 0.1
    local_mem_pj_per_byte: float = 0.6
    global_mem_pj_per_byte: float = 12.0
    noc_pj_per_byte_hop: float = 1.2
    core_leakage_mw: float = 2.0
    chip_leakage_mw: float = 30.0


@dataclass
class CompilerConfig:
    """Software-side knobs (Section III-A)."""

    #: "utilization_first" or "performance_first".
    mapping: str = "performance_first"
    #: allow weight duplication to fill spare crossbars (performance-first).
    allow_duplication: bool = True
    #: cap on copies of one layer per core.
    max_duplication: int = 16
    #: output pixels per compute tile (codegen granularity).
    tile_pixels: int = 8
    #: fuse activation (and pooling) into the producing conv/fc stage.
    operator_fusion: bool = True
    #: bytes per activation element (fixed-point width).
    activation_bytes: int = 1
    #: shard each dynamic attention op's token range across this many
    #: cores (VMATMUL / per-head VSOFTMAX / VLAYERNORM / VGELU streams
    #: with partial gathers back to the home core); 1 = home-core only,
    #: the classic lowering.
    attention_shards: int = 1
    #: how shard-group cores are chosen: one of :data:`SHARD_PLACEMENTS`.
    #: ``"distance"`` (the default, bit-identical to the classic PR 4
    #: behaviour) takes the home core's nearest mesh neighbours;
    #: ``"load_aware"`` additionally penalizes cores already hot with
    #: static crossbar work, trading up to one extra hop to shard onto
    #: an idle core.
    shard_placement: str = "distance"


#: Valid execution fidelities: ``"cycle"`` is the bit-exact event-driven
#: simulator; ``"fast"`` batch-executes straight-line instruction runs
#: analytically (bounded-error, validated by ``tools/check_fidelity.py``).
FIDELITIES = ("cycle", "fast")

#: Valid shard-group placement policies: ``"distance"`` picks the home
#: core's nearest mesh neighbours (Manhattan distance, core-id
#: tie-break); ``"load_aware"`` adds a per-core static-crossbar-load
#: penalty so hot cores are skipped when an idle one is nearby.
SHARD_PLACEMENTS = ("distance", "load_aware")


@dataclass
class SimSettings:
    """Simulator settings block of the configuration file."""

    frequency_mhz: float = 1000.0
    max_cycles: int | None = None
    collect_unit_stats: bool = True
    trace: bool = False
    #: execution fidelity: one of :data:`FIDELITIES`.  ``"cycle"`` (the
    #: default) is the cycle-accurate event simulator; ``"fast"`` is the
    #: batched analytic executor (ROADMAP 3a) — same programs, same
    #: energy accounting, cycle counts within the check_fidelity gate's
    #: bound instead of bit-exact.
    fidelity: str = "cycle"

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / (self.frequency_mhz * 1e6)


@dataclass
class ArchConfig:
    """Root of the architecture configuration file."""

    chip: ChipConfig = field(default_factory=ChipConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    noc: NocConfig = field(default_factory=NocConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    compiler: CompilerConfig = field(default_factory=CompilerConfig)
    sim: SimSettings = field(default_factory=SimSettings)
    name: str = "unnamed"

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Export the full configuration as a plain nested dict."""
        return dataclasses.asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, data: dict) -> "ArchConfig":
        """Build a configuration from a nested dict, rejecting unknown keys."""
        return _from_dict(cls, data, context="ArchConfig")

    @classmethod
    def from_json(cls, text: str) -> "ArchConfig":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str | Path) -> "ArchConfig":
        return cls.from_json(Path(path).read_text())

    # -- convenience ---------------------------------------------------------

    def core_xy(self, core_id: int) -> tuple[int, int]:
        """Mesh coordinate of a core id (row-major layout)."""
        if not 0 <= core_id < self.chip.n_cores:
            raise ConfigError(f"core id {core_id} out of range 0..{self.chip.n_cores - 1}")
        return divmod(core_id, self.chip.mesh_cols)

    def replaced(self, **top_level: Any) -> "ArchConfig":
        """Copy with top-level sections replaced (e.g. ``core=...``)."""
        return dataclasses.replace(self, **top_level)

    def with_rob_size(self, rob_size: int) -> "ArchConfig":
        """Copy with only the ROB capacity changed (Fig. 4 sweep helper)."""
        return self.replaced(core=dataclasses.replace(self.core, rob_size=rob_size))

    def with_mapping(self, mapping: str) -> "ArchConfig":
        """Copy with only the mapping policy changed (Fig. 3 sweep helper)."""
        return self.replaced(compiler=dataclasses.replace(self.compiler, mapping=mapping))

    def with_attention_shards(self, attention_shards: int) -> "ArchConfig":
        """Copy with only the attention shard count changed (PR 4 knob)."""
        return self.replaced(compiler=dataclasses.replace(
            self.compiler, attention_shards=attention_shards))

    def with_shard_placement(self, shard_placement: str) -> "ArchConfig":
        """Copy with only the shard-placement policy changed (tuner knob)."""
        return self.replaced(compiler=dataclasses.replace(
            self.compiler, shard_placement=shard_placement))

    def with_fidelity(self, fidelity: str) -> "ArchConfig":
        """Copy with only the execution fidelity changed (ROADMAP 3a knob)."""
        return self.replaced(sim=dataclasses.replace(self.sim, fidelity=fidelity))


def _from_dict(cls: type, data: Any, context: str) -> Any:
    """Recursively instantiate a dataclass tree from nested dicts."""
    if not dataclasses.is_dataclass(cls):
        return data
    if not isinstance(data, dict):
        raise ConfigError(f"{context}: expected an object, got {type(data).__name__}")
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(data) - set(fields)
    if unknown:
        raise ConfigError(f"{context}: unknown keys {sorted(unknown)}")
    kwargs = {}
    for key, value in data.items():
        ftype = fields[key].type
        nested = _DATACLASS_FIELDS.get((cls.__name__, key))
        if nested is not None:
            kwargs[key] = _from_dict(nested, value, context=f"{context}.{key}")
        elif key == "global_memory_xy" and isinstance(value, list):
            kwargs[key] = tuple(value)
        else:
            kwargs[key] = value
        del ftype
    return cls(**kwargs)


#: map of (owner dataclass, field name) -> nested dataclass type, used by the
#: JSON loader.  Kept explicit so loading never relies on typing introspection.
_DATACLASS_FIELDS: dict[tuple[str, str], type] = {
    ("ArchConfig", "chip"): ChipConfig,
    ("ArchConfig", "core"): CoreConfig,
    ("ArchConfig", "crossbar"): CrossbarConfig,
    ("ArchConfig", "noc"): NocConfig,
    ("ArchConfig", "energy"): EnergyConfig,
    ("ArchConfig", "compiler"): CompilerConfig,
    ("ArchConfig", "sim"): SimSettings,
}
