"""Ready-made architecture configurations.

``paper_chip`` is the configuration used throughout the paper's evaluation
(Section IV-A): 64 cores, 512 crossbars per core, 128x128 crossbars, one
shared ADC domain per crossbar array.  ``small_chip`` and ``tiny_chip`` are
scaled-down variants used by tests and fast examples.
"""

from __future__ import annotations

import dataclasses

from .schema import (
    ArchConfig,
    ChipConfig,
    CompilerConfig,
    CoreConfig,
    CrossbarConfig,
    NocConfig,
)
from .validate import validate

__all__ = ["paper_chip", "small_chip", "tiny_chip", "mnsim_like_chip", "PRESETS", "get_preset"]


def paper_chip(*, rob_size: int = 8, mapping: str = "performance_first") -> ArchConfig:
    """The 64-core chip of Section IV-A.

    "The simulator is set to a chip consisting of 64 cores, and each core
    has 512 crossbars, whose size is 128x128, sharing with one ADC."
    """
    return validate(ArchConfig(
        name="paper-64core",
        chip=ChipConfig(mesh_rows=8, mesh_cols=8),
        core=CoreConfig(crossbars_per_core=512, rob_size=rob_size),
        crossbar=CrossbarConfig(rows=128, cols=128),
        compiler=CompilerConfig(mapping=mapping),
    ))


def small_chip(*, rob_size: int = 8, mapping: str = "performance_first") -> ArchConfig:
    """A 16-core chip for fast end-to-end runs (tests, quickstart)."""
    return validate(ArchConfig(
        name="small-16core",
        chip=ChipConfig(mesh_rows=4, mesh_cols=4),
        core=CoreConfig(crossbars_per_core=128, rob_size=rob_size),
        crossbar=CrossbarConfig(rows=128, cols=128),
        compiler=CompilerConfig(mapping=mapping, tile_pixels=16),
    ))


def tiny_chip(*, rob_size: int = 4, mapping: str = "performance_first") -> ArchConfig:
    """A 4-core chip for unit tests; tiny queues keep event counts small."""
    return validate(ArchConfig(
        name="tiny-4core",
        chip=ChipConfig(mesh_rows=2, mesh_cols=2),
        core=CoreConfig(crossbars_per_core=32, rob_size=rob_size,
                        local_memory_bytes=64 * 1024),
        crossbar=CrossbarConfig(rows=64, cols=64),
        compiler=CompilerConfig(mapping=mapping, tile_pixels=16, max_duplication=4),
    ))


def mnsim_like_chip(*, mapping: str = "performance_first") -> ArchConfig:
    """Configuration for the Fig. 5 comparison.

    Same crossbar timing parameters are fed to both our cycle-accurate
    simulator and the MNSIM2.0-style behaviour-level baseline, mirroring
    "using the same crossbar configuration extracting from it".
    """
    return validate(ArchConfig(
        name="mnsim-compare",
        chip=ChipConfig(mesh_rows=8, mesh_cols=8),
        core=CoreConfig(crossbars_per_core=512, rob_size=8),
        crossbar=CrossbarConfig(rows=128, cols=128),
        # Narrow links put the chip in the communication-bound regime
        # the paper (and its ref. [5]) report: comm is a large share of
        # inference latency, which is what separates synchronized
        # transfers from MNSIM2.0's ideal-async model on join-heavy nets.
        noc=NocConfig(hop_cycles=4, link_bytes_per_cycle=2, flit_bytes=8,
                      sync_window=2),
        compiler=CompilerConfig(mapping=mapping),
    ))


PRESETS = {
    "paper": paper_chip,
    "small": small_chip,
    "tiny": tiny_chip,
    "mnsim": mnsim_like_chip,
}


def get_preset(name: str, **kwargs) -> ArchConfig:
    """Look up a preset factory by name and instantiate it."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
    return factory(**kwargs)


def scaled(config: ArchConfig, *, cores: int | None = None,
           crossbars_per_core: int | None = None) -> ArchConfig:
    """Return a copy of ``config`` with chip resources rescaled.

    ``cores`` must be a perfect square (the mesh stays square).
    """
    chip = config.chip
    if cores is not None:
        side = int(round(cores ** 0.5))
        if side * side != cores:
            raise ValueError(f"cores must be a perfect square, got {cores}")
        chip = dataclasses.replace(chip, mesh_rows=side, mesh_cols=side)
    core = config.core
    if crossbars_per_core is not None:
        core = dataclasses.replace(core, crossbars_per_core=crossbars_per_core)
    return validate(dataclasses.replace(config, chip=chip, core=core))
