"""Architecture configuration files (schema, validation, presets)."""

from .presets import (
    PRESETS,
    get_preset,
    mnsim_like_chip,
    paper_chip,
    scaled,
    small_chip,
    tiny_chip,
)
from .schema import (
    FIDELITIES,
    SHARD_PLACEMENTS,
    ArchConfig,
    ChipConfig,
    CompilerConfig,
    ConfigError,
    CoreConfig,
    CrossbarConfig,
    EnergyConfig,
    NocConfig,
    SimSettings,
)
from .validate import validate

__all__ = [
    "ArchConfig",
    "ChipConfig",
    "CoreConfig",
    "CrossbarConfig",
    "NocConfig",
    "EnergyConfig",
    "CompilerConfig",
    "SimSettings",
    "ConfigError",
    "FIDELITIES",
    "SHARD_PLACEMENTS",
    "validate",
    "paper_chip",
    "small_chip",
    "tiny_chip",
    "mnsim_like_chip",
    "scaled",
    "PRESETS",
    "get_preset",
]
