"""Semantic validation of architecture configurations.

:func:`validate` raises :class:`~repro.config.schema.ConfigError` with a
message naming every violated constraint, so a bad configuration file fails
loudly before any compilation or simulation starts.
"""

from __future__ import annotations

from .schema import FIDELITIES, SHARD_PLACEMENTS, ArchConfig, ConfigError

__all__ = ["validate"]


def _positive(errors: list[str], section: str, **values: float) -> None:
    for key, value in values.items():
        if value <= 0:
            errors.append(f"{section}.{key} must be positive, got {value}")


def _non_negative(errors: list[str], section: str, **values: float) -> None:
    for key, value in values.items():
        if value < 0:
            errors.append(f"{section}.{key} must be >= 0, got {value}")


def validate(config: ArchConfig) -> ArchConfig:
    """Check every cross-field constraint; return the config on success."""
    errors: list[str] = []
    chip, core, xbar = config.chip, config.core, config.crossbar
    noc, energy, comp, sim = config.noc, config.energy, config.compiler, config.sim

    _positive(errors, "chip", mesh_rows=chip.mesh_rows, mesh_cols=chip.mesh_cols,
              global_memory_bytes_per_cycle=chip.global_memory_bytes_per_cycle)
    _non_negative(errors, "chip",
                  global_memory_latency_cycles=chip.global_memory_latency_cycles)
    gx, gy = chip.global_memory_xy
    if not (0 <= gx < chip.mesh_rows and 0 <= gy < chip.mesh_cols):
        errors.append(
            f"chip.global_memory_xy {chip.global_memory_xy} outside the "
            f"{chip.mesh_rows}x{chip.mesh_cols} mesh"
        )

    _positive(errors, "core", crossbars_per_core=core.crossbars_per_core,
              rob_size=core.rob_size, fetch_width=core.fetch_width,
              unit_queue_depth=core.unit_queue_depth, vector_lanes=core.vector_lanes,
              vector_special_cycles_per_element=core.vector_special_cycles_per_element,
              local_memory_bytes=core.local_memory_bytes,
              local_memory_read_bytes_per_cycle=core.local_memory_read_bytes_per_cycle,
              local_memory_write_bytes_per_cycle=core.local_memory_write_bytes_per_cycle)
    _non_negative(errors, "core", decode_cycles=core.decode_cycles,
                  dispatch_cycles=core.dispatch_cycles,
                  scalar_cycles=core.scalar_cycles,
                  shared_adc_domains=core.shared_adc_domains)

    _positive(errors, "crossbar", rows=xbar.rows, cols=xbar.cols,
              cell_bits=xbar.cell_bits, input_bits=xbar.input_bits,
              weight_bits=xbar.weight_bits,
              dac_bits=xbar.dac_bits, adc_bits=xbar.adc_bits,
              adcs_per_crossbar=xbar.adcs_per_crossbar,
              adc_cycles_per_sample=xbar.adc_cycles_per_sample)
    if xbar.bit_sliced and xbar.slices_per_weight > xbar.cols:
        errors.append(
            f"crossbar.bit_sliced: one weight needs {xbar.slices_per_weight} "
            f"columns but the crossbar has only {xbar.cols}"
        )
    if xbar.mvm_latency_cycles is not None and xbar.mvm_latency_cycles <= 0:
        errors.append(
            f"crossbar.mvm_latency_cycles must be positive when set, "
            f"got {xbar.mvm_latency_cycles}"
        )
    if xbar.dac_bits > xbar.input_bits:
        errors.append(
            f"crossbar.dac_bits ({xbar.dac_bits}) exceeds input_bits "
            f"({xbar.input_bits})"
        )
    if xbar.adcs_per_crossbar > xbar.cols:
        errors.append(
            f"crossbar.adcs_per_crossbar ({xbar.adcs_per_crossbar}) exceeds "
            f"cols ({xbar.cols})"
        )

    _positive(errors, "noc", hop_cycles=noc.hop_cycles, flit_bytes=noc.flit_bytes,
              link_bytes_per_cycle=noc.link_bytes_per_cycle,
              sync_window=noc.sync_window)
    if noc.sync_window < 2:
        errors.append(
            f"noc.sync_window must be >= 2 (co-resident producer/consumer "
            f"ring safety; see DESIGN.md), got {noc.sync_window}"
        )

    for key, value in vars(energy).items():
        if value < 0:
            errors.append(f"energy.{key} must be >= 0, got {value}")

    if comp.mapping not in ("utilization_first", "performance_first"):
        errors.append(
            f"compiler.mapping must be 'utilization_first' or "
            f"'performance_first', got {comp.mapping!r}"
        )
    _positive(errors, "compiler", max_duplication=comp.max_duplication,
              tile_pixels=comp.tile_pixels, activation_bytes=comp.activation_bytes,
              attention_shards=comp.attention_shards)
    if comp.attention_shards > chip.n_cores:
        errors.append(
            f"compiler.attention_shards ({comp.attention_shards}) exceeds "
            f"the chip's {chip.n_cores} cores"
        )
    if comp.shard_placement not in SHARD_PLACEMENTS:
        errors.append(
            f"compiler.shard_placement must be one of {SHARD_PLACEMENTS}, "
            f"got {comp.shard_placement!r}"
        )

    _positive(errors, "sim", frequency_mhz=sim.frequency_mhz)
    if sim.max_cycles is not None and sim.max_cycles <= 0:
        errors.append(f"sim.max_cycles must be positive when set, got {sim.max_cycles}")
    if sim.fidelity not in FIDELITIES:
        errors.append(
            f"sim.fidelity must be one of {FIDELITIES}, got {sim.fidelity!r}"
        )

    if errors:
        raise ConfigError(
            f"invalid configuration {config.name!r}:\n  - " + "\n  - ".join(errors)
        )
    return config
