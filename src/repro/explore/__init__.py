"""Design-space exploration: grid sweeps, Pareto fronts."""

from .space import (
    Exploration,
    ExplorationPoint,
    explore,
    pareto_front,
    with_param,
)

__all__ = [
    "explore",
    "Exploration",
    "ExplorationPoint",
    "pareto_front",
    "with_param",
]
