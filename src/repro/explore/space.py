"""Design-space exploration: grid sweeps and Pareto fronts.

The framework's configurability argument (Fig. 1: users explore hardware
designs by editing the architecture configuration file) packaged as an
API: declare a grid over dotted configuration fields, sweep it, and
extract the latency/energy Pareto front.

>>> from repro.explore import explore
>>> ex = explore("mlp", small_chip(), {"core.rob_size": [1, 8]})
>>> len(ex.points)
2
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..config import ArchConfig, scaled, validate
from ..engine import Engine, JobFailed, JobSpec
from ..runner import SimReport
from ..tune.search import evaluate_jobs

__all__ = ["ExplorationPoint", "Exploration", "explore", "with_param",
           "pareto_front"]


def with_param(config: ArchConfig, path: str, value: Any) -> ArchConfig:
    """Copy of ``config`` with one dotted field replaced.

    ``"core.rob_size"`` addresses ``config.core.rob_size``; the special
    path ``"chip.cores"`` rescales the mesh to a square of that many
    cores.  A path that does not resolve raises :class:`ValueError`
    naming the full dotted path and the valid keys at the segment that
    failed, so a typo in a sweep grid dies loudly instead of as a bare
    ``KeyError`` three frames deep.
    """
    if path == "chip.cores":
        return scaled(config, cores=value)
    parts = path.split(".")

    def rebuild(node: Any, depth: int) -> Any:
        if not dataclasses.is_dataclass(node):
            where = ".".join(parts[:depth])
            raise ValueError(
                f"no configuration field {path!r}: {where!r} is a "
                f"{type(node).__name__} leaf with no sub-fields"
            )
        valid = sorted(f.name for f in dataclasses.fields(node))
        name = parts[depth]
        if name not in valid:
            where = ".".join(parts[:depth + 1])
            raise ValueError(
                f"no configuration field {path!r}: unknown segment "
                f"{name!r} at {where!r}; valid keys here: {valid}"
            )
        if depth == len(parts) - 1:
            return dataclasses.replace(node, **{name: value})
        return dataclasses.replace(
            node, **{name: rebuild(getattr(node, name), depth + 1)})

    return validate(rebuild(config, 0))


@dataclass(frozen=True)
class ExplorationPoint:
    """One evaluated design point."""

    params: tuple[tuple[str, Any], ...]
    report: SimReport

    @property
    def latency(self) -> int:
        return self.report.cycles

    @property
    def energy(self) -> float:
        return self.report.total_energy_pj

    def label(self) -> str:
        return ", ".join(f"{k.split('.')[-1]}={v}" for k, v in self.params)


def pareto_front(points: Iterable[ExplorationPoint],
                 ) -> list[ExplorationPoint]:
    """Non-dominated points for (minimize latency, minimize energy).

    Points tied on both objectives contribute exactly one representative
    — the first in input order — so a grid where many design points
    collapse to the same measurement yields a front without duplicates.
    Deterministic: dedup keeps input order, the front is sorted by
    (latency, energy), and after dedup those keys are unique.
    """
    unique: list[ExplorationPoint] = []
    seen: set[tuple] = set()
    for point in points:
        key = (point.latency, point.energy)
        if key not in seen:
            seen.add(key)
            unique.append(point)
    front = [
        candidate for candidate in unique
        if not any(
            (other.latency <= candidate.latency
             and other.energy <= candidate.energy
             and (other.latency < candidate.latency
                  or other.energy < candidate.energy))
            for other in unique
        )
    ]
    front.sort(key=lambda p: (p.latency, p.energy))
    return front


@dataclass
class Exploration:
    """Results of a grid sweep."""

    network: str
    points: list[ExplorationPoint] = field(default_factory=list)
    failures: list[tuple[tuple[tuple[str, Any], ...], str]] = field(
        default_factory=list)

    def pareto(self) -> list[ExplorationPoint]:
        return pareto_front(self.points)

    def best_latency(self) -> ExplorationPoint:
        return min(self.points, key=lambda p: p.latency)

    def best_energy(self) -> ExplorationPoint:
        return min(self.points, key=lambda p: p.energy)

    def table(self) -> str:
        """Aligned text table of every evaluated point."""
        lines = [f"{'design point':<44}{'cycles':>14}{'energy (uJ)':>14}"
                 f"{'pareto':>8}"]
        front = set(id(p) for p in self.pareto())
        for point in self.points:
            lines.append(
                f"{point.label():<44}{point.latency:>14,}"
                f"{point.energy / 1e6:>14.2f}"
                f"{'  *' if id(point) in front else '':>8}"
            )
        for params, message in self.failures:
            label = ", ".join(f"{k.split('.')[-1]}={v}" for k, v in params)
            lines.append(f"{label:<44}  failed: {message[:40]}")
        return "\n".join(lines)


def explore(network: str, base_config: ArchConfig,
            space: dict[str, list], *,
            mapping: str | None = None,
            workers: int | None = 1,
            engine: Engine | None = None) -> Exploration:
    """Sweep the cartesian grid of ``space`` and simulate every point.

    Design points whose configuration cannot host the network (capacity
    exhausted) are recorded under ``failures`` instead of aborting the
    sweep.  ``workers > 1`` simulates the grid on the engine's persistent
    worker pool (``None`` = all CPUs); point order and results match the
    serial run.  Pass ``engine`` to reuse a session's warm caches across
    explorations.
    """
    exploration = Exploration(network=network if isinstance(network, str)
                              else network.name)
    names = list(space)
    grid: list[tuple[tuple, ArchConfig]] = []
    for combo in itertools.product(*(space[name] for name in names)):
        params = tuple(zip(names, combo))
        config = base_config
        try:
            for path, value in params:
                config = with_param(config, path, value)
        except Exception as exc:
            exploration.failures.append((params, _first_line(exc)))
            continue
        grid.append((params, config))

    jobs = [JobSpec(network, config, mapping=mapping)
            for _, config in grid]
    outcomes = evaluate_jobs(jobs, engine=engine, workers=workers)
    for (params, _), outcome in zip(grid, outcomes):
        if isinstance(outcome, JobFailed):
            exploration.failures.append((params, outcome.message))
        else:
            exploration.points.append(ExplorationPoint(params=params,
                                                       report=outcome))
    return exploration


def _first_line(exc: Exception) -> str:
    """First line of an exception message, falling back to its type name.

    Delegates to the engine's failure-record truncation so grid-
    construction failures read identically to simulation failures.
    """
    from ..engine.pool import job_failure
    return job_failure(exc).message
