"""Per-core local-memory allocation.

The code generator asks for named *regions* (input rings, accumulator
scratch, output rings, partial-receive staging) on each core; the allocator
hands out non-overlapping byte ranges with a simple bump pointer and fails
loudly when a core's local memory is over-subscribed — listing the regions,
so the user knows which buffer to shrink (smaller ``tile_pixels`` or
``sync_window``).

Ring regions expose ``slot(i)`` addressing: slot ``i % slots``.  Reusing a
slot after ``slots`` tiles is safe because the dispatch stage's WAR/WAW
hazard checks serialize any in-flight overlap, and program-level windowing
keeps producers at most ``slots`` tiles ahead (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from .frontend import CompileError

__all__ = ["Region", "CoreAllocator", "AllocatorSet"]


@dataclass(frozen=True)
class Region:
    """A named byte range in one core's local memory, optionally a ring."""

    name: str
    base: int
    slots: int
    slot_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.slots * self.slot_bytes

    @property
    def end(self) -> int:
        return self.base + self.total_bytes

    def slot(self, index: int) -> int:
        """Base address of ring slot ``index % slots``."""
        return self.base + (index % self.slots) * self.slot_bytes

    def range_of(self, index: int, bytes_used: int | None = None) -> tuple[int, int]:
        """Byte range of one slot (clamped to the slot size)."""
        used = self.slot_bytes if bytes_used is None else min(bytes_used, self.slot_bytes)
        start = self.slot(index)
        return start, start + used


class CoreAllocator:
    """Bump allocator for one core's local memory."""

    def __init__(self, core: int, capacity: int) -> None:
        self.core = core
        self.capacity = capacity
        self._next = 0
        self.regions: dict[str, Region] = {}

    def alloc(self, name: str, slot_bytes: int, slots: int = 1) -> Region:
        """Reserve ``slots`` x ``slot_bytes``; names must be unique."""
        if name in self.regions:
            raise CompileError(f"core {self.core}: duplicate region {name!r}")
        if slot_bytes <= 0 or slots <= 0:
            raise CompileError(
                f"core {self.core}: bad region {name!r} "
                f"({slots} x {slot_bytes} bytes)"
            )
        region = Region(name=name, base=self._next, slots=slots,
                        slot_bytes=slot_bytes)
        self._next = region.end
        if self._next > self.capacity:
            listing = "\n    ".join(
                f"{r.name}: {r.slots}x{r.slot_bytes}B" for r in self.regions.values()
            )
            raise CompileError(
                f"core {self.core}: local memory over-subscribed "
                f"({self._next} > {self.capacity} bytes) while allocating "
                f"{name!r} ({slots}x{slot_bytes}B); existing regions:\n    {listing}"
            )
        self.regions[name] = region
        return region

    def get(self, name: str) -> Region:
        try:
            return self.regions[name]
        except KeyError:
            raise CompileError(f"core {self.core}: no region {name!r}") from None

    @property
    def bytes_used(self) -> int:
        return self._next


class AllocatorSet:
    """Lazy per-core allocator collection."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._cores: dict[int, CoreAllocator] = {}

    def core(self, core_id: int) -> CoreAllocator:
        if core_id not in self._cores:
            self._cores[core_id] = CoreAllocator(core_id, self.capacity)
        return self._cores[core_id]

    def usage(self) -> dict[int, int]:
        return {cid: alloc.bytes_used for cid, alloc in self._cores.items()}
