"""Batched inference: repeat a compiled program for N pipelined images.

PIM inference accelerators amortize their pipeline fill over a stream of
inputs.  :func:`repeat_chip_program` unrolls a compiled single-image chip
program ``batch`` times: per-core streams are concatenated (one HALT at
the very end), transfer sequence numbers continue across repetitions,
flow message counts scale, and scalar branch targets are rebased into
each image's copy (absolute targets would otherwise keep pointing into
image 0's instructions, silently corrupting any branchy program) — so
consecutive images overlap in the hardware exactly as consecutive tiles
of one image do, and throughput approaches steady-state pipeline rate
rather than latency x N.
"""

from __future__ import annotations

import dataclasses

from ..isa import (
    ChipProgram,
    Program,
    ProgramError,
    ScalarInst,
    TransferInst,
)

__all__ = ["repeat_chip_program"]


def _is_halt(inst) -> bool:
    return isinstance(inst, ScalarInst) and inst.op == "HALT"


def repeat_chip_program(chip: ChipProgram, batch: int) -> ChipProgram:
    """Unroll a sealed single-image program for ``batch`` images."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if batch == 1:
        return chip

    out = ChipProgram(network=f"{chip.network}x{batch}")
    messages_per_image = {fid: info.n_messages
                          for fid, info in chip.flows.items()}

    for core_id, program in chip.programs.items():
        insts = program.instructions
        for pos, inst in enumerate(insts):
            if _is_halt(inst) and pos != len(insts) - 1:
                # Sequential semantics stop the core at a mid-stream HALT;
                # stripping it would silently run code each image should
                # have skipped.  verify_program rejects such programs too.
                raise ProgramError(
                    f"core {core_id}: HALT at index {pos} is not the last "
                    f"instruction; early-exit programs cannot be batched"
                )
        body = [inst for inst in insts if not _is_halt(inst)]
        # Branch targets are absolute indices into the *original* stream;
        # each unrolled copy needs them (a) shifted down past the stripped
        # trailing HALT and (b) rebased by the copy's offset.
        # ``rebased[i]`` maps original index ``i`` to its post-strip
        # position: a target that pointed at the trailing HALT lands just
        # past the copy — i.e. a branch-to-end falls through into the
        # next image's copy (or the final HALT on the last image), which
        # is exactly the sequential-execution semantics.
        rebased = []
        position = 0
        for inst in insts:
            rebased.append(position)
            if not _is_halt(inst):
                position += 1
        body_len = len(body)
        repeated = Program(core=core_id, groups=program.groups,
                           local_memory_used=program.local_memory_used)
        for image in range(batch):
            base = image * body_len
            for inst in body:
                if isinstance(inst, TransferInst) and inst.op in ("SEND",
                                                                  "RECV"):
                    if inst.flow not in messages_per_image:
                        raise ProgramError(
                            f"core {core_id}: {inst.op} at index "
                            f"{inst.index} references flow {inst.flow}, "
                            f"which is not declared in chip.flows "
                            f"(declared: {sorted(chip.flows) or 'none'}); "
                            f"cannot batch a program with dangling flows"
                        )
                    inst = dataclasses.replace(
                        inst,
                        seq=inst.seq + image * messages_per_image[inst.flow],
                        index=-1)
                elif isinstance(inst, ScalarInst) and inst.is_control:
                    if not 0 <= inst.target <= len(insts):
                        raise ProgramError(
                            f"core {core_id}: branch at index {inst.index} "
                            f"targets {inst.target}, outside the "
                            f"{len(insts)}-instruction stream"
                        )
                    target = (base + body_len if inst.target == len(insts)
                              else base + rebased[inst.target])
                    inst = dataclasses.replace(inst, target=target, index=-1)
                else:
                    inst = dataclasses.replace(inst, index=-1)
                repeated.append(inst)
        out.programs[core_id] = repeated.seal()

    out.flows = {
        fid: dataclasses.replace(info, n_messages=info.n_messages * batch)
        for fid, info in chip.flows.items()
    }
    out.layer_cores = dict(chip.layer_cores)
    out.meta = {**chip.meta, "batch": batch}
    return out
