"""Batched inference: repeat a compiled program for N pipelined images.

PIM inference accelerators amortize their pipeline fill over a stream of
inputs.  :func:`repeat_chip_program` unrolls a compiled single-image chip
program ``batch`` times: per-core streams are concatenated (one HALT at
the very end), transfer sequence numbers continue across repetitions, and
flow message counts scale — so consecutive images overlap in the hardware
exactly as consecutive tiles of one image do, and throughput approaches
steady-state pipeline rate rather than latency x N.
"""

from __future__ import annotations

import dataclasses

from ..isa import ChipProgram, FlowInfo, Program, ScalarInst, TransferInst

__all__ = ["repeat_chip_program"]


def repeat_chip_program(chip: ChipProgram, batch: int) -> ChipProgram:
    """Unroll a sealed single-image program for ``batch`` images."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if batch == 1:
        return chip

    out = ChipProgram(network=f"{chip.network}x{batch}")
    messages_per_image = {fid: info.n_messages
                          for fid, info in chip.flows.items()}

    for core_id, program in chip.programs.items():
        body = [inst for inst in program.instructions
                if not (isinstance(inst, ScalarInst) and inst.op == "HALT")]
        repeated = Program(core=core_id, groups=program.groups,
                           local_memory_used=program.local_memory_used)
        for image in range(batch):
            for inst in body:
                if isinstance(inst, TransferInst) and inst.op in ("SEND",
                                                                  "RECV"):
                    inst = dataclasses.replace(
                        inst,
                        seq=inst.seq + image * messages_per_image[inst.flow],
                        index=-1)
                else:
                    inst = dataclasses.replace(inst, index=-1)
                repeated.append(inst)
        out.programs[core_id] = repeated.seal()

    out.flows = {
        fid: dataclasses.replace(info, n_messages=info.n_messages * batch)
        for fid, info in chip.flows.items()
    }
    out.layer_cores = dict(chip.layer_cores)
    out.meta = {**chip.meta, "batch": batch}
    return out
