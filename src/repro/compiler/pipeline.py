"""One-call compiler driver: graph + config -> verified chip program."""

from __future__ import annotations

from ..config import ArchConfig, validate
from ..graph import Graph
from ..isa import ChipProgram, verify_program
from .codegen import generate_code
from .frontend import Pipeline, build_pipeline
from .mapping import map_network
from .placement import Placement

__all__ = ["compile_network", "CompilationResult"]


class CompilationResult:
    """Everything the compiler produced, for inspection and simulation."""

    def __init__(self, pipeline: Pipeline, placement: Placement,
                 program: ChipProgram) -> None:
        self.pipeline = pipeline
        self.placement = placement
        self.program = program

    def summary(self) -> str:
        return "\n".join([
            self.pipeline.summary(),
            "",
            self.placement.summary(),
            "",
            self.program.summary(),
        ])


def compile_network(graph: Graph, config: ArchConfig, *,
                    verify: bool = True) -> CompilationResult:
    """Compile a network description for an architecture configuration.

    Runs the full flow of Fig. 1: operator fusion, weight mapping
    (per ``config.compiler.mapping``), scheduling and code generation,
    then (by default) static verification of the resulting program.
    """
    validate(config)
    pipeline = build_pipeline(graph,
                              operator_fusion=config.compiler.operator_fusion)
    placement = map_network(pipeline, config)
    program = generate_code(pipeline, placement, config)
    if verify:
        verify_program(program, config)
    return CompilationResult(pipeline, placement, program)
