"""Code generation: placement + pipeline -> per-core instruction streams.

The generator walks *work items* — (stage, output tile) pairs — in a global
dependency-level order (:func:`~repro.compiler.tiling.compute_levels`) and
emits, on every participating core:

1. input acquisition — ``RECV`` new producer tiles (or ``LOAD`` from global
   memory; nothing for co-resident producers, whose output ring is read
   directly through local memory),
2. compute — per weight copy, per row block: one ``MVM`` through the
   crossbar group, double-buffered into a ping-pong partial region, then a
   ``VADD`` accumulation (so MVMs of adjacent row blocks overlap while the
   accumulation chain stays ordered),
3. gathering — cores holding only part of the weight matrix ``SEND`` their
   (partial) results to the stage's home core, which ``VADD``-merges them —
   the intra-layer communication that penalizes utilization-first mapping,
4. post-ops — fused relu / pool on the home core's vector unit, writeback
   into the stage's output ring,
5. distribution — ``SEND`` the output tile to every remote consumer core
   (``STORE`` to global memory for network outputs).

Cache stages (``kv_cache``) are the decode-scenario exception to the
flow machinery: the growing K/V buffer lives in *global memory*.  The
append is a one-token ``STORE`` from the producer's output ring; every
consumer ``LOAD``s the whole buffer back like a network input, so no
flow ever carries an extent-dependent message count.  Buffers of
extent-scaled stages are provisioned at ``Stage.alloc_shape`` (the
capacity), which keeps the local-memory map — and with it every emitted
address — identical across decode extents; only transfer byte counts
and vector lengths vary, affinely, with the extent
(:mod:`repro.compiler.stepwise` exploits exactly this).

Every emitted address comes from the :class:`~repro.compiler.allocator`
regions, so the dispatch stage's hazard detection operates on a consistent
memory map.  Timing-irrelevant layout details (exact cell offsets of
non-contiguous column groups) are approximated by contiguous ranges; see
DESIGN.md "codegen granularity".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import (
    ChipProgram,
    FlowInfo,
    GroupTable,
    MvmInst,
    Program,
    TransferInst,
    VectorInst,
)
from ..arch.units import run_latency
from .allocator import AllocatorSet, Region
from .frontend import CompileError, Pipeline, Stage, shard_tile_ranges
from .placement import Placement, StagePlan, assign_shard_groups
from .tiling import (
    compute_levels,
    edge_requirements,
    edge_skews,
    n_tiles,
    required_tile,
    tile_pixel_range,
)

__all__ = ["generate_code", "ACC_BYTES"]

#: accumulator precision in the local memory (partial sums).
ACC_BYTES = 4


@dataclass(frozen=True)
class _GroupRef:
    """Resolved crossbar group + layout info for one (copy, row_block)."""

    group_id: int
    cols_cells: int
    cell_offset: int
    rows: int


class _CodeGenerator:
    def __init__(self, pipeline: Pipeline, placement: Placement, config) -> None:
        self.pipeline = pipeline
        self.placement = placement
        self.config = config
        self.tile_pixels = config.compiler.tile_pixels
        self.act_bytes = config.compiler.activation_bytes
        self.window = config.noc.sync_window

        self.stages = {s.name: s for s in pipeline.stages}
        self.levels = compute_levels(pipeline, self.tile_pixels)
        self.reqs = edge_requirements(pipeline, self.tile_pixels)
        self.skews = edge_skews(pipeline, self.tile_pixels)
        self.home: dict[str, int | None] = {}
        self.receivers: dict[str, list[int]] = {}
        self.allocs = AllocatorSet(config.core.local_memory_bytes)
        self.group_tables: dict[int, GroupTable] = {}
        self.group_refs: dict[tuple[str, int, int, int], _GroupRef] = {}
        self.in_regions: dict[tuple[str, int, int], Region] = {}
        self.out_regions: dict[str, Region] = {}
        self.acc_regions: dict[tuple[str, int], Region] = {}
        self.part_regions: dict[tuple[str, int, int], Region] = {}
        self.prec_regions: dict[tuple[str, int], Region] = {}
        self.flows: dict[int, FlowInfo] = {}
        self.flow_ids: dict[tuple, int] = {}
        #: first producer tile a data flow carries (sharded consumers
        #: slice the producer stream; message seq = tile - base).
        self.flow_base: dict[tuple, int] = {}
        self.programs: dict[int, Program] = {}
        # Token sharding of dynamic attention ops (attention_shards > 1):
        # stage -> shard cores (home first), per-shard tile ranges, and a
        # tile -> shard-index map.
        self.shard_groups: dict[str, list[int]] = {}
        self.shard_ranges: dict[str, list[tuple[int, int]]] = {}
        self.shard_owner: dict[str, list[int]] = {}
        self.sout_regions: dict[tuple[str, int], Region] = {}

    # ------------------------------------------------------------------ setup

    def _assign_homes(self) -> None:
        """Home core per stage; aux stages land on their first producer's
        home (free local handoff for that input)."""
        for stage in self.pipeline:
            if stage.kind == "input":
                self.home[stage.name] = None
            elif stage.kind == "compute":
                self.home[stage.name] = self.placement.plan(stage.name).home_core
            else:
                home = None
                for edge in stage.edges:
                    home = self.home.get(edge.producer)
                    if home is not None:
                        break
                self.home[stage.name] = 0 if home is None else home

    def _assign_shards(self) -> None:
        """Shard groups for dynamic attention ops (after homes are known):
        placement picks the cores, this derives the per-shard tile slices."""
        if self.config.compiler.attention_shards <= 1:
            return
        assign_shard_groups(self.pipeline, self.placement, self.config,
                            self.home, self.tile_pixels)
        self.shard_groups = self.placement.shard_groups
        for name, cores in self.shard_groups.items():
            stage = self.stages[name]
            ranges = shard_tile_ranges(n_tiles(stage, self.tile_pixels),
                                       len(cores))
            self.shard_ranges[name] = ranges
            owner: list[int] = []
            for s, (lo, hi) in enumerate(ranges):
                owner.extend([s] * (hi - lo))
            self.shard_owner[name] = owner

    def _assign_receivers(self) -> None:
        for stage in self.pipeline:
            if stage.kind == "input":
                self.receivers[stage.name] = []
            elif stage.kind == "compute":
                self.receivers[stage.name] = self.placement.plan(stage.name).cores
            elif stage.name in self.shard_groups:
                self.receivers[stage.name] = list(self.shard_groups[stage.name])
            else:
                self.receivers[stage.name] = [self.home[stage.name]]

    def _shard_range_of(self, stage: Stage, core: int) -> tuple[int, int]:
        """Tile slice a shard core owns of a sharded stage."""
        cores = self.shard_groups[stage.name]
        return self.shard_ranges[stage.name][cores.index(core)]

    def _tile_exec_core(self, stage: Stage, tile: int) -> int:
        """Core computing one output tile (home unless sharded away)."""
        cores = self.shard_groups.get(stage.name)
        if cores is None:
            return self.home[stage.name]
        return cores[self.shard_owner[stage.name][tile]]

    def _edge_need_range(self, stage: Stage, edge_idx: int,
                         core: int) -> tuple[int, int]:
        """Producer-tile range ``[q_lo, q_hi)`` one receiver core consumes.

        Unsharded consumers (and every full-input edge — operand B of a
        sharded matmul is broadcast whole to each shard) start at tile 0;
        a sharded consumer's element-wise edge starts past the last tile
        the previous shard's slice pulled (``required_tile`` is monotone,
        so the slices partition the producer stream).
        """
        edge = stage.edges[edge_idx]
        producer = self.stages[edge.producer]
        if stage.name in self.shard_groups and core is not None:
            t_lo, t_hi = self._shard_range_of(stage, core)
            q_hi = required_tile(stage, edge, producer,
                                 self.tile_pixels, t_hi - 1) + 1
            if edge.full_input or t_lo == 0:
                return 0, q_hi
            q_lo = required_tile(stage, edge, producer,
                                 self.tile_pixels, t_lo - 1) + 1
            return q_lo, q_hi
        last = n_tiles(stage, self.tile_pixels) - 1
        return 0, required_tile(stage, edge, producer,
                                self.tile_pixels, last) + 1

    def _tile_bytes(self, stage: Stage, tile: int) -> int:
        lo, hi = tile_pixel_range(stage, self.tile_pixels, tile)
        return (hi - lo) * stage.out_channels * self.act_bytes

    def _nominal_tile_bytes(self, stage: Stage) -> int:
        """Buffer-slot size for one tile of a stage's output.

        Sized from the *allocation* shape: for extent-scaled stages of a
        decode pipeline that is the capacity, so slot sizes (and hence
        every downstream address) do not move with the decode extent.
        Classic stages have ``alloc == out`` and are unchanged.
        """
        if stage.kind == "cache":
            px = stage.alloc_pixels  # single whole-buffer tile
        else:
            px = min(self.tile_pixels, stage.alloc_pixels)
        return px * stage.alloc_channels * self.act_bytes

    def _edge_window(self, stage: Stage, edge_idx: int) -> int:
        """Credit window / input-ring depth for one consumer edge.

        Structural skew (skip connections, branch joins) plus the
        configured ``sync_window`` of slack; full-input consumers buffer
        the producer's entire output.
        """
        edge = stage.edges[edge_idx]
        producer = self.stages[edge.producer]
        p_tiles = n_tiles(producer, self.tile_pixels)
        if edge.full_input:
            return p_tiles
        skew = self.skews.get((stage.name, edge_idx), 0)
        # +4: the in-order-retire ROB lets a sender dispatch a few items
        # past a credit-blocked SEND before jamming; the window must cover
        # that lookahead on top of the structural skew.
        return min(p_tiles, skew + self.window + 4)

    def _out_ring_slots(self, stage: Stage) -> int:
        """Output ring depth on the home core.

        Must hold a tile until its last reader is done with it: remote
        consumers are covered by their flow window (the SEND holds the
        slot via WAR hazards), co-resident consumers read the ring
        directly, so the depth must span the level-order distance between
        the producer writing a tile and the consumer's item that reads it.
        """
        nt = n_tiles(stage, self.tile_pixels)
        home = self.home[stage.name]
        lv_p = self.levels[stage.name]
        depth = max(2, self.window)
        for consumer in self.pipeline:
            for edge_idx, edge in enumerate(consumer.edges):
                if edge.producer != stage.name:
                    continue
                if home not in self.receivers[consumer.name]:
                    depth = max(depth, self._edge_window(consumer, edge_idx))
                    continue
                if edge.full_input:
                    return nt
                req = self.reqs[(consumer.name, edge_idx)]
                lv_c = self.levels[consumer.name]
                # max producer item ordered (by level) before consumer item t
                p = 0
                for t, req_t in enumerate(req):
                    while p < nt and lv_p[p] <= lv_c[t]:
                        p += 1
                    depth = max(depth, (p - 1) - req_t + 2)
        return min(nt, depth)

    def _build_groups(self) -> None:
        """Define crossbar groups per (stage, core, copy, row block)."""
        for stage in self.pipeline.compute_stages:
            plan = self.placement.plan(stage.name)
            tiling = plan.tiling
            global_off = self._global_cell_offsets(plan)
            for core in plan.cores:
                table = self.group_tables.setdefault(core, GroupTable(core))
                local_off = self._local_cell_offsets(plan, core)
                is_home = core == self.home[stage.name]
                offsets = global_off if is_home else local_off
                for copy in plan.copies_on(core):
                    rows_cols: dict[int, list[int]] = {}
                    for sl in plan.slices_on(core):
                        if sl.copy != copy:
                            continue
                        for r in range(sl.row_lo, sl.row_hi):
                            rows_cols.setdefault(r, []).extend(
                                range(sl.col_lo, sl.col_hi))
                    for r, col_blocks in sorted(rows_cols.items()):
                        col_blocks = sorted(set(col_blocks))
                        cols_cells = sum(tiling.block_cols(cb) for cb in col_blocks)
                        group = table.define(
                            layer=stage.name, copy=copy, row_block=r,
                            n_crossbars=len(col_blocks),
                            rows=tiling.block_rows(r), cols=cols_cells,
                        )
                        self.group_refs[(stage.name, core, copy, r)] = _GroupRef(
                            group_id=group.group_id,
                            cols_cells=cols_cells,
                            cell_offset=offsets[col_blocks[0]],
                            rows=tiling.block_rows(r),
                        )

    @staticmethod
    def _global_cell_offsets(plan: StagePlan) -> dict[int, int]:
        offsets, acc = {}, 0
        for cb in range(plan.tiling.col_blocks):
            offsets[cb] = acc
            acc += plan.tiling.block_cols(cb)
        return offsets

    @staticmethod
    def _local_cell_offsets(plan: StagePlan, core: int) -> dict[int, int]:
        present: set[int] = set()
        for sl in plan.slices_on(core):
            present.update(range(sl.col_lo, sl.col_hi))
        offsets, acc = {}, 0
        for cb in sorted(present):
            offsets[cb] = acc
            acc += plan.tiling.block_cols(cb)
        return offsets

    def _cells_on(self, stage: Stage, core: int) -> int:
        """Accumulator cells a core materializes for one output pixel.

        With bit-sliced weights each logical channel accumulates
        ``slices_per_weight`` physical partial products before the
        shift-add merge, so home-core accumulators scale accordingly
        (non-home counts are physical already via the tiling).
        """
        plan = self.placement.plan(stage.name)
        if core == self.home[stage.name]:
            return stage.out_channels * self.config.crossbar.slices_per_weight
        return plan.col_cells_on(core)

    def _allocate(self) -> None:
        """Reserve all local-memory regions, deterministically."""
        for stage in self.pipeline:
            if stage.kind == "input":
                continue
            # input rings
            for edge_idx, edge in enumerate(stage.edges):
                producer = self.stages[edge.producer]
                p_home = self.home[edge.producer]
                slot_bytes = self._nominal_tile_bytes(producer)
                slots = self._edge_window(stage, edge_idx)
                for core in self.receivers[stage.name]:
                    if producer.kind not in ("input", "cache") and p_home == core:
                        continue  # co-resident: read the producer's out ring
                    region = self.allocs.core(core).alloc(
                        f"in:{stage.name}:{edge_idx}", slot_bytes, slots)
                    self.in_regions[(stage.name, edge_idx, core)] = region
            # compute scratch
            if stage.kind == "compute":
                plan = self.placement.plan(stage.name)
                cpp = stage.compute_per_pixel
                px = min(self.tile_pixels, stage.out_pixels)
                for core in plan.cores:
                    cells = self._cells_on(stage, core)
                    self.acc_regions[(stage.name, core)] = self.allocs.core(core).alloc(
                        f"acc:{stage.name}", px * cpp * cells * ACC_BYTES, 1)
                    copy_px = -(-px // plan.copies)  # ceil
                    for copy in plan.copies_on(core):
                        refs = [ref for key, ref in self.group_refs.items()
                                if key[0] == stage.name and key[1] == core
                                and key[2] == copy]
                        if not refs:
                            continue
                        max_gcols = max(ref.cols_cells for ref in refs)
                        # One partial slot per row block (capped): MVMs of a
                        # tile land in distinct slots and can all be in
                        # flight at once — the ROB, not the buffer, bounds
                        # the overlap (Fig. 4).  Eight slots exceed any
                        # per-copy overlap a <=16-entry ROB can sustain.
                        slots = min(len(refs), 8)
                        self.part_regions[(stage.name, core, copy)] = (
                            self.allocs.core(core).alloc(
                                f"part:{stage.name}:{copy}",
                                copy_px * cpp * max_gcols * ACC_BYTES, slots))
                home = self.home[stage.name]
                for partner in plan.cores:
                    if partner == home:
                        continue
                    cells = self._cells_on(stage, partner)
                    self.prec_regions[(stage.name, partner)] = (
                        self.allocs.core(home).alloc(
                            f"prec:{stage.name}:{partner}",
                            px * cpp * cells * ACC_BYTES, 2))
            # shard-output staging rings (token-sharded dynamic ops):
            # a finished tile parks here until its partial-gather SEND
            # drains it to the home core's output ring.
            if stage.name in self.shard_groups:
                for core in self.shard_groups[stage.name]:
                    if core == self.home[stage.name]:
                        continue
                    self.sout_regions[(stage.name, core)] = (
                        self.allocs.core(core).alloc(
                            f"sout:{stage.name}",
                            self._nominal_tile_bytes(stage), 2))
            # output ring on the home core (cache stages have none: the
            # buffer lives in global memory; consumers LOAD it back)
            if stage.kind == "cache":
                continue
            home = self.home[stage.name]
            self.out_regions[stage.name] = self.allocs.core(home).alloc(
                f"out:{stage.name}", self._nominal_tile_bytes(stage),
                self._out_ring_slots(stage))

    def _declare_flows(self) -> None:
        """Flow ids for every remote producer->consumer-core stream and
        every partial-gather stream."""
        next_id = 0
        for stage in self.pipeline:
            if stage.kind == "input":
                continue
            for edge_idx, edge in enumerate(stage.edges):
                producer = self.stages[edge.producer]
                if producer.kind in ("input", "cache"):
                    continue  # global-memory LOADs need no flow
                p_home = self.home[edge.producer]
                for core in self.receivers[stage.name]:
                    if p_home == core:
                        continue
                    # Strided consumers may never touch the producer's
                    # last rows (e.g. 1x1 stride-2 projections) and a
                    # shard core only consumes its token slice: only
                    # ship what this core needs.
                    q_lo, q_hi = self._edge_need_range(stage, edge_idx, core)
                    needed = q_hi - q_lo
                    window = min(needed, self._edge_window(stage, edge_idx))
                    info = FlowInfo(
                        flow_id=next_id, src_core=p_home, dst_core=core,
                        layer=stage.name,
                        n_messages=needed,
                        bytes_per_message=self._nominal_tile_bytes(producer),
                        window=window,
                    )
                    self.flows[next_id] = info
                    self.flow_ids[(stage.name, edge_idx, core)] = next_id
                    self.flow_base[(stage.name, edge_idx, core)] = q_lo
                    next_id += 1
            if stage.kind == "compute":
                plan = self.placement.plan(stage.name)
                home = self.home[stage.name]
                px = min(self.tile_pixels, stage.out_pixels)
                for partner in plan.cores:
                    if partner == home:
                        continue
                    cells = self._cells_on(stage, partner)
                    info = FlowInfo(
                        flow_id=next_id, src_core=partner, dst_core=home,
                        layer=stage.name,
                        n_messages=n_tiles(stage, self.tile_pixels),
                        bytes_per_message=px * stage.compute_per_pixel
                        * cells * ACC_BYTES,
                        window=2,  # matches the prec ping-pong staging ring
                        kind="partial",
                    )
                    self.flows[next_id] = info
                    self.flow_ids[(stage.name, "partial", partner)] = next_id
                    next_id += 1
            if stage.name in self.shard_groups:
                # Partial gathers of a token-sharded dynamic op: each
                # shard streams its finished output tiles to the home
                # core, which owns the stage's output ring (the split-conv
                # gather pattern, minus the VADD — token slices are
                # disjoint, not partial sums).
                home = self.home[stage.name]
                cores = self.shard_groups[stage.name]
                for s, core in enumerate(cores):
                    if core == home:
                        continue
                    t_lo, t_hi = self.shard_ranges[stage.name][s]
                    info = FlowInfo(
                        flow_id=next_id, src_core=core, dst_core=home,
                        layer=stage.name,
                        n_messages=t_hi - t_lo,
                        bytes_per_message=self._nominal_tile_bytes(stage),
                        window=2,  # matches the sout ping-pong staging ring
                        kind="shard",
                    )
                    self.flows[next_id] = info
                    self.flow_ids[(stage.name, "shard", core)] = next_id
                    next_id += 1

    def _program(self, core: int) -> Program:
        if core not in self.programs:
            self.programs[core] = Program(core)
        return self.programs[core]

    # -------------------------------------------------------------- emission

    def generate(self) -> ChipProgram:
        self._assign_homes()
        self._assign_shards()
        self._assign_receivers()
        self._build_groups()
        self._allocate()
        self._declare_flows()

        items: list[tuple[int, int, int, Stage]] = []
        for stage in self.pipeline:
            if stage.kind == "input":
                continue
            for tile in range(n_tiles(stage, self.tile_pixels)):
                items.append((self.levels[stage.name][tile],
                              stage.topo_index, tile, stage))
        items.sort(key=lambda it: (it[0], it[1], it[2]))

        for _level, _topo, tile, stage in items:
            self._emit_inputs(stage, tile)
            if stage.kind == "compute":
                self._emit_compute(stage, tile)
            elif stage.kind == "cache":
                self._emit_cache(stage)
                continue  # the buffer distributes via gmem, not flows
            else:
                self._emit_aux(stage, tile)
            self._emit_distribution(stage, tile)

        chip = ChipProgram(network=self.pipeline.network)
        for core, program in sorted(self.programs.items()):
            program.groups = self.group_tables.get(core, GroupTable(core))
            program.local_memory_used = self.allocs.core(core).bytes_used
            chip.programs[core] = program.seal()
        chip.flows = self.flows
        chip.layer_cores = {
            name: self.placement.plan(name).cores
            for name in self.placement.plans
        }
        chip.meta = {
            "policy": self.placement.policy,
            "tile_pixels": self.tile_pixels,
            "local_memory_usage": self.allocs.usage(),
            "stage_homes": {k: v for k, v in self.home.items() if v is not None},
            "stage_ops": {s.name: s.op for s in self.pipeline
                          if s.kind != "input"},
            "n_stages": len(self.pipeline),
            "attention_shards": self.config.compiler.attention_shards,
            "shard_groups": {name: list(cores)
                             for name, cores in self.shard_groups.items()},
            **self.placement.meta,
            # Per-core analytic run shape (ROADMAP 3a): how many maximal
            # straight-line compute runs the fast-fidelity walker will
            # advance in one step each, and their serialized unit
            # latency — the workload profile the speedup comes from.
            "run_counts": {
                core: len(program.run_segments())
                for core, program in chip.programs.items()
            },
            "run_serial_cycles": {
                core: sum(
                    run_latency(program.instructions[a:b], self.config,
                                program.groups.groups
                                if program.groups is not None else {})
                    for a, b in program.run_segments())
                for core, program in chip.programs.items()
            },
        }
        if self.pipeline.extent is not None:
            chip.meta["kv_extent"] = self.pipeline.extent
            chip.meta["kv_capacity"] = self.pipeline.extent_capacity
        return chip

    def _new_input_tiles(self, stage: Stage, edge_idx: int, tile: int, *,
                         shard_first: bool = False, q_base: int = 0) -> range:
        edge = stage.edges[edge_idx]
        producer = self.stages[edge.producer]
        req = required_tile(stage, edge, producer, self.tile_pixels, tile)
        if shard_first:
            # First tile a shard owns: pull everything from the start of
            # this core's slice of the producer stream (the whole stream
            # for a broadcast full-input edge).
            return range(q_base, req + 1)
        prev = (required_tile(stage, edge, producer, self.tile_pixels, tile - 1)
                if tile > 0 else -1)
        return range(prev + 1, req + 1)

    def _emit_inputs(self, stage: Stage, tile: int) -> None:
        sharded = stage.name in self.shard_groups
        for core in self.receivers[stage.name]:
            first = False
            if sharded:
                t_lo, t_hi = self._shard_range_of(stage, core)
                if not t_lo <= tile < t_hi:
                    continue  # another shard's token slice
                first = tile == t_lo
            program = self._program(core)
            for edge_idx, edge in enumerate(stage.edges):
                producer = self.stages[edge.producer]
                p_home = self.home[edge.producer]
                if producer.kind not in ("input", "cache") and p_home == core:
                    continue
                region = self.in_regions[(stage.name, edge_idx, core)]
                # Matches the flow declaration's base (LOAD edges have no
                # flow but slice the gmem stream the same way).
                q_base = (self._edge_need_range(stage, edge_idx, core)[0]
                          if sharded else 0)
                for q in self._new_input_tiles(stage, edge_idx, tile,
                                               shard_first=first,
                                               q_base=q_base):
                    nbytes = self._tile_bytes(producer, q)
                    addr = region.slot(q)
                    if producer.kind in ("input", "cache"):
                        program.append(TransferInst(
                            op="LOAD", peer=0, addr=addr, bytes=nbytes,
                            flow=0, seq=q, layer=stage.name))
                    else:
                        program.append(TransferInst(
                            op="RECV", peer=p_home, addr=addr, bytes=nbytes,
                            flow=self.flow_ids[(stage.name, edge_idx, core)],
                            seq=q - q_base, layer=stage.name))

    def _input_src(self, stage: Stage, core: int, tile: int) -> tuple[int, int]:
        """Byte range the matrix unit reads its input vectors from."""
        edge = stage.edges[0]
        producer = self.stages[edge.producer]
        req = required_tile(stage, edge, producer, self.tile_pixels, tile)
        p_home = self.home[edge.producer]
        if producer.kind not in ("input", "cache") and p_home == core:
            region = self.out_regions[edge.producer]
        else:
            region = self.in_regions[(stage.name, 0, core)]
        return region.range_of(req)

    def _emit_compute(self, stage: Stage, tile: int) -> None:
        plan = self.placement.plan(stage.name)
        home = self.home[stage.name]
        lo, hi = tile_pixel_range(stage, self.tile_pixels, tile)
        cpp = stage.compute_per_pixel
        ppx = (hi - lo) * cpp

        for core in plan.cores:
            program = self._program(core)
            acc = self.acc_regions[(stage.name, core)]
            cells_core = self._cells_on(stage, core)
            src_lo, src_hi = self._input_src(stage, core, tile)

            # All MVMs of the tile first (they hit distinct crossbar groups
            # and distinct partial-ring slots, so the ROB window directly
            # sets how many overlap — the Fig. 4 effect), accumulation
            # VADD chains after.
            vadds: list[VectorInst] = []
            for copy in plan.copies_on(core):
                plo, phi = plan.pixel_share(copy, lo, hi)
                if plo >= phi:
                    continue
                count = (phi - plo) * cpp
                px_off = (plo - lo) * cpp
                part = self.part_regions[(stage.name, core, copy)]
                row_blocks = sorted(
                    r for (name, c, k, r) in self.group_refs
                    if name == stage.name and c == core and k == copy)
                for r in row_blocks:
                    ref = self.group_refs[(stage.name, core, copy, r)]
                    nbytes = count * ref.cols_cells * ACC_BYTES
                    part_lo, _ = part.range_of(r)
                    program.append(MvmInst(
                        group=ref.group_id,
                        src=src_lo, src_bytes=src_hi - src_lo,
                        dst=part_lo, dst_bytes=nbytes,
                        count=count, layer=stage.name))
                    acc_off = acc.base + (px_off * cells_core
                                          + ref.cell_offset) * ACC_BYTES
                    vadds.append(VectorInst(
                        op="VADD", src1=part_lo, src2=acc_off, dst=acc_off,
                        length=count * ref.cols_cells,
                        src_bytes=nbytes, dst_bytes=nbytes,
                        layer=stage.name))
            program.extend(vadds)

            if core != home:
                nbytes = ppx * cells_core * ACC_BYTES
                program.append(TransferInst(
                    op="SEND", peer=home, addr=acc.base, bytes=nbytes,
                    flow=self.flow_ids[(stage.name, "partial", core)],
                    seq=tile, layer=stage.name))

        # -- home: gather partials, post-ops, writeback -----------------------
        program = self._program(home)
        acc = self.acc_regions[(stage.name, home)]
        for partner in plan.cores:
            if partner == home:
                continue
            cells = self._cells_on(stage, partner)
            nbytes = ppx * cells * ACC_BYTES
            prec = self.prec_regions[(stage.name, partner)]
            prec_lo, _ = prec.range_of(tile, nbytes)
            program.append(TransferInst(
                op="RECV", peer=partner, addr=prec_lo, bytes=nbytes,
                flow=self.flow_ids[(stage.name, "partial", partner)],
                seq=tile, layer=stage.name))
            program.append(VectorInst(
                op="VADD", src1=prec_lo, src2=acc.base, dst=acc.base,
                length=ppx * cells, src_bytes=nbytes, dst_bytes=nbytes,
                layer=stage.name))

        self._emit_post_ops(stage, tile, program, acc, ppx, lo, hi)

    def _emit_post_ops(self, stage: Stage, tile: int, program: Program,
                       acc: Region, ppx: int, lo: int, hi: int) -> None:
        out = self.out_regions[stage.name]
        out_bytes = self._tile_bytes(stage, tile)
        out_lo, _ = out.range_of(tile, out_bytes)
        ch = stage.out_channels
        pre_len = ppx * ch
        wrote_out = False
        for op in stage.post_ops:
            if op in ("relu", "gelu"):
                program.append(VectorInst(
                    op="VRELU" if op == "relu" else "VGELU",
                    src1=acc.base, dst=acc.base, length=pre_len,
                    src_bytes=pre_len * ACC_BYTES, dst_bytes=pre_len * ACC_BYTES,
                    layer=stage.name))
            elif op in ("maxpool", "avgpool"):
                program.append(VectorInst(
                    op="VMAXPOOL" if op == "maxpool" else "VAVGPOOL",
                    src1=acc.base, dst=out_lo, length=(hi - lo) * ch,
                    src_bytes=pre_len * ACC_BYTES, dst_bytes=out_bytes,
                    layer=stage.name))
                wrote_out = True
        if not wrote_out:
            program.append(VectorInst(
                op="VMOV", src1=acc.base, dst=out_lo, length=(hi - lo) * ch,
                src_bytes=(hi - lo) * ch * ACC_BYTES, dst_bytes=out_bytes,
                layer=stage.name))

    def _aux_input_range(self, stage: Stage, edge_idx: int, core: int,
                         tile: int) -> tuple[int, int]:
        """Byte range holding the input an aux op reads for this tile."""
        edge = stage.edges[edge_idx]
        producer = self.stages[edge.producer]
        p_home = self.home[edge.producer]
        if producer.kind not in ("input", "cache") and p_home == core:
            region = self.out_regions[edge.producer]
        else:
            region = self.in_regions[(stage.name, edge_idx, core)]
        if edge.full_input or stage.op in ("maxpool", "avgpool", "lrn"):
            # window/reduction ops read across slots: conservative full ring.
            return region.base, region.end
        req = required_tile(stage, edge, producer, self.tile_pixels, tile)
        return region.range_of(req)

    def _emit_aux(self, stage: Stage, tile: int) -> None:
        home = self.home[stage.name]
        # Token-sharded stages execute each tile on the shard core owning
        # its token slice; the result streams back to the home core's
        # output ring through the shard's partial-gather flow.
        exec_core = self._tile_exec_core(stage, tile)
        program = self._program(exec_core)
        lo, hi = tile_pixel_range(stage, self.tile_pixels, tile)
        px = hi - lo
        ch = stage.out_channels
        out = self.out_regions[stage.name]
        out_bytes = self._tile_bytes(stage, tile)
        if exec_core == home:
            out_lo, _ = out.range_of(tile, out_bytes)
        else:
            sout = self.sout_regions[(stage.name, exec_core)]
            out_lo, _ = sout.range_of(tile, out_bytes)
        length = px * ch if len(stage.out_shape) == 3 else stage.out_elements

        if stage.op == "add":
            first_lo, first_hi = self._aux_input_range(stage, 0, exec_core, tile)
            src2_lo, _ = self._aux_input_range(stage, 1, exec_core, tile)
            program.append(VectorInst(
                op="VADD", src1=first_lo, src2=src2_lo, dst=out_lo,
                length=length, src_bytes=first_hi - first_lo,
                dst_bytes=out_bytes, layer=stage.name))
            for edge_idx in range(2, len(stage.edges)):
                extra_lo, extra_hi = self._aux_input_range(stage, edge_idx,
                                                           exec_core, tile)
                program.append(VectorInst(
                    op="VADD", src1=extra_lo, src2=out_lo, dst=out_lo,
                    length=length, src_bytes=extra_hi - extra_lo,
                    dst_bytes=out_bytes, layer=stage.name))
        elif stage.op == "concat":
            offset = 0
            for edge_idx, edge in enumerate(stage.edges):
                producer = self.stages[edge.producer]
                pch = producer.out_channels
                src_lo, src_hi = self._aux_input_range(stage, edge_idx,
                                                       exec_core, tile)
                program.append(VectorInst(
                    op="VMOV", src1=src_lo, dst=out_lo + offset,
                    length=px * pch, src_bytes=src_hi - src_lo,
                    dst_bytes=px * pch * self.act_bytes, layer=stage.name))
                offset += px * pch * self.act_bytes
        elif stage.op in ("maxpool", "avgpool", "global_avgpool"):
            src_lo, src_hi = self._aux_input_range(stage, 0, exec_core, tile)
            opname = "VAVGPOOL" if "avg" in stage.op else "VMAXPOOL"
            program.append(VectorInst(
                op=opname, src1=src_lo, dst=out_lo, length=length,
                src_bytes=src_hi - src_lo, dst_bytes=out_bytes,
                layer=stage.name))
        elif stage.op in ("relu", "softmax", "lrn", "layernorm", "gelu"):
            opname = {"relu": "VRELU", "softmax": "VSOFTMAX", "lrn": "VLRN",
                      "layernorm": "VLAYERNORM", "gelu": "VGELU"}[stage.op]
            src_lo, src_hi = self._aux_input_range(stage, 0, exec_core, tile)
            program.append(VectorInst(
                op=opname, src1=src_lo, dst=out_lo, length=length,
                src_bytes=src_hi - src_lo, dst_bytes=out_bytes,
                layer=stage.name))
        elif stage.op == "matmul":
            # Dynamic activation x activation product: operand A's tile
            # plus the whole resident operand B stream through VMATMUL;
            # `length` counts this tile's multiply-accumulates (the MAC
            # total is exact per output token, so the per-tile share is
            # pixels x macs-per-token).
            a_lo, a_hi = self._aux_input_range(stage, 0, exec_core, tile)
            b_lo, b_hi = self._aux_input_range(stage, 1, exec_core, tile)
            macs_per_token = stage.attrs["macs_per_token"]
            program.append(VectorInst(
                op="VMATMUL", src1=a_lo, src2=b_lo, dst=out_lo,
                length=px * macs_per_token,
                src_bytes=a_hi - a_lo, src2_bytes=b_hi - b_lo,
                dst_bytes=out_bytes, layer=stage.name))
        elif stage.op == "transpose":
            # Token/channel axis swap: a strided gather over the whole
            # resident input, one element written per output element.
            src_lo, src_hi = self._aux_input_range(stage, 0, exec_core, tile)
            program.append(VectorInst(
                op="VTRANS", src1=src_lo, dst=out_lo, length=length,
                src_bytes=src_hi - src_lo, dst_bytes=out_bytes,
                layer=stage.name))
        else:  # pragma: no cover - frontend keeps aux ops in sync
            raise CompileError(f"codegen cannot lower aux op {stage.op!r}")

        for op in stage.post_ops:
            if op in ("relu", "gelu"):
                program.append(VectorInst(
                    op="VRELU" if op == "relu" else "VGELU",
                    src1=out_lo, dst=out_lo, length=length,
                    src_bytes=out_bytes, dst_bytes=out_bytes, layer=stage.name))

        if exec_core != home:
            # Partial gather: the shard's finished token slice streams to
            # the home core's output ring, which then distributes as usual.
            flow_id = self.flow_ids[(stage.name, "shard", exec_core)]
            t_lo, _t_hi = self._shard_range_of(stage, exec_core)
            program.append(TransferInst(
                op="SEND", peer=home, addr=out_lo, bytes=out_bytes,
                flow=flow_id, seq=tile - t_lo, layer=stage.name))
            dst_lo, _ = out.range_of(tile, out_bytes)
            self._program(home).append(TransferInst(
                op="RECV", peer=exec_core, addr=dst_lo, bytes=out_bytes,
                flow=flow_id, seq=tile - t_lo, layer=stage.name))

    def _emit_cache(self, stage: Stage) -> None:
        """Append one token to a KV-cache buffer in global memory.

        The cache stage is co-resident with its (single-token) producer, so
        the append is one STORE of the fresh token from the producer's
        output ring — extent-invariant by construction.  Consumers LOAD the
        whole buffer back (:meth:`_emit_inputs`), which is where the decode
        extent shows up as traffic; the simulator models the timing cost of
        both halves through the global-memory port.
        """
        home = self.home[stage.name]
        program = self._program(home)
        src_lo, _src_hi = self._aux_input_range(stage, 0, home, 0)
        token_bytes = stage.out_channels * self.act_bytes
        program.append(TransferInst(
            op="STORE", peer=0, addr=src_lo, bytes=token_bytes,
            flow=0, seq=0, layer=stage.name))

    def _emit_distribution(self, stage: Stage, tile: int) -> None:
        home = self.home[stage.name]
        program = self._program(home)
        out = self.out_regions[stage.name]
        out_bytes = self._tile_bytes(stage, tile)
        out_lo, _ = out.range_of(tile, out_bytes)

        for consumer in self.pipeline:
            for edge_idx, edge in enumerate(consumer.edges):
                if edge.producer != stage.name:
                    continue
                for core in self.receivers[consumer.name]:
                    key = (consumer.name, edge_idx, core)
                    if key not in self.flow_ids:
                        continue  # co-resident
                    base = self.flow_base[key]
                    if not (base <= tile
                            < base + self.flows[self.flow_ids[key]].n_messages):
                        continue  # outside this core's slice of the stream
                    program.append(TransferInst(
                        op="SEND", peer=core, addr=out_lo, bytes=out_bytes,
                        flow=self.flow_ids[key], seq=tile - base,
                        layer=stage.name))

        if stage in self.pipeline.output_stages:
            program.append(TransferInst(
                op="STORE", peer=0, addr=out_lo, bytes=out_bytes,
                flow=0, seq=tile, layer=stage.name))


def generate_code(pipeline: Pipeline, placement: Placement, config) -> ChipProgram:
    """Generate, seal and return the chip program."""
    return _CodeGenerator(pipeline, placement, config).generate()
