"""Performance-first mapping.

From the paper: "we map the weights of one layer to unmapped cores,
ensuring that each core only stores one layer's weights."

On top of the one-layer-per-core rule this mapper applies PIMCOMP-style
*weight duplication*: spare crossbars on a layer's core hold extra copies
of its weight matrix, so different output pixels of one tile can run
through different copies concurrently — the intra-core parallelism the
ROB then exploits (Fig. 4).

Placement rules:

* whole matrix fits in one core -> one fresh core, plus as many whole
  duplicates as spare crossbars / the duplication cap / the tile width allow;
* matrix exceeds a core -> distribute column strips across several fresh
  cores (no duplication); a strip taller than a core splits by rows, which
  re-introduces partial-sum gathering (unavoidable for giant layers);
* fresh cores exhausted -> fall back to the least-loaded core that still
  has room (the one-layer-per-core guarantee degrades; recorded in the
  placement metadata), never over-subscribing any core.
"""

from __future__ import annotations

from ..frontend import CompileError, Pipeline
from ..placement import Placement, Slice, StagePlan
from ..tiling import weight_tiling

__all__ = ["map_performance_first"]


class _CoreBudget:
    """Tracks crossbar occupancy; hands out fresh or least-loaded cores."""

    def __init__(self, n_cores: int, capacity: int) -> None:
        self.capacity = capacity
        self.n_cores = n_cores
        self.used: dict[int, int] = {}
        self.degraded: list[str] = []

    def fresh(self) -> int | None:
        for candidate in range(self.n_cores):
            if candidate not in self.used:
                self.used[candidate] = 0
                return candidate
        return None

    def with_room(self, tiles: int) -> int | None:
        """Least-loaded core that still fits ``tiles`` crossbars."""
        best, best_free = None, -1
        for core, used in self.used.items():
            free = self.capacity - used
            if free >= tiles and free > best_free:
                best, best_free = core, free
        return best

    def acquire(self, tiles: int, stage_name: str) -> int:
        """A fresh core, else any core with room; never over-subscribes."""
        core = self.fresh()
        if core is not None and self.capacity - self.used[core] >= tiles:
            return core
        core = self.with_room(tiles)
        if core is None:
            raise CompileError(
                f"stage {stage_name!r} needs {tiles} crossbars but no core "
                f"has room ({self.n_cores} cores x {self.capacity}); "
                f"performance-first cannot place the network"
            )
        self.degraded.append(stage_name)
        return core

    def free_on(self, core: int) -> int:
        return self.capacity - self.used[core]

    def charge(self, core: int, tiles: int) -> None:
        self.used[core] = self.used.get(core, 0) + tiles
        if self.used[core] > self.capacity:
            raise AssertionError(
                f"internal: core {core} over-subscribed by the mapper")


def map_performance_first(pipeline: Pipeline, config) -> Placement:
    capacity = config.core.crossbars_per_core
    comp = config.compiler
    budget = _CoreBudget(config.chip.n_cores, capacity)
    placement = Placement(policy="performance_first")

    # Pass 1 — place exactly one copy of every stage, each on its own
    # fresh core where possible.  Duplication waits until everything has a
    # home, so greedy replication can never starve a later layer.
    stages = pipeline.compute_stages
    for stage in stages:
        tiling = weight_tiling(stage, config.crossbar.rows,
                               config.crossbar.cols,
                               config.crossbar.slices_per_weight)
        per_copy = tiling.crossbars_per_copy
        if per_copy <= capacity:
            core = budget.acquire(per_copy, stage.name)
            plan = StagePlan(stage=stage, tiling=tiling, copies=1)
            plan.slices.append(Slice(
                core=core, copy=0,
                row_lo=0, row_hi=tiling.row_blocks,
                col_lo=0, col_hi=tiling.col_blocks,
            ))
            budget.charge(core, per_copy)
        else:
            plan = StagePlan(stage=stage, tiling=tiling, copies=1)
            _distribute_large(plan, tiling, budget)
        placement.plans[stage.name] = plan

    # Pass 2 — PIMCOMP-style replication: fill each single-core stage's
    # spare crossbars with whole duplicates (copies never span cores).
    if comp.allow_duplication:
        for stage in stages:
            plan = placement.plans[stage.name]
            if len(plan.cores) != 1:
                continue
            core = plan.cores[0]
            tiling = plan.tiling
            per_copy = tiling.crossbars_per_copy
            max_useful = max(1, min(comp.tile_pixels, stage.out_pixels))
            extra = min(
                budget.free_on(core) // per_copy,
                comp.max_duplication - 1,
                max_useful - 1,
            )
            for copy in range(1, 1 + max(0, extra)):
                plan.slices.append(Slice(
                    core=core, copy=copy,
                    row_lo=0, row_hi=tiling.row_blocks,
                    col_lo=0, col_hi=tiling.col_blocks,
                ))
                budget.charge(core, per_copy)
                plan.copies += 1

    placement.validate(capacity)
    placement.meta["degraded_stages"] = budget.degraded
    return placement


def _distribute_large(plan: StagePlan, tiling, budget: _CoreBudget) -> None:
    """Spread one copy of an over-sized matrix across multiple cores."""
    if tiling.row_blocks <= budget.capacity:
        # Strip-granular: whole column strips per core, never splitting a
        # strip (partial sums stay core-local).
        col = 0
        while col < tiling.col_blocks:
            core = budget.acquire(tiling.row_blocks, plan.stage.name)
            room = budget.free_on(core) // tiling.row_blocks
            take = min(room, tiling.col_blocks - col)
            plan.slices.append(Slice(
                core=core, copy=0,
                row_lo=0, row_hi=tiling.row_blocks,
                col_lo=col, col_hi=col + take,
            ))
            budget.charge(core, take * tiling.row_blocks)
            col += take
    else:
        # A single strip exceeds a core: split rows (partial-sum traffic).
        for col in range(tiling.col_blocks):
            row = 0
            while row < tiling.row_blocks:
                core = budget.acquire(1, plan.stage.name)
                take = min(tiling.row_blocks - row, budget.free_on(core))
                plan.slices.append(Slice(
                    core=core, copy=0,
                    row_lo=row, row_hi=row + take,
                    col_lo=col, col_hi=col + 1,
                ))
                budget.charge(core, take)
                row += take
