"""Weight-mapping policies (Section III-A of the paper)."""

from .performance_first import map_performance_first
from .utilization_first import map_utilization_first

__all__ = ["map_utilization_first", "map_performance_first", "map_network"]


def map_network(pipeline, config):
    """Dispatch to the policy named in ``config.compiler.mapping``."""
    policy = config.compiler.mapping
    if policy == "utilization_first":
        return map_utilization_first(pipeline, config)
    if policy == "performance_first":
        return map_performance_first(pipeline, config)
    raise ValueError(f"unknown mapping policy {policy!r}")
