"""Utilization-first mapping.

From the paper: "the weights of layers are mapped to cores one by one in a
tight way.  For a weights matrix, if current core has enough crossbars, we
map the whole matrix to the core, if not, we map part of the matrix to the
core according to the available crossbars.  This may result in one core
storing multiple layers' weights."

Consequences the simulator then measures (Fig. 3): weight matrices split
across core boundaries need input broadcast to every fragment and partial
sums gathered at the stage's home core ("more intra-layer communications"),
and cores holding several layers serialize their tile work ("reduces the
parallelism").  No weight duplication is performed — every crossbar holds a
distinct weight tile, maximizing utilization.

Besides crossbars, the packer also budgets each core's local memory (input
rings, accumulators, output rings are all per-resident-stage costs): a
core advances when either resource is exhausted.
"""

from __future__ import annotations

from ..frontend import CompileError, Pipeline, Stage
from ..placement import Placement, Slice, StagePlan
from ..tiling import weight_tiling

__all__ = ["map_utilization_first", "estimate_stage_memory"]

#: share of local memory the packer may claim; the remainder covers aux
#: stages (joins, pools) whose home cores are only known after codegen.
_MEMORY_BUDGET_FRACTION = 0.75


def estimate_stage_memory(stage: Stage, pipeline: Pipeline, config) -> int:
    """Conservative local-memory footprint of one resident compute stage.

    Upper-bounds what codegen will allocate: accumulator, 8-deep partial
    ring, output ring, and the input rings of every edge (producer tiles).
    """
    comp = config.compiler
    px = min(comp.tile_pixels, stage.out_pixels)
    cpp = stage.compute_per_pixel
    acc = px * cpp * stage.out_channels * 4
    part = 8 * px * cpp * min(stage.out_channels, config.crossbar.cols) * 4
    out = 8 * px * stage.out_channels * comp.activation_bytes
    in_rings = 0
    for edge in stage.edges:
        producer = pipeline.stage(edge.producer)
        p_px = min(comp.tile_pixels, producer.out_pixels)
        slots = (max(1, -(-producer.out_pixels // comp.tile_pixels))
                 if edge.full_input else 12)
        in_rings += slots * p_px * producer.out_channels * comp.activation_bytes
    return acc + part + out + in_rings


def map_utilization_first(pipeline: Pipeline, config) -> Placement:
    """Pack every compute stage tightly onto the core array, in order."""
    capacity = config.core.crossbars_per_core
    mem_budget = int(config.core.local_memory_bytes * _MEMORY_BUDGET_FRACTION)
    n_cores = config.chip.n_cores
    placement = Placement(policy="utilization_first")

    core = 0
    free = capacity
    mem_free = mem_budget

    def advance() -> None:
        nonlocal core, free, mem_free
        core += 1
        free = capacity
        mem_free = mem_budget
        if core >= n_cores:
            raise CompileError(
                f"network {pipeline.network!r} does not fit: "
                f"{n_cores} cores x {capacity} crossbars exhausted "
                f"(utilization-first)"
            )

    for stage in pipeline.compute_stages:
        tiling = weight_tiling(stage, config.crossbar.rows,
                               config.crossbar.cols,
                               config.crossbar.slices_per_weight)
        plan = StagePlan(stage=stage, tiling=tiling, copies=1)
        stage_mem = estimate_stage_memory(stage, pipeline, config)
        if free == 0 or (mem_free < stage_mem and free < capacity):
            advance()
        mem_free -= stage_mem

        # Walk column strips; split a strip's row blocks across the core
        # boundary when the current core cannot hold all of them.
        for col_block in range(tiling.col_blocks):
            row = 0
            while row < tiling.row_blocks:
                if free == 0:
                    advance()
                    # A split fragment re-pays the stage's buffers on the
                    # fresh core (input broadcast, partial accumulators).
                    mem_free -= stage_mem
                take = min(tiling.row_blocks - row, free)
                plan.slices.append(Slice(
                    core=core, copy=0,
                    row_lo=row, row_hi=row + take,
                    col_lo=col_block, col_hi=col_block + 1,
                ))
                free -= take
                row += take

        plan.slices = _merge_slices(plan.slices)
        placement.plans[stage.name] = plan

    placement.validate(capacity)
    return placement


def _merge_slices(slices: list[Slice]) -> list[Slice]:
    """Merge adjacent full-height column strips on the same core.

    Purely cosmetic compaction — group construction later unions columns
    per row block anyway — but it keeps placement dumps readable.
    """
    merged: list[Slice] = []
    for sl in slices:
        if merged:
            last = merged[-1]
            if (last.core == sl.core and last.copy == sl.copy
                    and last.row_lo == sl.row_lo and last.row_hi == sl.row_hi
                    and last.col_hi == sl.col_lo):
                merged[-1] = Slice(core=last.core, copy=last.copy,
                                   row_lo=last.row_lo, row_hi=last.row_hi,
                                   col_lo=last.col_lo, col_hi=sl.col_hi)
                continue
        merged.append(sl)
    return merged
