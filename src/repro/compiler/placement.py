"""Placement data structures shared by the mapping policies.

A *slice* is a rectangular block of crossbar tiles — one copy of part of a
stage's weight matrix — living on one core.  A stage's placement is the set
of slices (covering copy 0 completely; additional copies are whole
duplicates used for pixel-level parallelism), plus derived views the code
generator consumes: which cores compute the stage, which column blocks each
core *owns* end-to-end (all row blocks present, so partial sums never leave
the core), and which are split (partial contributions must travel to the
stage's home core — the intra-layer communication that penalizes the
utilization-first policy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .frontend import CompileError, Pipeline, Stage
from .tiling import WeightTiling, n_tiles

__all__ = ["Slice", "StagePlan", "Placement", "assign_shard_groups"]


@dataclass(frozen=True)
class Slice:
    """Crossbar tiles [row_lo,row_hi) x [col_lo,col_hi) of one copy,
    resident on one core."""

    core: int
    copy: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int

    def __post_init__(self) -> None:
        if self.row_lo >= self.row_hi or self.col_lo >= self.col_hi:
            raise CompileError(f"empty slice {self}")

    @property
    def n_tiles(self) -> int:
        return (self.row_hi - self.row_lo) * (self.col_hi - self.col_lo)


@dataclass
class StagePlan:
    """Complete placement of one compute stage."""

    stage: Stage
    tiling: WeightTiling
    copies: int
    slices: list[Slice] = field(default_factory=list)

    # -- derived views --------------------------------------------------------

    @property
    def cores(self) -> list[int]:
        """Cores computing this stage, in first-appearance order."""
        seen: list[int] = []
        for sl in self.slices:
            if sl.core not in seen:
                seen.append(sl.core)
        return seen

    @property
    def home_core(self) -> int:
        """The aggregation/distribution core (most crossbar tiles wins)."""
        if not self.slices:
            raise CompileError(f"stage {self.stage.name!r} has no slices")
        per_core: dict[int, int] = {}
        for sl in self.slices:
            per_core[sl.core] = per_core.get(sl.core, 0) + sl.n_tiles
        best = max(per_core.values())
        for core in self.cores:  # first-appearance tie-break: deterministic
            if per_core[core] == best:
                return core
        raise AssertionError("unreachable")

    def slices_on(self, core: int) -> list[Slice]:
        return [sl for sl in self.slices if sl.core == core]

    def copies_on(self, core: int) -> list[int]:
        """Copy indices with at least one slice on this core."""
        out: list[int] = []
        for sl in self.slices:
            if sl.core == core and sl.copy not in out:
                out.append(sl.copy)
        return out

    def col_cells_on(self, core: int) -> int:
        """Distinct weight columns (actual cells) present on a core."""
        cols: set[int] = set()
        for sl in self.slices_on(core):
            cols.update(range(sl.col_lo, sl.col_hi))
        return sum(self.tiling.block_cols(cb) for cb in cols)

    def owned_col_blocks(self, core: int, copy: int) -> set[int]:
        """Column blocks for which this core holds *all* row blocks of
        ``copy`` — their outputs are complete without cross-core sums."""
        rows_per_col: dict[int, set[int]] = {}
        for sl in self.slices:
            if sl.core != core or sl.copy != copy:
                continue
            for cb in range(sl.col_lo, sl.col_hi):
                rows_per_col.setdefault(cb, set()).update(
                    range(sl.row_lo, sl.row_hi))
        full = set(range(self.tiling.row_blocks))
        return {cb for cb, rows in rows_per_col.items() if rows == full}

    def is_split(self) -> bool:
        """Whether any copy has a column block spread across cores."""
        for copy in range(self.copies):
            cores_of_copy = {sl.core for sl in self.slices if sl.copy == copy}
            if len(cores_of_copy) <= 1:
                continue
            owned = set()
            for core in cores_of_copy:
                owned |= self.owned_col_blocks(core, copy)
            if owned != set(range(self.tiling.col_blocks)):
                return True
        return False

    def validate(self) -> None:
        """Every copy must tile the full matrix exactly once."""
        for copy in range(self.copies):
            covered: dict[tuple[int, int], int] = {}
            for sl in self.slices:
                if sl.copy != copy:
                    continue
                for r in range(sl.row_lo, sl.row_hi):
                    for c in range(sl.col_lo, sl.col_hi):
                        covered[(r, c)] = covered.get((r, c), 0) + 1
            expected = self.tiling.row_blocks * self.tiling.col_blocks
            if len(covered) != expected or any(v != 1 for v in covered.values()):
                raise CompileError(
                    f"stage {self.stage.name!r} copy {copy}: weight tiles "
                    f"covered {len(covered)}/{expected} (duplicates: "
                    f"{sum(1 for v in covered.values() if v > 1)})"
                )

    def pixel_share(self, copy: int, lo: int, hi: int) -> tuple[int, int]:
        """Partition of a tile's pixel range [lo,hi) among copies.

        Pixels are dealt to copies in contiguous chunks; returns the chunk
        of ``copy`` (possibly empty -> lo == hi).
        """
        total = hi - lo
        base = total // self.copies
        extra = total % self.copies
        start = lo + copy * base + min(copy, extra)
        size = base + (1 if copy < extra else 0)
        return start, start + size


@dataclass
class Placement:
    """Placement of every compute stage of a network."""

    policy: str
    plans: dict[str, StagePlan] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    #: dynamic (token-shardable) aux stage -> cores sharing its token
    #: range, home core first; filled by :func:`assign_shard_groups`
    #: when ``compiler.attention_shards > 1``.
    shard_groups: dict[str, list[int]] = field(default_factory=dict)

    def plan(self, stage_name: str) -> StagePlan:
        try:
            return self.plans[stage_name]
        except KeyError:
            raise CompileError(f"no placement for stage {stage_name!r}") from None

    def crossbars_per_core(self) -> dict[int, int]:
        """Physical crossbars claimed on each core."""
        out: dict[int, int] = {}
        for plan in self.plans.values():
            for sl in plan.slices:
                out[sl.core] = out.get(sl.core, 0) + sl.n_tiles
        return out

    def stages_per_core(self) -> dict[int, list[str]]:
        out: dict[int, list[str]] = {}
        for name, plan in self.plans.items():
            for core in plan.cores:
                out.setdefault(core, []).append(name)
        return out

    def validate(self, crossbars_per_core: int) -> None:
        for plan in self.plans.values():
            plan.validate()
        for core, used in self.crossbars_per_core().items():
            if used > crossbars_per_core:
                raise CompileError(
                    f"core {core} over-subscribed: {used} crossbars > "
                    f"capacity {crossbars_per_core}"
                )

    def summary(self) -> str:
        per_core = self.crossbars_per_core()
        lines = [f"placement ({self.policy}): {len(self.plans)} stages on "
                 f"{len(per_core)} cores"]
        for name, plan in self.plans.items():
            lines.append(
                f"  {name:<24} copies={plan.copies} cores={plan.cores} "
                f"tiles/copy={plan.tiling.crossbars_per_copy} "
                f"{'SPLIT' if plan.is_split() else ''}"
            )
        return "\n".join(lines)


def assign_shard_groups(pipeline: Pipeline, placement: Placement, config,
                        homes: dict[str, int | None],
                        tile_pixels: int) -> None:
    """Assign a shard group to every token-shardable dynamic stage.

    The scale-out move of the crossbar mapping's split conv layers,
    applied to the vector unit: each dynamic attention op (matmul /
    per-head softmax / layernorm / gelu) gets ``attention_shards`` cores
    that each compute a contiguous slice of its token range and gather
    partial results back to the home core.  The group is the home core
    plus its nearest mesh neighbours (Manhattan distance, core-id
    tie-break — deterministic), capped by the stage's tile count: a
    shard with no tiles would be pure overhead.

    ``compiler.shard_placement="load_aware"`` adds a static-crossbar-load
    penalty (one mesh hop per full relative load) to each neighbour's
    distance, so cores already hot with crossbar work are skipped when an
    idle core is at most a hop farther — the fix for the scaling-curve
    tail where the nearest neighbour is also the busiest core.  The
    default ``"distance"`` keeps the classic ordering bit-identical.

    Stores the groups on ``placement.shard_groups`` (home first); stages
    keep the classic single-core lowering when the effective group is 1.
    """
    shards = config.compiler.attention_shards
    if shards <= 1:
        return
    n_cores = config.chip.n_cores
    load_aware = config.compiler.shard_placement == "load_aware"
    loads = placement.crossbars_per_core() if load_aware else {}
    max_load = max(loads.values(), default=0)
    for stage in pipeline:
        if stage.kind != "aux" or not stage.shardable:
            continue
        n = min(shards, n_tiles(stage, tile_pixels), n_cores)
        if n <= 1:
            continue
        home = homes[stage.name]
        if home is None:  # pragma: no cover - aux homes are always set
            continue
        hx, hy = config.core_xy(home)

        def distance(core: int) -> int:
            x, y = config.core_xy(core)
            return abs(x - hx) + abs(y - hy)

        def score(core: int) -> float:
            # Load-aware placement: a fully loaded core costs as much as
            # one extra mesh hop, so sharding trades at most one hop of
            # gather distance to land on an idle core.  Deterministic:
            # the penalty is a pure function of the static placement,
            # and ties fall back to distance then core id.
            if not load_aware or max_load == 0:
                return float(distance(core))
            return distance(core) + loads.get(core, 0) / max_load

        order = sorted(range(n_cores),
                       key=lambda c: (c != home, score(c), distance(c), c))
        placement.shard_groups[stage.name] = order[:n]


def copies_that_fit(tiling: WeightTiling, spare_crossbars: int,
                    max_copies: int, max_useful: int) -> int:
    """How many whole duplicates fit in a crossbar budget."""
    per_copy = tiling.crossbars_per_copy
    by_space = max(1, spare_crossbars // per_copy) if per_copy <= spare_crossbars else 1
    return max(1, min(by_space, max_copies, max_useful))


def ceil_div(a: int, b: int) -> int:
    return math.ceil(a / b)
