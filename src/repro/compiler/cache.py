"""In-process compilation cache.

Sweeps (Figs. 3-5) repeatedly compile the same ``(network, architecture,
mapping)`` point: the ROB sweep simulates one compiled program under many
ROB capacities, ``compare_mappings`` shares everything but the mapping
policy, and batch experiments recompile per batch size.  The cache keys
compilations on the *compiler-visible* part of the configuration so those
repeats skip the whole frontend/mapping/codegen flow.

Two normalizations make the key:

* the ``sim`` section is dropped — frequency, trace and cycle limits only
  affect simulation;
* ``core.rob_size`` is normalized out — the ROB bounds dynamic issue in the
  simulator, the static program is identical for every capacity (this is
  what lets :func:`repro.runner.sweep.sweep_rob` reuse one compiled
  program across the whole Fig. 4 axis);
* the cosmetic ``name`` field is dropped.

Graphs are keyed by object identity (the entry pins the graph so the id
cannot be recycled); :func:`repro.runner.api.resolve_network` memoizes zoo
models so repeated ``simulate("vgg8", ...)`` calls share one graph object
and therefore hit this cache.

Ownership note: each :class:`repro.engine.Engine` holds its *own*
``CompileCache`` (plus a private model cache), so sessions with different
configurations cannot poison each other.  The module-level
:data:`compile_cache` below is kept for the legacy one-shot surface — it
is the cache of :func:`repro.engine.default_engine`, and its process-wide
counters still feed ``report.meta["compile_cache_*"]`` for those calls.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict

from ..config import ArchConfig
from ..graph import Graph
from .pipeline import CompilationResult, compile_network

__all__ = ["CompileCache", "compile_cache", "config_fingerprint"]


def config_fingerprint(config: ArchConfig) -> str:
    """Canonical string of the compiler-visible configuration subset."""
    data = config.to_dict()
    data.pop("sim", None)
    data.pop("name", None)
    core = data.get("core")
    if isinstance(core, dict):
        core["rob_size"] = None
    return json.dumps(data, sort_keys=True, default=str)


class CompileCache:
    """LRU cache of :class:`CompilationResult` keyed on (graph, config).

    Thread-safe; every worker process of a parallel sweep holds its own
    instance (the module-level :data:`compile_cache`), so repeated points
    within one worker skip recompilation without any cross-process traffic.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        #: key -> (graph, result); the graph reference pins its id().
        self._entries: "OrderedDict[tuple, tuple[Graph, CompilationResult]]" = (
            OrderedDict())
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compile(self, graph: Graph, config: ArchConfig) -> CompilationResult:
        """Return the cached compilation for this point, compiling on miss."""
        key = (id(graph), config_fingerprint(config))
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is graph:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[1]
        # Compile outside the lock; a racing duplicate compile is benign
        # (both produce equivalent results, last writer wins).
        result = compile_network(graph, config)
        with self._lock:
            self.misses += 1
            self._entries[key] = (graph, result)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return result

    def stats(self) -> dict:
        """Counters snapshot (also attached to ``SimReport.meta``)."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: process-global cache used by :func:`repro.runner.api.simulate`.
compile_cache = CompileCache()
