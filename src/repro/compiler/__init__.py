"""The PIMCOMP-style compiler: frontend, mapping, allocation, codegen."""

from .allocator import AllocatorSet, CoreAllocator, Region
from .batching import repeat_chip_program
from .cache import CompileCache, compile_cache, config_fingerprint
from .codegen import ACC_BYTES, generate_code
from .frontend import (
    CompileError,
    Pipeline,
    Stage,
    StageEdge,
    build_pipeline,
    shard_tile_ranges,
)
from .mapping import map_network, map_performance_first, map_utilization_first
from .pipeline import CompilationResult, compile_network
from .placement import Placement, Slice, StagePlan, assign_shard_groups
from .stepwise import StepTemplate, StepwiseError, compile_step_template
from .tiling import (
    WeightTiling,
    compute_levels,
    n_tiles,
    required_tile,
    tile_pixel_range,
    weight_tiling,
)

__all__ = [
    "compile_network",
    "compile_step_template",
    "StepTemplate",
    "StepwiseError",
    "repeat_chip_program",
    "CompilationResult",
    "CompileCache",
    "compile_cache",
    "config_fingerprint",
    "build_pipeline",
    "Pipeline",
    "Stage",
    "StageEdge",
    "CompileError",
    "map_network",
    "map_utilization_first",
    "map_performance_first",
    "Placement",
    "StagePlan",
    "Slice",
    "assign_shard_groups",
    "shard_tile_ranges",
    "WeightTiling",
    "weight_tiling",
    "n_tiles",
    "tile_pixel_range",
    "required_tile",
    "compute_levels",
    "generate_code",
    "ACC_BYTES",
    "AllocatorSet",
    "CoreAllocator",
    "Region",
]
