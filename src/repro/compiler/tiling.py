"""Tile decomposition and tile-level dependence analysis.

Every stage's output is processed in *tiles* of up to ``tile_pixels``
output pixels (row-major over the feature map; fc-like stages are a single
tile).  This module answers three questions the mapper and code generator
need:

* how a weight matrix decomposes into crossbar row/column blocks,
* which producer tiles a consumer tile depends on (:func:`required_tile` —
  exact sliding-window geometry, monotone in the tile index),
* a global *level* per (stage, tile) work item such that every dependency
  of an item has a strictly smaller level.  Per-core instruction streams
  emitted in level order are deadlock-free under windowed synchronized
  flows (see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .frontend import CompileError, Pipeline, Stage, StageEdge

__all__ = [
    "WeightTiling",
    "weight_tiling",
    "n_tiles",
    "tile_pixel_range",
    "required_tile",
    "compute_levels",
]


@dataclass(frozen=True)
class WeightTiling:
    """Crossbar-block decomposition of one weight matrix."""

    rows: int
    cols: int
    xbar_rows: int
    xbar_cols: int

    @property
    def row_blocks(self) -> int:
        return math.ceil(self.rows / self.xbar_rows)

    @property
    def col_blocks(self) -> int:
        return math.ceil(self.cols / self.xbar_cols)

    @property
    def crossbars_per_copy(self) -> int:
        return self.row_blocks * self.col_blocks

    def block_rows(self, row_block: int) -> int:
        """Actual weight rows in a given row block (last may be partial)."""
        if not 0 <= row_block < self.row_blocks:
            raise CompileError(f"row block {row_block} out of range")
        return min(self.xbar_rows, self.rows - row_block * self.xbar_rows)

    def block_cols(self, col_block: int) -> int:
        """Actual weight columns in a given column block."""
        if not 0 <= col_block < self.col_blocks:
            raise CompileError(f"col block {col_block} out of range")
        return min(self.xbar_cols, self.cols - col_block * self.xbar_cols)


def weight_tiling(stage: Stage, xbar_rows: int, xbar_cols: int,
                  col_multiplier: int = 1) -> WeightTiling:
    """Tiling of a compute stage's weight matrix.

    ``col_multiplier`` expands logical weight columns into physical
    crossbar columns — bit-sliced weights occupy
    ``CrossbarConfig.slices_per_weight`` columns each, whose partial
    products the vector unit shift-adds during accumulation.
    """
    if stage.weight is None:
        raise CompileError(f"stage {stage.name!r} has no weight matrix")
    rows, cols = stage.weight
    return WeightTiling(rows, cols * col_multiplier, xbar_rows, xbar_cols)


def n_tiles(stage: Stage, tile_pixels: int) -> int:
    """Number of output tiles for a stage.

    A cache stage is always one tile: its pixel count is the *runtime*
    decode extent, and a single tile covering the whole buffer keeps the
    program structure (instruction and message counts) extent-invariant
    — only the transfer byte counts scale with the extent.
    """
    if stage.kind == "cache":
        return 1
    return max(1, math.ceil(stage.out_pixels / tile_pixels))


def tile_pixel_range(stage: Stage, tile_pixels: int, tile: int) -> tuple[int, int]:
    """Half-open output-pixel range covered by one tile."""
    total = stage.out_pixels
    if stage.kind == "cache":
        tile_pixels = max(tile_pixels, total)  # single whole-buffer tile
    lo = tile * tile_pixels
    hi = min(total, lo + tile_pixels)
    if lo >= total:
        raise CompileError(
            f"tile {tile} out of range for stage {stage.name!r} "
            f"({total} pixels / {tile_pixels} per tile)"
        )
    return lo, hi


def required_tile(consumer: Stage, edge: StageEdge, producer: Stage,
                  tile_pixels: int, tile: int) -> int:
    """Highest producer tile index that consumer ``tile`` depends on.

    Exact sliding-window geometry: the consumer tile's last output pixel
    maps to an output row; through (kernel, stride, padding) that row pulls
    input rows up to ``y*stride - pad + kernel - 1``; the last needed input
    pixel then identifies the producer tile.  Monotone non-decreasing in
    ``tile`` by construction.
    """
    tp = n_tiles(producer, tile_pixels)
    if edge.full_input:
        return tp - 1

    if len(consumer.out_shape) != 3:
        return tp - 1
    _, hi = tile_pixel_range(consumer, tile_pixels, tile)
    out_w = consumer.out_shape[2]
    last_out_row = (hi - 1) // out_w
    # A fused pool multiplies the pre-pool rows consumed per output row.
    pool_k = 1
    for op in ("maxpool", "avgpool"):
        k = consumer.attrs.get(f"fused_{op}_kernel")
        if k:
            pool_k = k
    pre_pool_row = (last_out_row + 1) * pool_k - 1
    in_row = pre_pool_row * edge.stride - edge.padding + edge.kernel - 1
    prod_h, prod_w = producer.out_hw
    in_row = min(prod_h - 1, max(0, in_row))
    last_in_pixel = (in_row + 1) * prod_w - 1
    req = last_in_pixel // tile_pixels
    return min(tp - 1, req)


def edge_requirements(pipeline: Pipeline,
                      tile_pixels: int) -> dict[tuple[str, int], list[int]]:
    """Per-edge dependence maps: ``req[(consumer, edge_idx)][tile]`` is the
    highest producer tile that consumer tile needs (cached arrays)."""
    stage_by_name = {s.name: s for s in pipeline.stages}
    reqs: dict[tuple[str, int], list[int]] = {}
    for stage in pipeline.stages:
        nt = n_tiles(stage, tile_pixels)
        for edge_idx, edge in enumerate(stage.edges):
            producer = stage_by_name[edge.producer]
            reqs[(stage.name, edge_idx)] = [
                required_tile(stage, edge, producer, tile_pixels, t)
                for t in range(nt)
            ]
    return reqs


def compute_levels(pipeline: Pipeline, tile_pixels: int) -> dict[str, list[int]]:
    """Dependency level of every (stage, tile) work item.

    ``level[stage.name][tile]`` is strictly greater than the level of every
    producer tile the item needs.  Input-stage items are seeded with their
    own tile index — modelling the streaming arrival of the input — so
    levels grow along the tile axis and per-core programs interleave all
    resident stages in pipelined rounds instead of running one stage to
    completion first.  Levels give all cores a common topological order
    over work items (the deadlock-freedom argument in DESIGN.md).
    """
    reqs = edge_requirements(pipeline, tile_pixels)
    levels: dict[str, list[int]] = {}
    for stage in pipeline.stages:
        nt = n_tiles(stage, tile_pixels)
        if stage.kind == "input":
            levels[stage.name] = list(range(nt))
            continue
        mine: list[int] = []
        for tile in range(nt):
            deepest = 0
            for edge_idx, edge in enumerate(stage.edges):
                req = reqs[(stage.name, edge_idx)][tile]
                deepest = max(deepest, levels[edge.producer][req])
            # Strictly increasing along the tile axis: dependence maps clamp
            # at the feature-map boundary, and without this the tail items
            # of a stage collapse onto one level, destroying the pipelined
            # interleaving that the flow-window sizing relies on.
            level = deepest + 1
            if mine and level <= mine[-1]:
                level = mine[-1] + 1
            mine.append(level)
        levels[stage.name] = mine
    return levels


def edge_skews(pipeline: Pipeline, tile_pixels: int) -> dict[tuple[str, int], int]:
    """Pipeline skew of every edge, in producer-tile units.

    For edge ``P -> S``, the skew bounds how far P must be able to run
    ahead of S's consumption before S's item can execute.  Two effects
    contribute:

    * *data skew* — the highest P tile transitively required by item
      (S, t) through any ancestor path (``need_P``); the identity shortcut
      of a residual block accumulates the halo lag of the convolutional
      path it bypasses;
    * *order skew* — items are emitted per core in global (level, topo,
      tile) order, so (S, t) also waits for every same-core predecessor,
      which may transitively require even later P tiles.  This is bounded
      by the *need curve* ``G_P(L)`` = max P tile required by any item of
      level <= L, evaluated at (S, t)'s level.

    The code generator sizes each flow's credit window (and its input
    ring) as ``skew + sync_window``: a synchronized SEND then never stalls
    its producer before the consumer genuinely cannot progress, which
    (with per-flow send queues) makes windowed synchronized communication
    deadlock-free on arbitrary DAGs.  This is exactly the buffering a real
    compiler must provision for skip connections and branch joins.
    """
    from bisect import bisect_right

    reqs = edge_requirements(pipeline, tile_pixels)
    levels = compute_levels(pipeline, tile_pixels)
    stage_by_name = {s.name: s for s in pipeline.stages}
    producers_of_interest = {e.producer for s in pipeline.stages for e in s.edges}
    skews: dict[tuple[str, int], int] = {}

    for pname in producers_of_interest:
        if stage_by_name[pname].kind in ("input", "cache"):
            continue  # global-memory LOADs are not windowed
        # need[X] = per-tile max P-tile transitively required by stage X.
        need: dict[str, list[int]] = {pname: list(range(
            n_tiles(stage_by_name[pname], tile_pixels)))}
        for stage in pipeline.stages:
            if stage.name == pname or stage.kind == "input":
                continue
            contributions: list[list[int]] = []
            for edge_idx, edge in enumerate(stage.edges):
                upstream = need.get(edge.producer)
                if upstream is None:
                    continue
                req = reqs[(stage.name, edge_idx)]
                contributions.append([upstream[q] for q in req])
            if contributions:
                nt = n_tiles(stage, tile_pixels)
                need[stage.name] = [
                    max(c[t] for c in contributions) for t in range(nt)
                ]
        # Need curve: for every item of any stage needing P, (level, need).
        points = sorted(
            (levels[xname][u], xneed[u])
            for xname, xneed in need.items()
            for u in range(len(xneed))
        )
        curve_levels = [p[0] for p in points]
        curve_need: list[int] = []
        running = -1
        for _, value in points:
            running = max(running, value)
            curve_need.append(running)

        for stage in pipeline.stages:
            for edge_idx, edge in enumerate(stage.edges):
                if edge.producer != pname:
                    continue
                req = reqs[(stage.name, edge_idx)]
                lv = levels[stage.name]
                worst = 0
                for t in range(len(req)):
                    pos = bisect_right(curve_levels, lv[t]) - 1
                    if pos >= 0:
                        worst = max(worst, curve_need[pos] - req[t])
                skews[(stage.name, edge_idx)] = worst
    return skews
