"""Compiler frontend: network graph -> pipeline of schedulable stages.

The frontend lowers the operator graph into a linear, topologically ordered
list of :class:`Stage` objects:

* ``input`` — the network input, resident in global memory;
* ``compute`` — a conv/fc layer (the crossbar-mapped ops), optionally with
  *fused* post-operators (relu, then a stride==kernel pool) executed by the
  same core's vector unit — the flexibility the paper contrasts against
  MNSIM2.0's fixed PE data-path;
* ``aux`` — remaining ops (add, concat, standalone pools, lrn, softmax,
  global_avgpool, and the attention ops: matmul, layernorm, gelu,
  transpose) executed on the vector unit of their *home* core.  A
  ``matmul`` of two activations is *dynamic* — neither operand is a
  weight, so it cannot be mapped onto crossbars; the vector unit runs it
  as a MAC stream (``VMATMUL``);
* ``cache`` — a ``kv_cache`` append: the stage receives one projected
  token and commits it to the layer's growing K/V buffer in global
  memory; consumers read the whole buffer back like a network input.

A pipeline with cache stages is *extent-parameterized*: the decode
extent (``Pipeline.extent``, current cache length) scales the dynamic
attention work while the program structure stays fixed.  Stages whose
output grows with the extent carry a capacity-sized ``alloc_shape``
(sized for ``Pipeline.extent_capacity``), so buffers, tile counts and
flow message counts are extent-invariant and only *numeric* instruction
fields (transfer bytes, vector lengths) vary — affinely — with the
extent.  That invariance is what :mod:`repro.compiler.stepwise` builds
step-reusable program templates on.

Identity-at-inference ops are folded away: ``flatten`` / ``reshape``
(pure relayouts), ``dropout`` (inference no-op) and ``batchnorm`` (folded
into the preceding layer's weights, as deployments do).

Each stage also records its *edges* — which stages feed it — together with
the dependency geometry (kernel/stride/pad or full-input) that
:mod:`repro.compiler.tiling` turns into tile-level dependence maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..graph import Graph, Node, is_token_shardable, weight_shape

__all__ = ["Stage", "StageEdge", "Pipeline", "build_pipeline", "CompileError",
           "shard_tile_ranges"]

#: ops folded away at inference time.
_FOLDED_OPS = ("flatten", "dropout", "batchnorm", "reshape")

#: ops that become aux stages when not fused.
_AUX_OPS = ("add", "concat", "maxpool", "avgpool", "global_avgpool",
            "relu", "softmax", "lrn",
            "matmul", "layernorm", "gelu", "transpose")


class CompileError(ValueError):
    """The compiler cannot lower this network onto this architecture."""


@dataclass(frozen=True)
class StageEdge:
    """A producer->consumer data edge between stages.

    ``kernel``/``stride``/``padding`` describe how the consumer's output
    pixels map back onto producer pixels (1/1/0 for element-wise consumers);
    ``full_input`` marks consumers that need the entire producer output
    before any work (fc, global pools).
    """

    producer: str
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    full_input: bool = False


@dataclass
class Stage:
    """One schedulable unit of the lowered network."""

    name: str
    kind: str                       # "input" | "compute" | "aux" | "cache"
    op: str                         # anchor op ("conv", "fc", "add", ...)
    out_shape: tuple[int, ...]
    edges: list[StageEdge] = field(default_factory=list)
    #: fused post-operator chain, e.g. ["relu", "maxpool"].
    post_ops: list[str] = field(default_factory=list)
    #: weight matrix (rows, cols); None for non-compute stages.
    weight: tuple[int, int] | None = None
    #: spatial compute amplification from a fused pool: each *output* pixel
    #: of the stage requires this many pre-pool pixels through the crossbars.
    compute_per_pixel: int = 1
    #: attrs of the anchor node (kernel/stride/... for pools).
    attrs: dict = field(default_factory=dict)
    #: dynamic vector-unit op whose output tokens are independent, so the
    #: compiler may split its token range across a shard group of cores
    #: (``compiler.attention_shards``); see ``graph.ops.is_token_shardable``.
    shardable: bool = False
    #: capacity-sized shape the allocator provisions for (``None``: same
    #: as ``out_shape``).  Set on extent-scaled stages of a decode
    #: pipeline so local-memory layout does not shift with the extent.
    alloc_shape: tuple[int, ...] | None = None
    topo_index: int = -1

    @property
    def out_channels(self) -> int:
        return self.out_shape[0]

    @property
    def out_pixels(self) -> int:
        if len(self.out_shape) == 3:
            return self.out_shape[1] * self.out_shape[2]
        return 1

    @property
    def alloc_channels(self) -> int:
        """Channel count the allocator provisions buffers for."""
        return (self.alloc_shape or self.out_shape)[0]

    @property
    def alloc_pixels(self) -> int:
        """Pixel count the allocator provisions buffers for."""
        shape = self.alloc_shape or self.out_shape
        if len(shape) == 3:
            return shape[1] * shape[2]
        return 1

    @property
    def extent_scaled(self) -> bool:
        """Whether this stage's output grows with the decode extent."""
        return self.alloc_shape is not None

    @property
    def out_elements(self) -> int:
        n = 1
        for d in self.out_shape:
            n *= d
        return n

    @property
    def out_hw(self) -> tuple[int, int]:
        if len(self.out_shape) == 3:
            return self.out_shape[1], self.out_shape[2]
        return 1, 1

    def __repr__(self) -> str:
        fused = f"+{'+'.join(self.post_ops)}" if self.post_ops else ""
        return f"<Stage {self.name} {self.op}{fused} -> {self.out_shape}>"


@dataclass
class Pipeline:
    """The lowered network: stages in topological order."""

    network: str
    stages: list[Stage]
    #: decode extent (current KV-cache length) and the capacity buffers
    #: are provisioned for; ``None`` for classic fixed-extent networks.
    extent: int | None = None
    extent_capacity: int | None = None

    def __post_init__(self) -> None:
        self._by_name = {s.name: s for s in self.stages}
        for index, stage in enumerate(self.stages):
            stage.topo_index = index

    def stage(self, name: str) -> Stage:
        try:
            return self._by_name[name]
        except KeyError:
            raise CompileError(f"no stage named {name!r}") from None

    def consumers(self, name: str) -> list[Stage]:
        return [s for s in self.stages
                if any(e.producer == name for e in s.edges)]

    @property
    def compute_stages(self) -> list[Stage]:
        return [s for s in self.stages if s.kind == "compute"]

    @property
    def output_stages(self) -> list[Stage]:
        consumed = {e.producer for s in self.stages for e in s.edges}
        return [s for s in self.stages
                if s.kind != "input" and s.name not in consumed]

    def __iter__(self):
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)

    def summary(self) -> str:
        lines = [f"pipeline for {self.network!r}: {len(self.stages)} stages"]
        for s in self.stages:
            fused = "+" + "+".join(s.post_ops) if s.post_ops else ""
            w = f" weights={s.weight[0]}x{s.weight[1]}" if s.weight else ""
            ins = ", ".join(e.producer for e in s.edges)
            lines.append(
                f"  {s.name:<24} {s.kind:<7} {s.op}{fused:<16} "
                f"out={s.out_shape}{w}  <- [{ins}]"
            )
        return "\n".join(lines)


def _edge_geometry(node: Node) -> tuple[int, int, int, bool]:
    """(kernel, stride, padding, full_input) of a consumer node."""
    if node.op in ("conv", "maxpool", "avgpool"):
        return (node.attr("kernel"), node.attr("stride", node.attr("kernel")),
                node.attr("padding", 0), False)
    if node.op in ("fc", "global_avgpool"):
        return (1, 1, 0, True)
    if node.op == "lrn":
        # cross-channel window; spatially element-wise.
        return (1, 1, 0, False)
    if node.op == "transpose":
        # every output token is built from one channel of *all* input
        # tokens: the whole producer output must be resident.
        return (1, 1, 0, True)
    return (1, 1, 0, False)


def _channels_pixels(shape: tuple[int, ...]) -> tuple[int, int]:
    n = 1
    for d in shape[1:]:
        n *= d
    return shape[0], n


def _check_reshape_foldable(node, graph) -> None:
    """A reshape folds away only when it preserves the (channels, pixels)
    factorization — a pure pixel-axis relayout like (C,H,W) -> (C,H*W,1).

    Downstream stages size tiles, transfers and vector lengths from their
    producer's channel/pixel split, so a split-changing reshape cannot be
    treated as the identity; it would silently emit wrong operand
    footprints.  Fail at compile time instead.
    """
    in_shape = graph.node(node.inputs[0]).output.shape
    out_shape = node.output.shape
    if _channels_pixels(in_shape) != _channels_pixels(out_shape):
        raise CompileError(
            f"reshape {node.name!r} changes the channel/pixel split "
            f"{in_shape} -> {out_shape}; only pixel-axis relayouts "
            f"(same channels, same pixel count) can be compiled — "
            f"use transpose for an axis swap"
        )


def _matmul_edges(producers: list[str]) -> list[StageEdge]:
    """matmul reads operand A token-by-token (output token ``n`` needs A
    token ``n`` only) but contracts over *all* of operand B."""
    return [StageEdge(producers[0]),
            StageEdge(producers[1], full_input=True)]


def shard_tile_ranges(n_tiles: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous per-shard token-tile slices of a sharded stage.

    Deals ``n_tiles`` output tiles to ``min(shards, n_tiles)`` shards in
    contiguous chunks (earlier shards take the remainder), so operand A's
    element-wise edge splits into per-shard token slices while the tile
    index stays the global coordinate everywhere else.  Every returned
    range is non-empty.
    """
    if n_tiles < 1 or shards < 1:
        raise CompileError(
            f"shard_tile_ranges needs positive counts, got "
            f"{n_tiles} tiles / {shards} shards")
    shards = min(shards, n_tiles)
    base, extra = divmod(n_tiles, shards)
    ranges: list[tuple[int, int]] = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def build_pipeline(graph: Graph, *, operator_fusion: bool = True) -> Pipeline:
    """Lower a finalized graph into a stage pipeline.

    Folding: flatten/dropout/batchnorm nodes disappear (consumers rewire to
    their producer).  Fusion (when enabled): a relu whose single input is a
    compute stage folds into that stage; a stride==kernel pool whose single
    input is such a (possibly relu-fused) stage folds in as well, provided
    the intermediate value has no other consumer.
    """
    order = graph.topological_order()

    # Map each node to the stage that materializes its value.
    alias: dict[str, str] = {}

    def resolve(name: str) -> str:
        while name in alias:
            name = alias[name]
        return name

    consumer_count: dict[str, int] = {}
    for node in order:
        for inp in node.inputs:
            consumer_count[inp] = consumer_count.get(inp, 0) + 1

    stages: dict[str, Stage] = {}
    stage_order: list[str] = []

    for node in order:
        if node.op == "input":
            stage = Stage(node.name, "input", "input", node.output.shape)
            stages[node.name] = stage
            stage_order.append(node.name)
            continue

        if node.op in _FOLDED_OPS:
            if node.op == "reshape":
                _check_reshape_foldable(node, graph)
            alias[node.name] = node.inputs[0]
            continue

        producers = [resolve(i) for i in node.inputs]

        # -- fusion opportunities ------------------------------------------
        if (operator_fusion and node.op in ("relu", "gelu")
                and len(producers) == 1):
            target = stages.get(producers[0])
            if (target is not None and target.kind in ("compute", "aux")
                    and consumer_count.get(node.inputs[0], 0) == 1
                    and "maxpool" not in target.post_ops
                    and "avgpool" not in target.post_ops):
                target.post_ops.append(node.op)
                alias[node.name] = target.name
                continue

        if (operator_fusion and node.op in ("maxpool", "avgpool")
                and len(producers) == 1
                and node.attr("stride", node.attr("kernel")) == node.attr("kernel")
                and node.attr("padding", 0) == 0):
            target = stages.get(producers[0])
            if (target is not None and target.kind == "compute"
                    and consumer_count.get(node.inputs[0], 0) == 1
                    and not any(p in ("maxpool", "avgpool") for p in target.post_ops)):
                k = node.attr("kernel")
                target.post_ops.append(node.op)
                target.attrs[f"fused_{node.op}_kernel"] = k
                target.compute_per_pixel *= k * k
                target.out_shape = node.output.shape
                alias[node.name] = target.name
                continue

        # -- materialized stage -------------------------------------------
        if node.op == "matmul":
            edges = _matmul_edges(producers)
        else:
            edges = []
            k, s, p, full = _edge_geometry(node)
            for producer in producers:
                edges.append(StageEdge(producer, kernel=k, stride=s,
                                       padding=p, full_input=full))
        if node.op in ("conv", "fc"):
            stage = Stage(node.name, "compute", node.op, node.output.shape,
                          edges=edges, weight=weight_shape(node),
                          attrs=dict(node.attrs))
        elif node.op == "kv_cache":
            # The append consumes the whole (one-token) projection; the
            # buffer itself lives in global memory, read back whole by
            # consumers like a network input.
            stage = Stage(node.name, "cache", node.op, node.output.shape,
                          edges=[StageEdge(producers[0], full_input=True)],
                          attrs=dict(node.attrs))
        elif node.op in _AUX_OPS:
            stage = Stage(node.name, "aux", node.op, node.output.shape,
                          edges=edges, attrs=dict(node.attrs),
                          shardable=is_token_shardable(node))
        else:  # pragma: no cover - op registry and frontend kept in sync
            raise CompileError(f"frontend cannot lower op {node.op!r}")
        stages[node.name] = stage
        stage_order.append(node.name)

    pipeline = Pipeline(graph.name, [stages[n] for n in stage_order])
    _propagate_extent(pipeline)
    _check_pipeline(pipeline)
    return pipeline


#: element-wise aux ops that carry a producer's extent scaling through
#: unchanged (same shape in, same shape out).
_EXTENT_TRANSPARENT_OPS = ("softmax", "layernorm", "gelu", "relu", "add",
                           "lrn")


def _propagate_extent(pipeline: Pipeline) -> None:
    """Mark extent-scaled stages of a decode pipeline with their
    capacity-sized allocation shapes.

    Starting from the cache stages (output pixels = the extent), the
    scaling flows through the ops that can carry a runtime-growable
    tensor: a ``transpose_b`` matmul turns a token-scaled operand B into
    channel-scaled scores, element-wise ops pass the scaling through,
    and a plain matmul contracts it away (context vectors are fixed
    size).  Anything else consuming a scaled tensor cannot keep the
    program structure extent-invariant, so it is a compile error.
    Scaled stages are never token-sharded: their single output token
    gives shard groups nothing to split.
    """
    caches = [s for s in pipeline.stages if s.kind == "cache"]
    if not caches:
        return
    extents = {(s.attrs["tokens"], s.attrs["max_tokens"]) for s in caches}
    if len(extents) > 1:
        raise CompileError(
            f"kv_cache stages disagree on (tokens, max_tokens): "
            f"{sorted(extents)}")
    tokens, capacity = extents.pop()
    pipeline.extent = tokens
    pipeline.extent_capacity = capacity
    for stage in caches:
        stage.alloc_shape = (stage.out_channels, capacity, 1)
    scaled = {s.name for s in caches}
    for stage in pipeline.stages:
        if stage.kind == "cache" or not any(e.producer in scaled
                                            for e in stage.edges):
            continue
        if stage.op == "matmul":
            a_edge, b_edge = stage.edges
            a_scaled = a_edge.producer in scaled
            b_scaled = b_edge.producer in scaled
            if stage.attrs.get("transpose_b"):
                if a_scaled or not b_scaled:
                    raise CompileError(
                        f"matmul {stage.name!r}: only operand B (keys) may "
                        f"carry the decode extent under transpose_b")
                # scores (heads*extent, n, 1): channels scale with extent.
                if stage.out_channels % tokens:
                    raise CompileError(
                        f"matmul {stage.name!r}: output channels "
                        f"{stage.out_channels} not divisible by the decode "
                        f"extent {tokens}")
                per_token = stage.out_channels // tokens
                stage.alloc_shape = (per_token * capacity,
                                     *stage.out_shape[1:])
                stage.shardable = False
                scaled.add(stage.name)
            else:
                if not (a_scaled and b_scaled):
                    raise CompileError(
                        f"matmul {stage.name!r}: a context product over the "
                        f"decode extent needs both operands extent-scaled "
                        f"(scores x values)")
                # contraction over the extent: output is fixed size.
                stage.shardable = False
        elif stage.op in _EXTENT_TRANSPARENT_OPS:
            producers = [pipeline.stage(e.producer) for e in stage.edges]
            if not all(p.name in scaled for p in producers):
                raise CompileError(
                    f"stage {stage.name!r} ({stage.op}) mixes extent-scaled "
                    f"and fixed operands")
            shapes = {p.alloc_shape for p in producers}
            if len(shapes) != 1 or producers[0].out_shape != stage.out_shape:
                raise CompileError(
                    f"stage {stage.name!r} ({stage.op}) cannot carry the "
                    f"decode extent across differing shapes")
            stage.alloc_shape = producers[0].alloc_shape
            stage.shardable = False
            scaled.add(stage.name)
        else:
            raise CompileError(
                f"stage {stage.name!r} ({stage.op}) cannot consume the "
                f"extent-scaled output of a decode pipeline; supported "
                f"consumers: matmul and {_EXTENT_TRANSPARENT_OPS}")


def _check_pipeline(pipeline: Pipeline) -> None:
    names = {s.name for s in pipeline.stages}
    for stage in pipeline.stages:
        for edge in stage.edges:
            if edge.producer not in names:
                raise CompileError(
                    f"stage {stage.name!r} reads unknown producer "
                    f"{edge.producer!r}"
                )
    if not any(s.kind == "compute" for s in pipeline.stages):
        raise CompileError(
            f"network {pipeline.network!r} has no crossbar-mapped layers"
        )
