"""Extent-parameterized programs for autoregressive decode.

A decode step re-runs the *same* network at a growing KV extent: the graph
is identical, only the ``kv_cache`` token count changes.  The classic
compiler handles that by recompiling per step; this module compiles a
:class:`StepTemplate` **once** and replays it at any runtime extent.

The trick is a finite-difference fit over probe compiles.  Cache buffers
are allocated at *capacity* (``max_tokens``) and lowered as a single
whole-buffer tile, so the program *structure* — instruction count, opcode
sequence, addresses, flow graph — is extent-invariant; only a small set of
integer fields (cache LOAD bytes, ``VMATMUL``/``VSOFTMAX`` lengths,
extent-scaled destination sizes) vary, and each varies **affinely** in the
extent ``L``: ``v(L) = a·L + b``.  Compiling the network at probe extents
1 and 2 determines ``a`` and ``b`` per field; a third probe cross-checks
the fit.  :meth:`StepTemplate.resolve` then materializes the program for
any extent by patching only the varying fields — no frontend, mapping,
allocation or codegen work — and the result is field-for-field identical
to a from-scratch compile at that extent (pinned by tests).

Cores whose programs have no varying field share the probe-1 ``Program``
object across every extent, so the simulator's cached static-blocker
tables (:meth:`~repro.isa.Program.static_blockers`) are reused across the
whole decode, not rebuilt per step.
"""

from __future__ import annotations

import dataclasses

from ..config import ArchConfig
from ..graph import Graph, kv_extent, with_kv_extent
from ..isa import ChipProgram, Program, verify_program
from .frontend import CompileError
from .pipeline import CompilationResult, compile_network

__all__ = ["StepwiseError", "StepTemplate", "compile_step_template"]


class StepwiseError(CompileError):
    """The network cannot be compiled as an extent-parameterized template."""


#: probe extents for the affine fit (third is a cross-check).
_PROBES = (1, 2, 3)


def _int_fields(obj) -> list[str]:
    return [f.name for f in dataclasses.fields(obj)
            if isinstance(getattr(obj, f.name), int)]


def _fit(name: str, values: tuple[int, ...],
         extents: tuple[int, ...]) -> tuple[int, int]:
    """Affine coefficients ``(a, b)`` with ``v = a*L + b`` through the
    probes; raises when the probes are not collinear."""
    v1, v2 = values[0], values[1]
    l1, l2 = extents[0], extents[1]
    step = v2 - v1
    if step % (l2 - l1):
        raise StepwiseError(f"{name}: non-integer slope across probes")
    a = step // (l2 - l1)
    b = v1 - a * l1
    for lx, vx in zip(extents[2:], values[2:]):
        if a * lx + b != vx:
            raise StepwiseError(
                f"{name}: not affine in the extent "
                f"(probes {extents} -> {values})")
    return a, b


class StepTemplate:
    """A compiled decode program, replayable at any runtime KV extent.

    Obtained from :func:`compile_step_template`.  :meth:`resolve` returns
    the :class:`~repro.isa.ChipProgram` for one extent (memoized); the
    heavy compiler pipeline ran only for the probe extents, never again.
    """

    def __init__(self, base: CompilationResult, config: ArchConfig,
                 capacity: int, probe_extents: tuple[int, ...],
                 inst_patches: dict[int, list[tuple[int, str, int, int]]],
                 flow_patches: dict[int, list[tuple[str, int, int]]]) -> None:
        self.base = base
        self.config = config
        self.capacity = capacity
        self.probe_extents = probe_extents
        #: core -> [(instruction index, field, a, b)] for varying fields.
        self.inst_patches = inst_patches
        #: flow id -> [(field, a, b)] for varying fields.
        self.flow_patches = flow_patches
        self._resolved: dict[int, ChipProgram] = {}

    @property
    def network(self) -> str:
        return self.base.program.network

    @property
    def patched_field_count(self) -> int:
        """Extent-dependent integer fields patched per resolve."""
        return (sum(len(p) for p in self.inst_patches.values())
                + sum(len(p) for p in self.flow_patches.values()))

    def resolve(self, extent: int) -> ChipProgram:
        """The chip program for one decode extent (tokens in the cache).

        Field-for-field identical to ``compile_network`` at that extent,
        produced by patching the template.  Memoized per extent, so a
        serving loop revisiting an extent pays nothing; cores without
        extent-dependent work share one ``Program`` across all extents
        (and with it the simulator's static-blocker cache).
        """
        if not 1 <= extent <= self.capacity:
            raise StepwiseError(
                f"extent {extent} outside [1, {self.capacity}] "
                f"(kv_cache capacity of {self.network!r})")
        cached = self._resolved.get(extent)
        if cached is not None:
            return cached

        base_chip = self.base.program
        programs: dict[int, Program] = {}
        for core, program in base_chip.programs.items():
            patches = self.inst_patches.get(core)
            if not patches:
                programs[core] = program  # shared: blocker cache reused
                continue
            insts = list(program.instructions)
            by_index: dict[int, dict[str, int]] = {}
            for index, fname, a, b in patches:
                by_index.setdefault(index, {})[fname] = a * extent + b
            for index, updates in by_index.items():
                insts[index] = dataclasses.replace(insts[index], **updates)
            clone = Program(core, insts, groups=program.groups,
                            local_memory_used=program.local_memory_used)
            clone._sealed = True
            programs[core] = clone

        flows = dict(base_chip.flows)
        for flow_id, fpatches in self.flow_patches.items():
            updates = {fname: a * extent + b for fname, a, b in fpatches}
            flows[flow_id] = dataclasses.replace(flows[flow_id], **updates)

        chip = ChipProgram(network=base_chip.network, programs=programs,
                           flows=flows, layer_cores=base_chip.layer_cores,
                           meta={**base_chip.meta, "kv_extent": extent})
        verify_program(chip, self.config)
        self._resolved[extent] = chip
        return chip


def compile_step_template(graph: Graph, config: ArchConfig) -> StepTemplate:
    """Compile a KV-cache network into an extent-parameterized template.

    Runs the full compiler at the probe extents, asserts the programs are
    structurally identical, and fits every varying integer field as an
    affine function of the extent (cross-checked on the last probe).  The
    graph must contain ``kv_cache`` nodes; their ``max_tokens`` capacity
    bounds the extents the template can resolve.
    """
    ext = kv_extent(graph)
    if ext is None:
        raise StepwiseError(
            "graph has no kv_cache node; use compile_network for "
            "fixed-shape networks")
    capacity = ext[1]
    probes = tuple(p for p in _PROBES if p <= capacity)
    results = [compile_network(with_kv_extent(graph, p), config)
               for p in probes]
    base = results[0]
    chips = [r.program for r in results]

    ref = chips[0]
    for probe, chip in zip(probes[1:], chips[1:]):
        if set(chip.programs) != set(ref.programs):
            raise StepwiseError(
                f"core set changes with the extent (probe {probe})")
        if set(chip.flows) != set(ref.flows):
            raise StepwiseError(
                f"flow set changes with the extent (probe {probe})")

    inst_patches: dict[int, list[tuple[int, str, int, int]]] = {}
    for core in sorted(ref.programs):
        streams = [c.programs[core].instructions for c in chips]
        lengths = {len(s) for s in streams}
        if len(lengths) != 1:
            raise StepwiseError(
                f"core {core}: instruction count varies with the extent")
        patches: list[tuple[int, str, int, int]] = []
        for index, insts in enumerate(zip(*streams)):
            first = insts[0]
            if any(type(i) is not type(first) for i in insts[1:]):
                raise StepwiseError(
                    f"core {core} inst {index}: class varies with extent")
            for fname in (f.name for f in dataclasses.fields(first)):
                values = tuple(getattr(i, fname) for i in insts)
                if all(v == values[0] for v in values[1:]):
                    continue
                if not all(isinstance(v, int) for v in values):
                    raise StepwiseError(
                        f"core {core} inst {index} field {fname!r}: "
                        "non-integer field varies with the extent")
                a, b = _fit(f"core {core} inst {index} field {fname!r}",
                            values, probes)
                patches.append((index, fname, a, b))
        if patches:
            inst_patches[core] = patches

    flow_patches: dict[int, list[tuple[str, int, int]]] = {}
    for flow_id in sorted(ref.flows):
        infos = [c.flows[flow_id] for c in chips]
        patches_f: list[tuple[str, int, int]] = []
        for fname in _int_fields(infos[0]):
            values = tuple(getattr(i, fname) for i in infos)
            if all(v == values[0] for v in values[1:]):
                continue
            a, b = _fit(f"flow {flow_id} field {fname!r}", values, probes)
            patches_f.append((fname, a, b))
        if patches_f:
            flow_patches[flow_id] = patches_f

    template = StepTemplate(base, config, capacity, probes,
                            inst_patches, flow_patches)
    # The probe-1 compile doubles as the extent-1 resolution.
    template._resolved[probes[0]] = ref
    return template
