"""MNSIM2.0-style behaviour-level baseline simulator.

Reproduces the *modelling assumptions* the paper criticizes in MNSIM2.0
(Section IV-B) so Fig. 5 can compare them against the cycle-accurate,
synchronized-communication simulator on identical crossbar configurations:

* **fully asynchronous communication** — a produced tile is available to
  its consumer after pure wire latency (hop count x hop cycles), with no
  bandwidth serialization, no link contention, no credit windows, and
  implicitly unbounded buffering ("every data will be immediately
  transmitted to the next component once the data is computed");
* **behaviour-level compute** — per-tile latency from closed-form PE
  arithmetic (copies and row blocks fully parallel, vector post-processing
  at full SIMD width) instead of instruction-by-instruction execution;
* **idealized memory** — network input is free (no global-memory port
  arbitration).

The baseline reuses the real compiler's placement and tiling, so compute
work matches the cycle-accurate run and any latency difference is due to
the communication and execution model — exactly the comparison the paper
makes.  (Unlike the open-source MNSIM2.0 the paper had to work around, this
reimplementation also handles ``concat``, so the unmodified networks run.)

The schedule is an analytic list-scheduling recurrence, not an event
simulation:

    ready(s, t)  = max over edges (done(producer, req(t)) + wire_latency)
    start(s, t)  = max(ready(s, t), core_free(home(s)))
    done(s, t)   = start(s, t) + tile_compute(s)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..compiler import Pipeline, build_pipeline, map_network, n_tiles
from ..compiler.tiling import compute_levels, edge_requirements
from ..config import ArchConfig, validate
from ..graph import Graph

__all__ = ["BaselineResult", "run_baseline"]


@dataclass
class BaselineResult:
    """Behaviour-level simulation outputs."""

    network: str
    cycles: int
    #: layer -> total compute cycles across its tiles (serial, on its core).
    layer_compute: dict[str, int] = field(default_factory=dict)
    #: layer -> total communication cycles (pure wire latency).
    layer_comm: dict[str, int] = field(default_factory=dict)
    #: (stage, tile) completion times, for inspection.
    meta: dict = field(default_factory=dict)

    def comm_ratio(self, layer: str) -> float:
        """Communication share of a layer's activity (compute + comm)."""
        comm = self.layer_comm.get(layer, 0)
        comp = self.layer_compute.get(layer, 0)
        total = comm + comp
        return comm / total if total else 0.0


def _tile_compute_cycles(stage, plan, config: ArchConfig,
                         pe_parallelism: float) -> int:
    """Closed-form per-tile latency of one stage on its home core.

    ``pe_parallelism`` is the behaviour-level throughput anchor: the number
    of crossbar groups a PE keeps simultaneously active (MNSIM2.0-style
    models bake an equivalent assumption into their PE pipeline).  The
    vector term models the accumulation/post-op stream through the local
    memory; matrix and vector engines overlap, so the tile takes the max.
    """
    comp = config.compiler
    px = min(comp.tile_pixels, stage.out_pixels)
    lanes = config.core.vector_lanes
    write_bw = config.core.local_memory_write_bytes_per_cycle
    if stage.kind == "compute":
        cpp = stage.compute_per_pixel
        vectors = px * cpp
        group_reads = vectors * plan.tiling.row_blocks
        mvm = group_reads * config.crossbar.mvm_cycles() / pe_parallelism
        # Accumulation stream: every group read deposits + merges one
        # partial row (2 reads + 1 write of ACC-width data per element).
        accum_bytes = 3 * 4 * group_reads * min(stage.out_channels,
                                                config.crossbar.cols)
        post_elems = px * stage.out_channels * (1 + len(stage.post_ops))
        vector = accum_bytes / write_bw + post_elems / lanes
        return max(1, math.ceil(max(mvm, vector)))
    # aux stages: pure vector work.
    elems = px * stage.out_channels * max(1, len(stage.post_ops) + 1)
    return max(1, math.ceil(elems / lanes))


#: default behaviour-level PE throughput (simultaneously active crossbar
#: groups); calibrated so the baseline matches the cycle-accurate simulator
#: on communication-light chain networks (VGG), as in the paper's Fig. 5.
DEFAULT_PE_PARALLELISM = 3.0


def run_baseline(graph: Graph, config: ArchConfig, *,
                 pe_parallelism: float = DEFAULT_PE_PARALLELISM) -> BaselineResult:
    """Run the behaviour-level model; returns latency and comm breakdown."""
    validate(config)
    pipeline: Pipeline = build_pipeline(
        graph, operator_fusion=config.compiler.operator_fusion)
    placement = map_network(pipeline, config)
    reqs = edge_requirements(pipeline, config.compiler.tile_pixels)
    tile_pixels = config.compiler.tile_pixels
    hop = config.noc.hop_cycles

    # Home core per stage (same policy as the code generator).
    home: dict[str, int | None] = {}
    for stage in pipeline:
        if stage.kind == "input":
            home[stage.name] = None
        elif stage.kind == "compute":
            home[stage.name] = placement.plan(stage.name).home_core
        else:
            chosen = None
            for edge in stage.edges:
                chosen = home.get(edge.producer)
                if chosen is not None:
                    break
            home[stage.name] = 0 if chosen is None else chosen

    def hops_between(a: int | None, b: int | None) -> int:
        if a is None or b is None or a == b:
            return 0
        ar, ac = config.core_xy(a)
        br, bc = config.core_xy(b)
        return abs(ar - br) + abs(ac - bc)

    done: dict[tuple[str, int], int] = {}
    core_free: dict[int, int] = {}
    layer_compute: dict[str, int] = {}
    layer_comm: dict[str, int] = {}
    finish = 0

    # Work items in the same global (level, topo, tile) order the real
    # code generator uses, so co-resident stages interleave on their core
    # instead of one stage monopolizing it (a list-scheduling artifact a
    # stage-major sweep would introduce).
    levels = compute_levels(pipeline, tile_pixels)
    items: list[tuple[int, int, int, object]] = []
    tile_compute: dict[str, int] = {}
    for stage in pipeline:
        nt = n_tiles(stage, tile_pixels)
        if stage.kind == "input":
            for tile in range(nt):
                done[(stage.name, tile)] = 0  # idealized: input is free
            continue
        plan = placement.plans.get(stage.name)
        tile_compute[stage.name] = _tile_compute_cycles(
            stage, plan, config, pe_parallelism)
        for tile in range(nt):
            items.append((levels[stage.name][tile], stage.topo_index,
                          tile, stage))
    items.sort(key=lambda it: (it[0], it[1], it[2]))

    link_bw = config.noc.link_bytes_per_cycle
    act_bytes = config.compiler.activation_bytes
    stage_by_name = {s.name: s for s in pipeline.stages}

    for _level, _topo, tile, stage in items:
        my_home = home[stage.name]
        compute = tile_compute[stage.name]
        ready = 0
        for edge_idx, edge in enumerate(stage.edges):
            hops = hops_between(home[edge.producer], my_home)
            producer = stage_by_name[edge.producer]
            tile_bytes = (min(tile_pixels, producer.out_pixels)
                          * producer.out_channels * act_bytes)
            # Ideal-async transmission: pure wire latency plus uncontended
            # serialization — no arbitration, no backpressure, no sync.
            wire = hop * hops + (math.ceil(tile_bytes / link_bw) if hops else 0)
            req = reqs[(stage.name, edge_idx)][tile]
            ready = max(ready, done[(edge.producer, req)] + wire)
            layer_comm[stage.name] = layer_comm.get(stage.name, 0) + wire
        start = max(ready, core_free.get(my_home, 0))
        end = start + compute
        core_free[my_home] = end
        done[(stage.name, tile)] = end
        layer_compute[stage.name] = layer_compute.get(stage.name, 0) + compute
        finish = max(finish, end)

    return BaselineResult(
        network=graph.name,
        cycles=finish,
        layer_compute=layer_compute,
        layer_comm=layer_comm,
        meta={"policy": placement.policy, "tile_pixels": tile_pixels},
    )
