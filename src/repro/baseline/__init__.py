"""MNSIM2.0-style behaviour-level baseline (the Fig. 5 comparator)."""

from .mnsim import DEFAULT_PE_PARALLELISM, BaselineResult, run_baseline

__all__ = ["BaselineResult", "run_baseline", "DEFAULT_PE_PARALLELISM"]
