"""The serving core: durable jobs + Engine sessions + admission control.

:class:`ServeService` is the public API under ``pimsim serve`` — the
HTTP layer (:mod:`repro.serve.http`) is a thin request/response codec
over it, so everything here is testable without a socket (the same
``api/public.py`` -> ``api/http.py`` layering as Toki).

Responsibilities:

* **Durability.**  Every accepted job goes through the crash-safe
  :class:`~repro.serve.store.JobStore` (``queued -> running ->
  terminal``, each transition fsync'd), so a SIGKILL'd server replays
  the journal on restart: settled results are served forever without
  re-execution, interrupted jobs are re-enqueued with restart blame.

* **Engine sessions.**  Jobs are executed on a per-configuration
  :class:`~repro.engine.Engine`, keyed by a content hash of the spec's
  configuration: one client's exotic configuration gets its own worker
  pool and compile cache instead of churning (or poisoning) another
  client's warm session.  Sessions are LRU-bounded; only idle sessions
  are evicted.

* **Admission control.**  The backlog (admitted, unsettled jobs) is
  bounded: over the high-water mark :meth:`submit` raises
  :class:`Overloaded` carrying a ``Retry-After`` hint computed from the
  pool's observed service-time EWMA and current occupancy
  (:meth:`~repro.engine.Engine.pool_stats`), so the HTTP layer sheds
  load with ``503`` instead of growing memory without bound.

* **Graceful drain.**  :meth:`begin_drain` stops admissions and
  dispatching; :meth:`wait_drained` waits for in-flight jobs up to a
  deadline; :meth:`terminate` aborts whatever remains, re-journaling it
  as ``queued`` so the next start resumes it.  Jobs still queued at
  drain time stay journaled ``queued`` — drain never discards work.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import threading
import time
from collections import deque
from concurrent.futures import Future

from ..config import ArchConfig
from ..engine import Engine, JobPoisoned, JobSpec, JobTimeout, PoolUnavailable
from ..engine.pool import job_failure
from .store import JobRecord, JobStore

__all__ = ["ServeService", "Overloaded", "Draining", "config_key"]


class Overloaded(RuntimeError):
    """Admission refused: the backlog is at its high-water mark.

    ``retry_after`` (seconds, >= 1) is the service's estimate of when
    capacity frees up — the HTTP layer forwards it as a ``Retry-After``
    header on the ``503``.
    """

    def __init__(self, retry_after: int):
        super().__init__(f"backlog full; retry after ~{retry_after}s")
        self.retry_after = retry_after


class Draining(RuntimeError):
    """Admission refused: the server is shutting down."""

    def __init__(self):
        super().__init__("server is draining; submit to another instance")


def config_key(config: ArchConfig | None) -> str:
    """Session key for a job configuration: content hash, not identity.

    ``None`` (the service default) maps to ``"default"``; everything
    else hashes its canonical JSON, so two clients posting the same
    configuration tree share one warm session.
    """
    if config is None:
        return "default"
    payload = json.dumps(config.to_dict(), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class ServeService:
    """Durable job service over per-configuration Engine sessions.

    Parameters
    ----------
    store:
        The crash-safe :class:`JobStore` (owned: :meth:`close` closes it).
    config:
        Default architecture configuration for jobs whose spec carries
        none (the default session's engine config).
    workers:
        Worker processes per engine session (``None``: all CPUs).
    max_retries / job_timeout:
        Forwarded to every session's :class:`~repro.engine.Engine`.
    max_backlog:
        Admission high-water mark: admitted-but-unsettled jobs beyond
        this are refused with :class:`Overloaded`.  ``None`` sizes it
        off pool occupancy (8 jobs per worker, floor 16).
    max_sessions:
        LRU bound on live engine sessions; only idle sessions are
        evicted (their engines closed), busy ones are kept.
    """

    def __init__(self, store: JobStore, *, config: ArchConfig | None = None,
                 workers: int | None = None, max_retries: int = 1,
                 job_timeout: float | None = None,
                 max_backlog: int | None = None, max_sessions: int = 4):
        self.store = store
        self._config = config
        self._workers = workers
        self._max_retries = max_retries
        self._job_timeout = job_timeout
        effective = workers if workers is not None else (os.cpu_count() or 1)
        self._pool_width = max(1, effective)
        self.max_backlog = max_backlog if max_backlog is not None \
            else max(16, 8 * self._pool_width)
        self._max_sessions = max(1, max_sessions)
        self._cv = threading.Condition()
        #: job ids admitted (or recovered) and awaiting dispatch.
        self._queue: deque[str] = deque()
        #: job id -> in-engine Future, for drain accounting.
        self._inflight: dict[str, Future] = {}
        #: dispatches between queue pop and in-flight registration —
        #: engine.submit (a pool spawn on a cold session) runs outside
        #: the lock, and the drain must not miss a job in that window.
        self._dispatching = 0
        #: session key -> warm Engine, LRU (insertion order = recency).
        self._sessions: dict[str, Engine] = {}
        self._session_load: dict[str, int] = {}
        self._paused = False
        self._draining = False
        self._terminated = False
        self._closed = False
        self._dispatcher: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServeService":
        """Recover the store's queued jobs and start dispatching."""
        with self._cv:
            if self._dispatcher is not None:
                return self
            for record in self.store.jobs("queued"):
                self._queue.append(record.id)
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, daemon=True,
                name="repro-serve-dispatcher")
            self._dispatcher.start()
        return self

    def begin_drain(self) -> None:
        """Stop admissions and dispatching; running jobs keep running.

        Queued jobs stay journaled ``queued`` — they are the next
        start's work, not this drain's.
        """
        with self._cv:
            self._draining = True
            self._cv.notify_all()

    def wait_drained(self, timeout: float | None = None) -> bool:
        """Wait for every in-flight job to settle; False on deadline."""
        with self._cv:
            if timeout is None:
                while self._inflight or self._dispatching:
                    self._cv.wait()
                return True
            deadline = time.monotonic() + timeout
            while self._inflight or self._dispatching:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(remaining)
            return True

    def terminate(self) -> int:
        """Abort in-flight work past the drain deadline; returns how many
        jobs were re-journaled as ``queued`` for the next start.

        A wedged job must not hold the process past its deadline: every
        session's pool is aborted, the settled-with-
        :class:`PoolUnavailable` futures re-queue their jobs in the
        store (restart blame is charged by the *store* on the next
        replay, not here — the job never got to finish, it did not
        crash anything).
        """
        with self._cv:
            self._terminated = True
            self._cv.notify_all()
            # Let an in-progress dispatch land (it either registers its
            # future or sees _terminated inside _session and requeues)
            # so the engine snapshot below covers it.
            deadline = time.monotonic() + 5.0
            while self._dispatching:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
            pending = len(self._inflight)
            engines = list(self._sessions.values())
        for engine in engines:
            engine.terminate()
        # Pool abort settles every future synchronously, so the requeue
        # callbacks have all run by now.
        return pending

    def close(self) -> None:
        """Stop dispatching, close every session, close the store."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
            dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join(timeout=5)
        with self._cv:
            # Snapshot sessions only after the dispatcher stopped: a
            # dispatch in progress may still be inserting an engine.
            engines = list(self._sessions.values())
            self._sessions.clear()
        for engine in engines:
            engine.close()
        self.store.close()

    def __enter__(self) -> "ServeService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- admission -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[JobRecord, bool]:
        """Admit one job; idempotent by content-addressed job id.

        Returns ``(record, created)``.  A re-submitted spec returns its
        existing record (possibly already terminal, with the durable
        result) without charging admission.  Raises :class:`Draining`
        during shutdown and :class:`Overloaded` (with a ``retry_after``
        estimate) over the backlog high-water mark.
        """
        job_id = spec.job_id()
        with self._cv:
            if self._closed:
                raise RuntimeError("service is closed")
            existing = self.store.get(job_id)
            if existing is not None:
                return existing, False
            if self._draining:
                raise Draining()
            if self.store.backlog() >= self.max_backlog:
                raise Overloaded(self.retry_after())
            record, _created = self.store.submit(spec.to_dict(), job_id)
            self._queue.append(job_id)
            self._cv.notify_all()
            return record, True

    def cancel(self, job_id: str) -> bool:
        """Withdraw a queued job; False once running or settled."""
        return self.store.cancel(job_id)

    def retry_after(self) -> int:
        """Seconds a refused client should wait before retrying.

        The backlog divided by pool width, priced at the observed
        service-time EWMA (floor 1s before the first completion),
        clamped to [1, 600].
        """
        stats = self.pool_stats()
        per_job = stats["ewma_service_s"] or 1.0
        width = stats["size"] or self._pool_width
        backlog = self.store.backlog()
        estimate = math.ceil(per_job * max(1, backlog) / max(1, width))
        return max(1, min(600, estimate))

    # -- introspection -------------------------------------------------------

    def pool_stats(self) -> dict:
        """Aggregated pool telemetry across every live session."""
        totals = {"size": 0, "respawns": 0, "retries": 0, "timeouts": 0,
                  "poisoned": 0, "broken": False, "queue_depth": 0,
                  "in_flight": 0, "ewma_service_s": 0.0}
        with self._cv:
            engines = list(self._sessions.values())
        for engine in engines:
            stats = engine.pool_stats()
            for key in ("size", "respawns", "retries", "timeouts",
                        "poisoned", "queue_depth", "in_flight"):
                totals[key] += stats[key]
            totals["broken"] = totals["broken"] or stats["broken"]
            totals["ewma_service_s"] = max(totals["ewma_service_s"],
                                           stats["ewma_service_s"])
        return totals

    def ready(self) -> bool:
        """Serving capacity exists: not draining, no broken pool.

        This is what ``GET /readyz`` reports — an orchestrator restarts
        a server whose pool is wedged beyond self-healing.
        """
        with self._cv:
            if self._closed or self._draining:
                return False
        return not self.pool_stats()["broken"]

    def status(self) -> dict:
        """The ``/readyz`` payload: readiness + occupancy + job counts."""
        with self._cv:
            draining = self._draining
            sessions = len(self._sessions)
        pool = self.pool_stats()
        return {"ready": not draining and not self._closed
                and not pool["broken"],
                "draining": draining, "pool": pool,
                "counts": self.store.counts(),
                "backlog": self.store.backlog(),
                "max_backlog": self.max_backlog,
                "sessions": sessions}

    # -- test / maintenance hooks --------------------------------------------

    def pause_dispatch(self) -> None:
        """Hold admitted jobs in the queue (deterministic-backpressure
        hook for tests and maintenance; admission still applies)."""
        with self._cv:
            self._paused = True
            self._cv.notify_all()

    def resume_dispatch(self) -> None:
        with self._cv:
            self._paused = False
            self._cv.notify_all()

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not (self._closed or self._draining) \
                        and (self._paused or not self._queue):
                    self._cv.wait()
                if self._closed or self._draining:
                    return
                job_id = self._queue.popleft()
                self._dispatching += 1
            try:
                self._dispatch_one(job_id)
            finally:
                with self._cv:
                    self._dispatching -= 1
                    self._cv.notify_all()

    def _dispatch_one(self, job_id: str) -> None:
        # A job cancelled (or otherwise settled) while queued refuses
        # the queued -> running transition; drop the dispatch.
        if not self.store.mark_running(job_id):
            return
        record = self.store.get(job_id)
        try:
            spec = JobSpec.from_dict(record.spec)
            engine, key = self._session(spec)
            future = engine.submit(spec)
        except PoolUnavailable:
            # The service shut down under this dispatch; the job never
            # reached a worker — next start's work, not a failure.
            self.store.requeue(job_id)
            return
        except Exception as exc:
            failure = job_failure(exc)
            self.store.settle(job_id, "failed", error=_error_dict(failure))
            return
        with self._cv:
            self._inflight[job_id] = future
            self._session_load[key] = self._session_load.get(key, 0) + 1
        future.add_done_callback(
            lambda f, jid=job_id, k=key: self._settled(jid, k, f))

    def _session(self, spec: JobSpec) -> tuple[Engine, str]:
        """The warm engine for this spec's configuration (LRU-bounded)."""
        key = config_key(spec.config)
        evict: list[Engine] = []
        with self._cv:
            if self._terminated or self._closed:
                # Serialized with terminate()/close() under the lock:
                # either they see this session, or we refuse to build it.
                raise PoolUnavailable("service is shutting down")
            engine = self._sessions.pop(key, None)
            if engine is None:
                engine = Engine(spec.config or self._config,
                                workers=self._workers,
                                max_retries=self._max_retries,
                                job_timeout=self._job_timeout)
            self._sessions[key] = engine  # (re)insert = most recent
            for stale in list(self._sessions):
                if len(self._sessions) <= self._max_sessions:
                    break
                if stale == key or self._session_load.get(stale, 0):
                    continue  # never evict the busy (or the current)
                evict.append(self._sessions.pop(stale))
        for old in evict:  # idle by construction: close() won't block
            old.close()
        return engine, key

    def _settled(self, job_id: str, key: str, future: Future) -> None:
        """Journal one engine outcome (runs on the pool's collector)."""
        try:
            exc = future.exception()
            if exc is None:
                self.store.settle(job_id, "done",
                                  report=future.result().to_dict())
            elif isinstance(exc, JobTimeout):
                self.store.settle(job_id, "timeout",
                                  error=_error_dict(exc))
            elif isinstance(exc, JobPoisoned):
                self.store.settle(job_id, "poisoned",
                                  error=_error_dict(exc))
            elif isinstance(exc, PoolUnavailable) and (
                    self._draining or self._terminated or self._closed):
                # The *server* abandoned the job (drain deadline, close);
                # it is next start's work, not a failure of the job.
                self.store.requeue(job_id)
            else:
                self.store.settle(job_id, "failed",
                                  error=_error_dict(job_failure(exc)))
        finally:
            with self._cv:
                self._inflight.pop(job_id, None)
                load = self._session_load.get(key, 0)
                if load:
                    self._session_load[key] = load - 1
                self._cv.notify_all()


def _error_dict(failure) -> dict:
    error = {"kind": getattr(failure, "kind", type(failure).__name__),
             "message": getattr(failure, "message", str(failure))}
    details = getattr(failure, "details", None)
    if details:
        error["details"] = details
    return error
