"""HTTP front-end for :class:`~repro.serve.ServeService` (stdlib only).

A thin request/response codec over the service layer — every decision
(admission, durability, drain) lives in :mod:`repro.serve.service`; this
module only parses paths/bodies and maps service outcomes to status
codes, so the whole API is testable without a socket and the server
adds no dependencies.

Routes (all JSON)::

    POST   /jobs              one spec object, or {"jobs": [spec, ...]}
    GET    /jobs              job listing; ?state=<state> filters
    GET    /jobs/<id>         one job's record (no report payload)
    GET    /jobs/<id>/result  202 while pending; 200 with report/error
    DELETE /jobs/<id>         cancel a *queued* job (409 once running)
    GET    /healthz           process liveness (always 200)
    GET    /readyz            200 serving / 503 draining or pool broken

Status mapping: ``201`` on first admission, ``200`` on idempotent
re-submission and reads, ``202`` for a result not yet settled, ``400``
malformed spec/body, ``404`` unknown job or route, ``409`` an impossible
transition (cancel of a running job), ``503`` + ``Retry-After`` for
admission refused (:class:`~repro.serve.Overloaded` /
:class:`~repro.serve.Draining`) and for an unready ``/readyz``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..engine import JobSpec
from .service import Draining, Overloaded, ServeService
from .store import STATES

__all__ = ["ServeHTTPServer", "ServeHandler", "serve_http"]


class ServeHTTPServer(ThreadingHTTPServer):
    """One thread per request over a shared :class:`ServeService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ServeService):
        super().__init__(address, ServeHandler)
        self.service = service


def serve_http(service: ServeService, host: str = "127.0.0.1",
               port: int = 8787) -> ServeHTTPServer:
    """Bind the service to a listening server (``port=0``: ephemeral).

    The caller drives ``serve_forever()`` / ``shutdown()`` — binding is
    split out so the CLI can print the resolved port before serving.
    """
    return ServeHTTPServer((host, port), service)


class ServeHandler(BaseHTTPRequestHandler):
    server_version = "pimsim-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ServeService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass  # request logging is the orchestrator's job, not stderr's

    # -- plumbing ------------------------------------------------------------

    def _json(self, status: int, payload, headers: dict | None = None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        return json.loads(raw)

    # -- routes --------------------------------------------------------------

    def do_GET(self):
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["healthz"]:
            return self._json(200, {"status": "alive"})
        if parts == ["readyz"]:
            status = self.service.status()
            return self._json(200 if status["ready"] else 503, status)
        if parts == ["jobs"]:
            return self._list_jobs(url.query)
        if len(parts) == 2 and parts[0] == "jobs":
            record = self.service.store.get(parts[1])
            if record is None:
                return self._unknown_job(parts[1])
            return self._json(200, record.to_dict())
        if len(parts) == 3 and parts[:1] == ["jobs"] \
                and parts[2] == "result":
            return self._result(parts[1])
        return self._json(404, {"error": "no such route",
                                "path": url.path})

    def do_POST(self):
        url = urlsplit(self.path)
        if [p for p in url.path.split("/") if p] != ["jobs"]:
            return self._json(404, {"error": "no such route",
                                    "path": url.path})
        try:
            payload = self._body()
        except ValueError as exc:
            return self._json(400, {"error": f"bad JSON body: {exc}"})
        batch = isinstance(payload, dict) and "jobs" in payload
        entries = payload["jobs"] if batch else [payload]
        if not isinstance(entries, list):
            return self._json(400, {"error": "'jobs' must be a list"})
        try:
            specs = [JobSpec.from_dict(entry) for entry in entries]
        except (ValueError, TypeError) as exc:
            return self._json(400, {"error": f"bad job spec: {exc}"})
        admitted, any_created = [], False
        for spec in specs:
            try:
                record, created = self.service.submit(spec)
            except Overloaded as exc:
                return self._json(503, {
                    "error": "overloaded",
                    "retry_after": exc.retry_after,
                    "jobs": admitted,
                }, headers={"Retry-After": str(exc.retry_after)})
            except Draining:
                return self._json(503, {"error": "draining",
                                        "jobs": admitted})
            entry = record.to_dict()
            entry["created"] = created
            any_created = any_created or created
            admitted.append(entry)
        status = 201 if any_created else 200
        if batch:
            return self._json(status, {"jobs": admitted})
        return self._json(status, admitted[0])

    def do_DELETE(self):
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        if len(parts) != 2 or parts[0] != "jobs":
            return self._json(404, {"error": "no such route",
                                    "path": url.path})
        record = self.service.store.get(parts[1])
        if record is None:
            return self._unknown_job(parts[1])
        if self.service.cancel(parts[1]):
            return self._json(200, self.service.store.get(parts[1]).to_dict())
        return self._json(409, {"error": "job is not cancellable",
                                "id": record.id, "state": record.state})

    # -- helpers -------------------------------------------------------------

    def _list_jobs(self, query: str):
        params = parse_qs(query)
        state = params.get("state", [None])[0]
        if state is not None and state not in STATES:
            return self._json(400, {
                "error": f"unknown state {state!r}",
                "states": list(STATES)})
        records = self.service.store.jobs(state)
        return self._json(200, {"jobs": [r.to_dict() for r in records],
                                "counts": self.service.store.counts()})

    def _result(self, job_id: str):
        record = self.service.store.get(job_id)
        if record is None:
            return self._unknown_job(job_id)
        if not record.terminal:
            return self._json(202, {"id": record.id, "state": record.state},
                              headers={"Retry-After": str(
                                  self.service.retry_after())})
        return self._json(200, record.to_dict(include_report=True))

    def _unknown_job(self, job_id: str):
        return self._json(404, {"error": "unknown job", "id": job_id})
