"""``pimsim serve``: a durable network front-end over the Engine.

The serving stack, bottom to top (each layer testable without the one
above it — the Toki ``api/public.py`` -> ``api/http.py`` layering):

* :class:`JobStore` (:mod:`repro.serve.store`) — a crash-safe,
  append-only JSONL journal of every submitted spec and state
  transition (``queued -> running -> done|failed|poisoned|timeout``,
  plus ``cancelled``), fsync'd before acknowledgement and compacted
  when it dwarfs the live job set.  After a SIGKILL the journal replays
  exactly: settled results are served forever without re-execution
  (jobs are content-addressed by :meth:`JobSpec.job_id
  <repro.engine.JobSpec.job_id>`), interrupted jobs re-enqueue with
  restart blame and are quarantined as ``poisoned`` past
  ``max_restarts`` — the process-level mirror of the worker pool's
  poison accounting.

* :class:`ServeService` (:mod:`repro.serve.service`) — admission
  control (a bounded backlog; over the high-water mark submissions are
  refused as :class:`Overloaded` with a ``Retry-After`` derived from
  the pool's service-time EWMA), per-configuration
  :class:`~repro.engine.Engine` sessions keyed by content hash (one
  client's exotic configuration cannot churn another's warm compile
  caches), and graceful drain (stop admissions, finish running jobs to
  a deadline, re-journal whatever remains as next start's work).

* :func:`serve_http` (:mod:`repro.serve.http`) — the stdlib
  ``ThreadingHTTPServer`` codec: ``POST /jobs``, ``GET /jobs[?state=]``,
  ``GET /jobs/<id>[/result]``, ``DELETE /jobs/<id>``, ``GET /healthz``,
  ``GET /readyz`` (unready while draining or when a worker pool is
  broken beyond self-healing, so an orchestrator restarts the server).

``pimsim serve --store jobs.jsonl`` wires the three together; see
:mod:`repro.runner.cli` for the flag surface and the exit-code
contract (0 clean drain / 2 fatal / 3 drain deadline expired).
"""

from .store import (
    STATES,
    TERMINAL_STATES,
    JobRecord,
    JobStore,
    UnknownJob,
)
from .service import Draining, Overloaded, ServeService, config_key
from .http import ServeHandler, ServeHTTPServer, serve_http

__all__ = [
    "Draining",
    "JobRecord",
    "JobStore",
    "Overloaded",
    "STATES",
    "ServeHTTPServer",
    "ServeHandler",
    "ServeService",
    "TERMINAL_STATES",
    "UnknownJob",
    "config_key",
    "serve_http",
]
