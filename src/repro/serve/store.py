"""Crash-safe job store: an fsync'd append-only journal of job states.

The store is the durability layer under ``pimsim serve``: every
submitted job spec and every state transition is appended to a JSONL
journal and fsync'd before the transition is acknowledged, so the
in-memory table can be reconstructed exactly after a SIGKILL.  States
move ``queued -> running -> done|failed|poisoned|timeout`` (plus
``cancelled`` for jobs withdrawn before they ran); the terminal states
carry the durable payload (the report, or the typed error record).

Restart semantics (the contract ``tests/test_serve.py`` pins):

* a job with a journaled terminal state is **never re-run** — its
  result is served from the journal forever (idempotency by job id);
* a job journaled ``queued`` is re-enqueued untouched;
* a job journaled ``running`` was in flight when the process died: it
  is re-enqueued with one unit of restart blame (``attempts`` += 1),
  and a job whose blame exceeds ``max_restarts`` is quarantined as
  ``poisoned`` instead of being replayed forever — the process-level
  mirror of the worker pool's poison-job accounting.

The journal is append-only, so it grows with every transition;
:meth:`JobStore.compact` rewrites it as one snapshot record per job
(atomic rename), and :meth:`JobStore.open` compacts automatically when
the event count dwarfs the live job count.  Torn trailing lines (a
crash mid-write) and foreign lines are skipped on replay, exactly like
``pimsim batch --resume``'s journal.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

__all__ = ["JobStore", "JobRecord", "STATES", "TERMINAL_STATES",
           "UnknownJob"]

#: every state a job can be journaled in, in lifecycle order.
STATES = ("queued", "running", "done", "failed", "poisoned", "timeout",
          "cancelled")

#: states that end a job's lifecycle; a job here is never re-run.
TERMINAL_STATES = frozenset(("done", "failed", "poisoned", "timeout",
                             "cancelled"))


class UnknownJob(KeyError):
    """The store holds no job with that id."""


class JobRecord:
    """One job's durable state: spec, lifecycle, payload, blame."""

    __slots__ = ("id", "spec", "state", "report", "error", "attempts",
                 "submitted_at", "updated_at")

    def __init__(self, job_id: str, spec: dict, state: str = "queued", *,
                 report: dict | None = None, error: dict | None = None,
                 attempts: int = 0, submitted_at: float | None = None,
                 updated_at: float | None = None):
        self.id = job_id
        self.spec = spec
        self.state = state
        self.report = report
        self.error = error
        self.attempts = attempts
        self.submitted_at = submitted_at
        self.updated_at = updated_at

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, *, include_report: bool = False) -> dict:
        """JSON-ready view (the HTTP layer's job resource)."""
        data = {"id": self.id, "state": self.state,
                "attempts": self.attempts, "spec": self.spec,
                "submitted_at": self.submitted_at,
                "updated_at": self.updated_at}
        if self.error is not None:
            data["error"] = self.error
        if include_report and self.report is not None:
            data["report"] = self.report
        return data

    def snapshot(self) -> dict:
        """Full journal snapshot record (compaction output)."""
        data = self.to_dict(include_report=True)
        data["event"] = "job"
        return data


class JobStore:
    """Durable, restart-surviving table of jobs keyed by stable job id.

    Thread-safe: every mutation appends one journal line under the
    store lock and fsyncs it (``fsync=False`` drops the fsync for
    tests that hammer transitions).  ``max_restarts`` bounds how often
    a job found ``running`` at replay is re-enqueued before being
    quarantined as ``poisoned``.
    """

    def __init__(self, path: str | Path, *, max_restarts: int = 1,
                 fsync: bool = True, compact_floor: int = 256):
        self.path = Path(path)
        self.max_restarts = max_restarts
        self._fsync = fsync
        self._compact_floor = compact_floor
        self._lock = threading.RLock()
        self._records: dict[str, JobRecord] = {}
        self._fh = None
        self._closed = False
        events = self._replay()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._recover_running()
        if events > max(self._compact_floor, 4 * len(self._records)):
            self.compact()

    # -- journal plumbing ------------------------------------------------

    def _append(self, record: dict) -> None:
        """Write one journal line; durable before this returns."""
        line = json.dumps(record, default=str)
        self._fh.write(line + "\n")
        self._fh.flush()
        if self._fsync:
            os.fsync(self._fh.fileno())

    def _replay(self) -> int:
        """Rebuild the in-memory table from the journal; returns the
        number of well-formed events (the compaction trigger input)."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return 0
        events = 0
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn trailing line from a crash mid-write
            if not isinstance(entry, dict) or "event" not in entry:
                continue
            events += 1
            self._apply(entry)
        return events

    def _apply(self, entry: dict) -> None:
        event = entry["event"]
        job_id = entry.get("id")
        if event == "job":  # compaction snapshot: authoritative
            if job_id:
                self._records[job_id] = JobRecord(
                    job_id, entry.get("spec") or {},
                    entry.get("state", "queued"),
                    report=entry.get("report"), error=entry.get("error"),
                    attempts=int(entry.get("attempts", 0)),
                    submitted_at=entry.get("submitted_at"),
                    updated_at=entry.get("updated_at"))
            return
        if event == "submit":
            if job_id and job_id not in self._records:
                self._records[job_id] = JobRecord(
                    job_id, entry.get("spec") or {},
                    submitted_at=entry.get("t"), updated_at=entry.get("t"))
            return
        record = self._records.get(job_id)
        if record is None:
            return  # foreign or orphaned transition
        if event == "state":
            record.state = entry.get("state", record.state)
            record.attempts = int(entry.get("attempts", record.attempts))
            record.updated_at = entry.get("t", record.updated_at)
            if record.state in TERMINAL_STATES:
                record.report = entry.get("report")
                record.error = entry.get("error")

    def _recover_running(self) -> None:
        """Blame-and-requeue every job the dead process left running."""
        for record in self._records.values():
            if record.state != "running":
                continue
            record.attempts += 1
            if record.attempts > self.max_restarts:
                self._transition(record, "poisoned", error={
                    "kind": "JobPoisoned",
                    "message": (f"job was running through {record.attempts} "
                                f"server crashes; quarantined after "
                                f"max_restarts={self.max_restarts}")})
            else:
                self._transition(record, "queued")

    # -- mutations --------------------------------------------------------

    def _transition(self, record: JobRecord, state: str, *,
                    report: dict | None = None,
                    error: dict | None = None) -> None:
        now = time.time()
        record.state = state
        record.updated_at = now
        entry = {"event": "state", "id": record.id, "state": state,
                 "attempts": record.attempts, "t": now}
        if report is not None:
            record.report = report
            entry["report"] = report
        if error is not None:
            record.error = error
            entry["error"] = error
        self._append(entry)

    def submit(self, spec: dict, job_id: str) -> tuple[JobRecord, bool]:
        """Record a submission; idempotent by job id.

        Returns ``(record, created)`` — ``created`` is False when the id
        is already known (same spec, same job), in which case the
        existing record (possibly already terminal, with its durable
        result) is returned untouched.
        """
        with self._lock:
            self._check_open()
            existing = self._records.get(job_id)
            if existing is not None:
                return existing, False
            now = time.time()
            record = JobRecord(job_id, spec, submitted_at=now,
                               updated_at=now)
            self._records[job_id] = record
            self._append({"event": "submit", "id": job_id, "spec": spec,
                          "t": now})
            return record, True

    def mark_running(self, job_id: str) -> bool:
        """queued -> running; False if the job is not queued anymore
        (cancelled or already settled — the dispatch must be dropped)."""
        with self._lock:
            self._check_open()
            record = self._require(job_id)
            if record.state != "queued":
                return False
            self._transition(record, "running")
            return True

    def requeue(self, job_id: str) -> bool:
        """running -> queued (a dispatch that never reached a worker)."""
        with self._lock:
            self._check_open()
            record = self._require(job_id)
            if record.state != "running":
                return False
            self._transition(record, "queued")
            return True

    def settle(self, job_id: str, state: str, *, report: dict | None = None,
               error: dict | None = None) -> JobRecord:
        """Journal a terminal outcome; idempotent (first writer wins)."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"settle() takes a terminal state, got {state!r}")
        with self._lock:
            self._check_open()
            record = self._require(job_id)
            if not record.terminal:
                self._transition(record, state, report=report, error=error)
            return record

    def cancel(self, job_id: str) -> bool:
        """Withdraw a queued job; False once it is running or settled."""
        with self._lock:
            self._check_open()
            record = self._require(job_id)
            if record.state != "queued":
                return False
            self._transition(record, "cancelled",
                             error={"kind": "Cancelled",
                                    "message": "cancelled while queued"})
            return True

    # -- queries ----------------------------------------------------------

    def _require(self, job_id: str) -> JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise UnknownJob(job_id)
        return record

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._records.get(job_id)

    def jobs(self, state: str | None = None) -> list[JobRecord]:
        """Records in submission order, optionally filtered by state."""
        with self._lock:
            records = list(self._records.values())
        if state is not None:
            records = [r for r in records if r.state == state]
        return records

    def counts(self) -> dict:
        """Jobs per state (every state present, zero-filled)."""
        counts = dict.fromkeys(STATES, 0)
        with self._lock:
            for record in self._records.values():
                counts[record.state] = counts.get(record.state, 0) + 1
        return counts

    def backlog(self) -> int:
        """Jobs admitted but not yet settled (the admission-control input)."""
        with self._lock:
            return sum(1 for r in self._records.values() if not r.terminal)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- lifecycle ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("job store is closed")

    def compact(self) -> None:
        """Rewrite the journal as one snapshot line per job (atomic)."""
        with self._lock:
            self._check_open()
            tmp = self.path.with_suffix(self.path.suffix + ".compact")
            with tmp.open("w", encoding="utf-8") as fh:
                for record in self._records.values():
                    fh.write(json.dumps(record.snapshot(), default=str)
                             + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            self._fh = self.path.open("a", encoding="utf-8")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._fh is not None:
                self._fh.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
