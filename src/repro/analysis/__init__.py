"""Result analysis: breakdowns, normalization, text charts, reports."""

from .breakdown import (
    attention_shard_balance,
    attention_share,
    comm_ratios,
    energy_breakdown,
    nth_conv_layer,
    op_class_breakdown,
    step_latency_stats,
    unit_breakdown,
)
from .charts import ascii_bars, normalize, series_table
from .report import core_table, full_report, layer_table
from .timeline import core_activity, timeline

__all__ = [
    "unit_breakdown",
    "comm_ratios",
    "energy_breakdown",
    "nth_conv_layer",
    "op_class_breakdown",
    "attention_share",
    "attention_shard_balance",
    "step_latency_stats",
    "normalize",
    "ascii_bars",
    "series_table",
    "full_report",
    "layer_table",
    "core_table",
    "timeline",
    "core_activity",
]
