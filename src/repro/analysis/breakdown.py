"""Latency and communication breakdowns of simulation reports."""

from __future__ import annotations

from ..runner.results import SimReport, nearest_rank

__all__ = ["unit_breakdown", "comm_ratios", "energy_breakdown",
           "nth_conv_layer", "op_class_breakdown", "attention_share",
           "attention_shard_balance", "step_latency_stats"]

#: graph ops that make up the dynamic attention path (vector-unit work
#: that crossbars cannot absorb).
ATTENTION_OPS = ("matmul", "softmax", "layernorm", "gelu", "transpose")


def unit_breakdown(report: SimReport) -> dict[str, int]:
    """Total busy cycles per execution-unit type across all layers."""
    totals: dict[str, int] = {}
    for busy in report.layer_busy.values():
        for unit, cycles in busy.items():
            totals[unit] = totals.get(unit, 0) + cycles
    return totals


def comm_ratios(report: SimReport) -> dict[str, float]:
    """Per-layer communication-latency ratio (Section IV-B's metric)."""
    return {layer: report.comm_ratio(layer)
            for layer in report.layer_names()}


def energy_breakdown(report: SimReport) -> dict[str, float]:
    """Energy share per component category (sums to 1.0)."""
    total = report.total_energy_pj
    if total <= 0:
        return {k: 0.0 for k in report.energy_pj}
    return {k: v / total for k, v in report.energy_pj.items()}


def op_class_breakdown(report: SimReport) -> dict[str, dict[str, int]]:
    """Busy cycles per graph op class, per execution unit.

    Groups :attr:`~repro.runner.results.SimReport.layer_busy` by the
    originating graph operator (``conv``, ``fc``, ``matmul``,
    ``softmax``, ``layernorm``, ...), using the compiler's ``stage_ops``
    metadata.  This is how attention-heavy workloads are read: dynamic
    matmuls and normalizations land on the vector unit, projections on
    the matrix unit.  Layers without metadata (hand-written programs)
    group under ``"?"``.
    """
    stage_ops: dict[str, str] = report.meta.get("stage_ops", {})
    out: dict[str, dict[str, int]] = {}
    for layer, busy in report.layer_busy.items():
        op = stage_ops.get(layer, "?")
        per_unit = out.setdefault(op, {})
        for unit, cycles in busy.items():
            per_unit[unit] = per_unit.get(unit, 0) + cycles
    return out


def attention_share(report: SimReport) -> float:
    """Share of total busy time spent in the dynamic vector-unit ops
    attention leans on (matmul / softmax / layernorm / gelu /
    transpose).  0.0 for networks that compile none of these stages —
    the zoo CNNs — but note the set is op-based, not topology-based: a
    standalone softmax classifier or an unfused gelu stage in a CNN
    counts toward the share too.

    Attribution follows the compiled stage, which matches how the
    hardware executes: a gelu *fused* into its producing conv/fc stage
    (the default under ``operator_fusion``) counts toward that stage's
    op, not toward this share — so the metric is a property of the
    compiled program, not fusion-invariant across compiler settings.
    """
    by_op = op_class_breakdown(report)
    total = sum(c for per_unit in by_op.values() for c in per_unit.values())
    if not total:
        return 0.0
    attn = sum(c for op, per_unit in by_op.items() if op in ATTENTION_OPS
               for c in per_unit.values())
    return attn / total


def attention_shard_balance(report: SimReport) -> dict[int, int]:
    """Per-core vector-unit busy cycles of the dynamic attention ops.

    With ``compiler.attention_shards == 1`` every attention stage's
    vector work sits on its home core; with sharding the tokens^2 work
    spreads over each stage's shard group (``meta["shard_groups"]``),
    and this is the view that shows the spread — ``layer_busy`` merges
    cores away.  Keys are core ids, values attention-op vector cycles;
    an empty dict means the report predates per-core collection (e.g.
    one deserialized from an older JSON) or compiles no attention ops.
    """
    stage_ops: dict[str, str] = report.meta.get("stage_ops", {})
    out: dict[int, int] = {}
    for core, layers in report.vector_layer_cycles.items():
        total = sum(cycles for layer, cycles in layers.items()
                    if stage_ops.get(layer) in ATTENTION_OPS)
        if total:
            out[int(core)] = total
    return out


def step_latency_stats(report: SimReport) -> dict[str, float]:
    """Per-step latency distribution of a decode report.

    Reads the ``meta["decode"]`` block an aggregated decode run carries
    (:meth:`Engine.run <repro.engine.Engine.run>` with ``decode_steps``,
    or :meth:`DecodeSession.run <repro.engine.DecodeSession.run>`) and
    summarizes the per-step series: step count, nearest-rank p50/p99
    latency and mean time-per-output-token, all in milliseconds.  Every
    field is 0 for a non-decode report (or a zero-step one) — the same
    no-work convention as :func:`attention_share`, never a division by
    zero.
    """
    decode = report.meta.get("decode") or {}
    seconds = list(decode.get("step_seconds") or ())
    steps = len(seconds)
    return {
        "steps": steps,
        "p50_step_ms": nearest_rank(seconds, 50) * 1e3,
        "p99_step_ms": nearest_rank(seconds, 99) * 1e3,
        "tpot_ms": (sum(seconds) / steps * 1e3) if steps else 0.0,
        "total_ms": sum(seconds) * 1e3,
    }


def nth_conv_layer(report: SimReport, n: int) -> str:
    """Name of the n-th (1-based) convolution layer in a report.

    Layer names follow the model builders (``conv2``, ``s1b1_conv1``,
    ...); ordering is the compiler's topological order preserved in the
    report metadata when available, else lexicographic.
    """
    ordered = report.meta.get("stage_homes")
    names = list(ordered) if ordered else report.layer_names()
    convs = [name for name in names if "conv" in name or "fc" in name]
    if not 1 <= n <= len(convs):
        raise IndexError(f"no {n}-th conv layer among {len(convs)}")
    return convs[n - 1]
