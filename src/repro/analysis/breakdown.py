"""Latency and communication breakdowns of simulation reports."""

from __future__ import annotations

from ..runner.results import SimReport

__all__ = ["unit_breakdown", "comm_ratios", "energy_breakdown", "nth_conv_layer"]


def unit_breakdown(report: SimReport) -> dict[str, int]:
    """Total busy cycles per execution-unit type across all layers."""
    totals: dict[str, int] = {}
    for busy in report.layer_busy.values():
        for unit, cycles in busy.items():
            totals[unit] = totals.get(unit, 0) + cycles
    return totals


def comm_ratios(report: SimReport) -> dict[str, float]:
    """Per-layer communication-latency ratio (Section IV-B's metric)."""
    return {layer: report.comm_ratio(layer)
            for layer in report.layer_names()}


def energy_breakdown(report: SimReport) -> dict[str, float]:
    """Energy share per component category (sums to 1.0)."""
    total = report.total_energy_pj
    if total <= 0:
        return {k: 0.0 for k in report.energy_pj}
    return {k: v / total for k, v in report.energy_pj.items()}


def nth_conv_layer(report: SimReport, n: int) -> str:
    """Name of the n-th (1-based) convolution layer in a report.

    Layer names follow the model builders (``conv2``, ``s1b1_conv1``,
    ...); ordering is the compiler's topological order preserved in the
    report metadata when available, else lexicographic.
    """
    ordered = report.meta.get("stage_homes")
    names = list(ordered) if ordered else report.layer_names()
    convs = [name for name in names if "conv" in name or "fc" in name]
    if not 1 <= n <= len(convs):
        raise IndexError(f"no {n}-th conv layer among {len(convs)}")
    return convs[n - 1]
