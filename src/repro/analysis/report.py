"""Full text report of a simulation run.

``full_report(report)`` renders everything a user would want in one
document: the headline numbers, per-layer latency/communication table,
per-core utilization, energy decomposition, and NoC traffic — the
expanded version of the latency/power/energy outputs in Fig. 1.
"""

from __future__ import annotations

from ..runner.results import SimReport
from .breakdown import energy_breakdown, unit_breakdown
from .charts import ascii_bars

__all__ = ["full_report", "layer_table", "core_table"]


def layer_table(report: SimReport, *, limit: int | None = None) -> str:
    """Per-layer busy-cycle table: matrix / vector / transfer + comm ratio."""
    lines = [f"{'layer':<24}{'matrix':>12}{'vector':>12}{'transfer':>12}"
             f"{'comm':>7}"]
    layers = report.layer_names()
    if limit is not None:
        layers = layers[:limit]
    for layer in layers:
        busy = report.layer_busy[layer]
        lines.append(
            f"{layer:<24}{busy.get('matrix', 0):>12,}"
            f"{busy.get('vector', 0):>12,}{busy.get('transfer', 0):>12,}"
            f"{report.comm_ratio(layer):>7.0%}"
        )
    if limit is not None and len(report.layer_names()) > limit:
        lines.append(f"... {len(report.layer_names()) - limit} more layers")
    return "\n".join(lines)


def core_table(report: SimReport) -> str:
    """Per-core issue counts, stalls and unit busy shares."""
    lines = [f"{'core':>5}{'issued':>10}{'halt':>12}{'rob stall':>12}"
             f"{'matrix':>10}{'vector':>10}{'transfer':>10}"]
    for core_id, stats in sorted(report.per_core.items()):
        busy = stats.get("unit_busy", {})
        halt = stats.get("halt_time")
        lines.append(
            f"{core_id:>5}{stats.get('issued', 0):>10,}"
            f"{(halt if halt is not None else -1):>12,}"
            f"{stats.get('rob_stall_cycles', 0):>12,}"
            f"{busy.get('matrix', 0):>10,}{busy.get('vector', 0):>10,}"
            f"{busy.get('transfer', 0):>10,}"
        )
    return "\n".join(lines)


def full_report(report: SimReport, *, layer_limit: int | None = 40) -> str:
    """The complete human-readable run report."""
    sections = [
        report.summary(),
        "",
        "== energy decomposition ==",
        ascii_bars(energy_breakdown(report), fmt="{:.1%}"),
        "",
        "== unit activity (busy cycles, all cores) ==",
        ascii_bars({k: float(v) for k, v in unit_breakdown(report).items()},
                   fmt="{:,.0f}"),
        "",
        "== per-layer activity ==",
        layer_table(report, limit=layer_limit),
        "",
        "== per-core activity ==",
        core_table(report),
    ]
    return "\n".join(sections)
