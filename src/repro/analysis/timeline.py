"""ASCII activity timeline from an instruction-completion trace.

Buckets the trace into fixed-width time windows per core and renders a
Gantt-style strip per core: which unit dominated each window (``M``atrix,
``V``ector, ``T``ransfer, ``S``calar), ``.`` for idle.  A quick visual
answer to "where is the pipeline bubble?" without leaving the terminal.
"""

from __future__ import annotations

__all__ = ["timeline", "core_activity"]

_UNIT_GLYPH = {"matrix": "M", "vector": "V", "transfer": "T", "scalar": "S"}


def core_activity(trace: list[tuple[int, int, str, str]], total_cycles: int,
                  *, buckets: int = 64) -> dict[int, list[str]]:
    """Dominant unit per (core, time bucket) from a completion trace."""
    if total_cycles <= 0:
        raise ValueError("total_cycles must be positive")
    if not trace:
        return {}
    width = max(1, total_cycles // buckets + (1 if total_cycles % buckets else 0))
    counts: dict[int, list[dict[str, int]]] = {}
    for cycle, core, unit, _text in trace:
        rows = counts.setdefault(core, [dict() for _ in range(buckets)])
        b = min(buckets - 1, cycle // width)
        rows[b][unit] = rows[b].get(unit, 0) + 1
    glyphs: dict[int, list[str]] = {}
    for core, rows in counts.items():
        glyphs[core] = [
            _UNIT_GLYPH[max(row, key=row.get)] if row else "."
            for row in rows
        ]
    return glyphs


def timeline(trace: list[tuple[int, int, str, str]] | None,
             total_cycles: int, *, buckets: int = 64) -> str:
    """Render the per-core activity strips (requires a trace-enabled run)."""
    if trace is None:
        return ("(no trace recorded: enable it with sim.trace=True in the "
                "architecture configuration)")
    activity = core_activity(trace, total_cycles, buckets=buckets)
    if not activity:
        return "(empty trace)"
    lines = [f"activity over {total_cycles:,} cycles "
             f"(M=matrix V=vector T=transfer S=scalar .=idle):"]
    for core in sorted(activity):
        lines.append(f"  core {core:>3} |{''.join(activity[core])}|")
    return "\n".join(lines)
