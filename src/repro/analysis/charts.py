"""Text rendering of results: normalized tables and ASCII bar charts.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep the formatting in one place.
"""

from __future__ import annotations

__all__ = ["normalize", "ascii_bars", "series_table"]


def normalize(values: dict[str, float],
              reference: str | None = None) -> dict[str, float]:
    """Scale a named series so the reference entry (or the max) is 1.0."""
    if not values:
        return {}
    ref = values[reference] if reference is not None else max(values.values())
    if ref == 0:
        raise ValueError("cannot normalize to a zero reference")
    return {k: v / ref for k, v in values.items()}


def ascii_bars(values: dict[str, float], *, width: int = 40,
               fmt: str = "{:.3f}", title: str = "") -> str:
    """Horizontal ASCII bar chart, one row per entry."""
    lines = [title] if title else []
    if not values:
        return "\n".join(lines + ["(no data)"])
    peak = max(values.values()) or 1.0
    label_w = max(len(k) for k in values)
    for key, value in values.items():
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"  {key:<{label_w}}  {fmt.format(value):>8}  {bar}")
    return "\n".join(lines)


def series_table(rows: dict[str, dict[str, float]], *, fmt: str = "{:.3f}",
                 title: str = "") -> str:
    """Render named series as an aligned table (rows x columns).

    ``rows`` maps row label -> {column label -> value}; column order is
    taken from the first row.
    """
    lines = [title] if title else []
    if not rows:
        return "\n".join(lines + ["(no data)"])
    columns = list(next(iter(rows.values())))
    label_w = max(len(k) for k in rows)
    col_w = max(8, *(len(c) + 2 for c in columns))
    header = " " * (label_w + 2) + "".join(f"{c:>{col_w}}" for c in columns)
    lines.append(header)
    for label, cells in rows.items():
        rendered = "".join(
            f"{fmt.format(cells[c]) if c in cells else '-':>{col_w}}"
            for c in columns)
        lines.append(f"  {label:<{label_w}}{rendered}")
    return "\n".join(lines)
