"""The four execution units of a core (Fig. 2b/2c).

* :class:`MatrixUnit` — drives crossbar groups; MVMs to *different* groups
  proceed concurrently (each group has its own converters), optionally
  throttled by core-level shared-ADC domains; MVMs to the same group never
  coexist (the dispatch stage's structural-hazard check guarantees it).
* :class:`VectorUnit` — one SIMD operation at a time; latency is the max
  of ALU time (``length / lanes``) and local-memory streaming time.
* :class:`TransferUnit` — executes SEND/RECV against the windowed flow
  channels and LOAD/STORE against global memory, strictly in order (a DMA
  engine); its busy time *includes* synchronization stalls, which is what
  the per-layer communication-latency ratio measures.
* :class:`ScalarUnit` — functional execution of register ALU ops.

Each unit pulls ROB entries from its issue queue, executes, charges energy
and per-layer busy time, and marks the entry done.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator

from ..isa import MvmInst, ScalarInst, TransferInst, VectorInst
from ..sim import Fifo, Resource
from .rob import RobEntry

if TYPE_CHECKING:  # pragma: no cover
    from .core import CoreModel

__all__ = ["MatrixUnit", "VectorUnit", "TransferUnit", "ScalarUnit"]


class _UnitBase:
    """Common queue/bookkeeping for execution units."""

    name = "?"

    def __init__(self, core: "CoreModel") -> None:
        self.core = core
        self.sim = core.sim
        # Queues never throttle below the ROB window: the ROB is the
        # architectural lookahead limit (Fig. 4), the queue only stages.
        depth = max(core.config.core.unit_queue_depth,
                    core.config.core.rob_size)
        self.queue = Fifo(core.sim, depth,
                          f"core{core.core_id}.{self.name}.q")
        self.busy_cycles = 0
        self.ops = 0

    def start(self) -> None:
        self.sim.spawn(self._loop(), f"core{self.core.core_id}.{self.name}")

    def _loop(self) -> Generator:
        raise NotImplementedError

    def _wait_ready(self, entry: RobEntry) -> Generator:
        """Coroutine: block until no older in-flight instruction conflicts
        with this one (issue-side hazard enforcement)."""
        rob = self.core.rob
        while rob.conflicts_before(entry):
            yield rob.completed

    def _account(self, entry: RobEntry, start: int) -> None:
        elapsed = self.sim.now - start
        self.busy_cycles += elapsed
        self.ops += 1
        self.core.chip.layer_busy(entry.inst.layer, self.name, elapsed)
        self.core.chip.trace_event(self.core.core_id, self.name, entry.inst)
        self.core.rob.mark_done(entry)


class MatrixUnit(_UnitBase):
    name = "matrix"

    def __init__(self, core: "CoreModel") -> None:
        super().__init__(core)
        domains = core.config.core.shared_adc_domains
        self._adc = (Resource(core.sim, domains,
                              f"core{core.core_id}.adc") if domains else None)

    def _loop(self) -> Generator:
        while True:
            entry = yield from self.queue.get()
            yield from self._wait_ready(entry)
            # Each MVM runs in its own child process so independent groups
            # overlap; issue bandwidth is one MVM per cycle.
            self.sim.spawn(self._execute(entry),
                           f"core{self.core.core_id}.mvm")
            yield 1

    def _execute(self, entry: RobEntry) -> Generator:
        inst = entry.inst
        assert isinstance(inst, MvmInst)
        start = self.sim.now
        cfg = self.core.config
        group = self.core.groups.get(inst.group)
        if self._adc is not None:
            yield from self._adc.acquire()
        compute = inst.count * cfg.crossbar.mvm_cycles()
        in_bytes = inst.count * group.rows * cfg.compiler.activation_bytes
        out_bytes = inst.dst_bytes
        stream = math.ceil(in_bytes / cfg.core.local_memory_read_bytes_per_cycle) \
            + math.ceil(out_bytes / cfg.core.local_memory_write_bytes_per_cycle)
        yield max(compute, stream)
        if self._adc is not None:
            self._adc.release()
        meter = self.core.chip.energy
        meter.mvm(cfg.energy, group.rows, group.cols,
                  cfg.crossbar.dac_phases, inst.count)
        meter.local_mem(cfg.energy, in_bytes + out_bytes)
        self._account(entry, start)


class VectorUnit(_UnitBase):
    name = "vector"

    def _loop(self) -> Generator:
        cfg = self.core.config
        lanes = cfg.core.vector_lanes
        issue = cfg.core.vector_issue_cycles
        read_bw = cfg.core.local_memory_read_bytes_per_cycle
        write_bw = cfg.core.local_memory_write_bytes_per_cycle
        while True:
            entry = yield from self.queue.get()
            yield from self._wait_ready(entry)
            inst = entry.inst
            assert isinstance(inst, VectorInst)
            start = self.sim.now
            read_bytes = inst.src_bytes * inst.n_sources
            alu = math.ceil(inst.length / lanes)
            stream = max(math.ceil(read_bytes / read_bw),
                         math.ceil(inst.dst_bytes / write_bw))
            yield issue + max(alu, stream)
            self.core.chip.energy.vector_op(
                cfg.energy, inst.length, read_bytes + inst.dst_bytes)
            self._account(entry, start)


class TransferUnit(_UnitBase):
    """In-order transfer engine with per-flow virtual output channels.

    RECV/LOAD/STORE execute serially in program order.  A SEND drains its
    payload from local memory serially, but then parks in its *flow's* own
    output queue, where a per-flow drainer pushes it through the credit
    window and the mesh — so a send blocked on a lagging consumer (a skip
    connection, a slow inception branch) never head-of-line-blocks traffic
    to other consumers.  This mirrors per-destination output FIFOs in real
    NoC interfaces and is what makes windowed synchronized transfers
    deadlock-free on arbitrary DAGs (see DESIGN.md).
    """

    name = "transfer"

    def __init__(self, core: "CoreModel") -> None:
        super().__init__(core)
        self._send_queues: dict[int, Fifo] = {}

    def _send_queue(self, flow_id: int) -> Fifo:
        if flow_id not in self._send_queues:
            queue = Fifo(self.sim, None,
                         f"core{self.core.core_id}.sendq{flow_id}")
            self._send_queues[flow_id] = queue
            self.sim.spawn(self._flow_drainer(flow_id, queue),
                           f"core{self.core.core_id}.drain{flow_id}")
        return self._send_queues[flow_id]

    def _flow_drainer(self, flow_id: int, queue: Fifo) -> Generator:
        chip = self.core.chip
        channel = chip.flow(flow_id)
        while True:
            entry, issued_at = yield from queue.get()
            yield from channel.send(entry.inst.bytes)
            elapsed = self.sim.now - issued_at
            self.busy_cycles += elapsed
            chip.layer_busy(entry.inst.layer, self.name, elapsed)
            chip.trace_event(self.core.core_id, self.name, entry.inst)
            self.core.rob.mark_done(entry)

    def _loop(self) -> Generator:
        cfg = self.core.config
        read_bw = cfg.core.local_memory_read_bytes_per_cycle
        write_bw = cfg.core.local_memory_write_bytes_per_cycle
        chip = self.core.chip
        while True:
            entry = yield from self.queue.get()
            yield from self._wait_ready(entry)
            inst = entry.inst
            assert isinstance(inst, TransferInst)
            start = self.sim.now
            if inst.op == "SEND":
                yield math.ceil(inst.bytes / read_bw)  # drain local memory
                chip.energy.local_mem(cfg.energy, inst.bytes)
                self.ops += 1
                ok = self._send_queue(inst.flow).try_put((entry, self.sim.now))
                assert ok  # send queues are unbounded
                continue
            if inst.op == "RECV":
                yield from chip.flow(inst.flow).recv(inst.seq)
                yield math.ceil(inst.bytes / write_bw)  # fill local memory
            elif inst.op == "LOAD":
                yield from chip.gmem.access(self.core.core_id, inst.bytes,
                                            write=False)
                yield math.ceil(inst.bytes / write_bw)
            else:  # STORE
                yield math.ceil(inst.bytes / read_bw)
                yield from chip.gmem.access(self.core.core_id, inst.bytes,
                                            write=True)
            chip.energy.local_mem(cfg.energy, inst.bytes)
            self._account(entry, start)


class ScalarUnit(_UnitBase):
    name = "scalar"

    def _loop(self) -> Generator:
        cfg = self.core.config
        while True:
            entry = yield from self.queue.get()
            yield from self._wait_ready(entry)
            inst = entry.inst
            assert isinstance(inst, ScalarInst)
            start = self.sim.now
            yield max(1, cfg.core.scalar_cycles)
            self.core.execute_scalar(inst)
            self.core.chip.energy.scalar_op(cfg.energy)
            self._account(entry, start)
