"""The four execution units of a core (Fig. 2b/2c).

* :class:`MatrixUnit` — drives crossbar groups; MVMs to *different* groups
  proceed concurrently (each group has its own converters), optionally
  throttled by core-level shared-ADC domains; MVMs to the same group never
  coexist (the dispatch stage's structural-hazard check guarantees it).
* :class:`VectorUnit` — one SIMD operation at a time; latency is the max
  of ALU time (``length / lanes``) and local-memory streaming time.
* :class:`TransferUnit` — executes SEND/RECV against the windowed flow
  channels and LOAD/STORE against global memory, strictly in order (a DMA
  engine); its busy time *includes* synchronization stalls, which is what
  the per-layer communication-latency ratio measures.
* :class:`ScalarUnit` — functional execution of register ALU ops.

Each unit pulls ROB entries from its issue queue, executes, charges energy
and per-layer busy time, and marks the entry done.

Issue-side hazard enforcement is scoreboard-driven: a unit asks the ROB
for the *oldest* in-flight conflicting entry and waits on exactly that
entry's completion event (``ReorderBuffer.ready_event``), re-probing the
scoreboard after each wake, instead of re-scanning the window on every
completion.  The hot loops are also frame-free on their fast paths: queue
pops use the nonblocking ``Fifo.try_get`` (falling into the blocking
coroutine only when the queue is actually empty), and an MVM on a core
without shared-ADC arbitration executes as a pair of scheduled callbacks
rather than a spawned child process — the callback pair replays the
spawned child's scheduling positions exactly, so simulations are
bit-identical either way (pinned by ``tests/golden/``).
"""

from __future__ import annotations

import math
from functools import partial
from typing import TYPE_CHECKING, Generator

from ..isa import MvmInst, VECTOR_SPECIAL_OPS
from ..sim import Fifo, Resource
from .rob import RobEntry

if TYPE_CHECKING:  # pragma: no cover
    from .core import CoreModel

__all__ = ["MatrixUnit", "VectorUnit", "TransferUnit", "ScalarUnit",
           "unit_latency", "run_latency"]


def unit_latency(inst, config, groups) -> int:
    """Pure issue-to-completion latency of one instruction on its unit.

    The closed-form twin of the unit loops below (kept in one place so
    the fast-fidelity walker, the compiler's per-run metadata and tests
    agree on the arithmetic).  For transfers this covers only the
    deterministic local-memory drain/fill cycles — flow-window, mesh and
    global-memory time is decided by the event kernel at run time.
    ``groups`` is the core's group table dict (``GroupTable.groups``);
    only MVMs consult it.
    """
    core = config.core
    read_bw = core.local_memory_read_bytes_per_cycle
    write_bw = core.local_memory_write_bytes_per_cycle
    unit = inst.unit
    if unit == "matrix":
        count = inst.count
        in_bytes = count * groups[inst.group].rows * config.compiler.activation_bytes
        stream = -(-in_bytes // read_bw) + -(-inst.dst_bytes // write_bw)
        return max(count * config.crossbar.mvm_cycles(), stream)
    if unit == "vector":
        length = inst.length
        if inst.n_sources == 2:
            read_bytes = inst.src_bytes + (inst.src2_bytes or inst.src_bytes)
        else:
            read_bytes = inst.src_bytes
        if inst.op in VECTOR_SPECIAL_OPS:
            alu = -(-length * core.vector_special_cycles_per_element
                    // core.vector_lanes)
        else:  # plain element-wise ops and VMATMUL both retire lanes/cycle
            alu = -(-length // core.vector_lanes)
        stream = max(-(-read_bytes // read_bw), -(-inst.dst_bytes // write_bw))
        return core.vector_issue_cycles + max(alu, stream)
    if unit == "transfer":
        if inst.op in ("SEND", "STORE"):
            return math.ceil(inst.bytes / read_bw)
        return math.ceil(inst.bytes / write_bw)  # RECV / LOAD fill
    return max(1, core.scalar_cycles)  # scalar


def run_latency(instructions, config, groups) -> int:
    """Summed :func:`unit_latency` over one straight-line run — the
    serialized lower bound the compiler records per run segment."""
    return sum(unit_latency(inst, config, groups) for inst in instructions)


class _UnitBase:
    """Common queue/bookkeeping for execution units."""

    name = "?"

    def __init__(self, core: "CoreModel") -> None:
        self.core = core
        self.sim = core.sim
        self.chip = core.chip
        # Queues never throttle below the ROB window (the seed sized them
        # max(unit_queue_depth, rob_size)): the ROB is the architectural
        # lookahead limit (Fig. 4), the queue only stages, and every
        # queued entry holds a ROB slot — so the capacity provably never
        # binds and the queue is unbounded to skip the bound checks.
        self.queue = Fifo(core.sim, None,
                          f"core{core.core_id}.{self.name}.q")
        self.busy_cycles = 0
        self.ops = 0
        self._traced = core.chip.trace is not None
        #: bound once: every completed instruction calls it (hot path).
        self._mark_done = core.rob.mark_done
        #: busy cycles per network layer; merged chip-wide by
        #: :meth:`ChipModel._merged_layer_busy` into ``RawResult.layer_busy``.
        self.layer_cycles: dict[str, int] = {}

    def start(self) -> None:
        self.sim.spawn(self._loop(), f"core{self.core.core_id}.{self.name}")

    def _loop(self) -> Generator:
        raise NotImplementedError

    # The pop + hazard-wait sequence is inlined in every unit loop rather
    # than shared through a helper coroutine: the units are the model
    # layer's hottest loops and a ``yield from`` helper would put one
    # extra generator frame on every instruction issued.  Keep the five
    # copies (four units + the flow drainer's pop) in sync:
    #
    #     ok, entry = queue.try_get()
    #     if not ok:
    #         entry = yield from queue.get()
    #     blocker = rob.oldest_conflict(entry)
    #     while blocker is not None:
    #         yield rob.ready_event(blocker)
    #         blocker = rob.oldest_conflict(entry)

    def _account(self, entry: RobEntry, start: int) -> None:
        elapsed = self.sim.now - start
        self.busy_cycles += elapsed
        self.ops += 1
        layer = entry.inst.layer
        cycles = self.layer_cycles
        cycles[layer] = cycles.get(layer, 0) + elapsed
        if self._traced:
            self.chip.trace_event(self.core.core_id, self.name, entry.inst)
        self._mark_done(entry)


class MatrixUnit(_UnitBase):
    name = "matrix"

    def __init__(self, core: "CoreModel") -> None:
        super().__init__(core)
        domains = core.config.core.shared_adc_domains
        self._adc = (Resource(core.sim, domains,
                              f"core{core.core_id}.adc") if domains else None)
        # Per-config constants of the MVM latency model, hoisted off the
        # per-instruction path.
        cfg = core.config
        # Programs without MVMs may carry no group table at all.
        self._groups = core.groups.groups if core.groups is not None else {}
        self._mvm_cycles = cfg.crossbar.mvm_cycles()
        self._act_bytes = cfg.compiler.activation_bytes
        self._read_bw = cfg.core.local_memory_read_bytes_per_cycle
        self._write_bw = cfg.core.local_memory_write_bytes_per_cycle
        self._dac_phases = cfg.crossbar.dac_phases
        self._e_xbar = cfg.energy.xbar_read_pj_per_cell
        self._e_dac = cfg.energy.dac_pj_per_conversion
        self._e_adc = cfg.energy.adc_pj_per_sample
        self._e_lmem = cfg.energy.local_mem_pj_per_byte

    def _loop(self) -> Generator:
        queue = self.queue
        rob = self.core.rob
        delta_append = self.sim._delta_append
        begin = self._begin
        fast = self._adc is None
        child_name = f"core{self.core.core_id}.mvm"
        while True:
            ok, entry = queue.try_get()
            if not ok:
                entry = yield from queue.get()
            blocker = rob.oldest_conflict(entry)
            while blocker is not None:
                yield rob.ready_event(blocker)
                blocker = rob.oldest_conflict(entry)
            # Each MVM runs as its own child so independent groups overlap;
            # issue bandwidth is one MVM per cycle.  Without an ADC the
            # child can never block, so it needs no coroutine: ``_begin``
            # is scheduled where the spawned child's first step would run
            # and ``_finish`` where its post-latency resume would.
            if fast:
                delta_append(partial(begin, entry))
            else:
                self.sim.spawn(self._execute(entry), child_name)
            yield 1

    def _latency(self, inst: MvmInst) -> tuple[int, int, int, "object"]:
        """(cycles, local-memory bytes in, bytes out, group) of one MVM."""
        count = inst.count
        group = self._groups[inst.group]
        in_bytes = count * group.rows * self._act_bytes
        out_bytes = inst.dst_bytes
        stream = -(-in_bytes // self._read_bw) + -(-out_bytes // self._write_bw)
        return max(count * self._mvm_cycles, stream), in_bytes, out_bytes, group

    def _begin(self, entry: RobEntry) -> None:
        """Frame-free MVM execution, phase 1: compute latency and schedule
        completion (the no-ADC twin of :meth:`_execute`)."""
        latency, in_bytes, out_bytes, group = self._latency(entry.inst)
        self.sim.call_after(latency, self._finish,
                            (entry, self.sim.now, in_bytes, out_bytes, group))

    def _finish(self, args) -> None:
        """Frame-free MVM execution, phase 2: charge energy and complete.

        The inlined charges mirror ``EnergyMeter.mvm`` + ``local_mem``
        term by term, in the same multiplication order (float sums must
        stay bit-comparable to the seed's)."""
        entry, start, in_bytes, out_bytes, group = args
        rows = group.rows
        cols = group.cols
        count = entry.inst.count
        phases = self._dac_phases
        pj = self.chip.energy.pj
        pj["xbar"] += self._e_xbar * rows * cols * count
        pj["dac"] += self._e_dac * rows * phases * count
        pj["adc"] += self._e_adc * cols * phases * count
        pj["local_mem"] += self._e_lmem * (in_bytes + out_bytes)
        self._account(entry, start)

    def _execute(self, entry: RobEntry) -> Generator:
        start = self.sim.now
        adc = self._adc
        if not adc.try_acquire():
            yield from adc.acquire()
        latency, in_bytes, out_bytes, group = self._latency(entry.inst)
        yield latency
        adc.release()
        self._finish((entry, start, in_bytes, out_bytes, group))


class VectorUnit(_UnitBase):
    """SIMD unit with a per-op cost model.

    Plain element-wise ops retire ``vector_lanes`` elements per cycle at
    ``vector_pj_per_element``.  Two op classes cost differently (the
    attention extension):

    * ``VECTOR_SPECIAL_OPS`` (softmax / layernorm / gelu) run an exp /
      rsqrt / erf micro-pipeline per element:
      ``vector_special_cycles_per_element`` cycles of ALU time and
      ``vector_special_pj_per_element`` of energy per element;
    * ``VMATMUL`` — the dynamic activation x activation product that
      cannot live in crossbars — counts ``length`` multiply-accumulates
      (``vector_lanes`` MACs/cycle, ``vector_mac_pj`` each).

    All other opcodes keep the exact seed arithmetic (order included),
    so CNN simulations stay bit-identical to the golden recordings.
    Note ``VSOFTMAX`` predates this model but joins the special class —
    softmax *is* an exp pipeline, and the seed's 1-element/cycle cost
    undercharged it; no zoo network or golden trace emits it, but
    hand-built graphs with a standalone softmax stage will report higher
    (more faithful) latency/energy than under the seed.
    """

    name = "vector"

    def _loop(self) -> Generator:
        cfg = self.core.config
        lanes = cfg.core.vector_lanes
        issue = cfg.core.vector_issue_cycles
        special_cycles = cfg.core.vector_special_cycles_per_element
        read_bw = cfg.core.local_memory_read_bytes_per_cycle
        write_bw = cfg.core.local_memory_write_bytes_per_cycle
        # Inlined energy charges mirror ``EnergyMeter.vector_op`` /
        # ``vector_special_op`` / ``vector_macs`` term by term, in the
        # same multiplication order (bit-comparable sums).
        e_vector = cfg.energy.vector_pj_per_element
        e_special = cfg.energy.vector_special_pj_per_element
        e_mac = cfg.energy.vector_mac_pj
        e_lmem = cfg.energy.local_mem_pj_per_byte
        special = VECTOR_SPECIAL_OPS
        pj = self.core.chip.energy.pj
        queue = self.queue
        rob = self.core.rob
        while True:
            ok, entry = queue.try_get()
            if not ok:
                entry = yield from queue.get()
            blocker = rob.oldest_conflict(entry)
            while blocker is not None:
                yield rob.ready_event(blocker)
                blocker = rob.oldest_conflict(entry)
            inst = entry.inst
            start = self.sim.now
            length = inst.length
            if inst.n_sources == 2:
                read_bytes = inst.src_bytes + (inst.src2_bytes
                                               or inst.src_bytes)
            else:
                read_bytes = inst.src_bytes
            op = inst.op
            if op == "VMATMUL":
                e_elem = e_mac           # length counts MACs
                alu = -(-length // lanes)
            elif op in special:
                e_elem = e_special
                alu = -(-length * special_cycles // lanes)
            else:
                e_elem = e_vector
                alu = -(-length // lanes)
            stream = max(-(-read_bytes // read_bw),
                         -(-inst.dst_bytes // write_bw))
            yield issue + max(alu, stream)
            pj["vector"] += e_elem * length
            pj["local_mem"] += e_lmem * (read_bytes + inst.dst_bytes)
            self._account(entry, start)


class TransferUnit(_UnitBase):
    """In-order transfer engine with per-flow virtual output channels.

    RECV/LOAD/STORE execute serially in program order.  A SEND drains its
    payload from local memory serially, but then parks in its *flow's* own
    output queue, where a per-flow drainer pushes it through the credit
    window and the mesh — so a send blocked on a lagging consumer (a skip
    connection, a slow inception branch) never head-of-line-blocks traffic
    to other consumers.  This mirrors per-destination output FIFOs in real
    NoC interfaces and is what makes windowed synchronized transfers
    deadlock-free on arbitrary DAGs (see DESIGN.md).
    """

    name = "transfer"

    def __init__(self, core: "CoreModel") -> None:
        super().__init__(core)
        self._send_queues: dict[int, Fifo] = {}

    def _send_queue(self, flow_id: int) -> Fifo:
        if flow_id not in self._send_queues:
            queue = Fifo(self.sim, None,
                         f"core{self.core.core_id}.sendq{flow_id}")
            self._send_queues[flow_id] = queue
            self.sim.spawn(self._flow_drainer(flow_id, queue),
                           f"core{self.core.core_id}.drain{flow_id}")
        return self._send_queues[flow_id]

    def _flow_drainer(self, flow_id: int, queue: Fifo) -> Generator:
        chip = self.core.chip
        channel = chip.flow(flow_id)
        while True:
            ok, item = queue.try_get()
            if not ok:
                item = yield from queue.get()
            entry, issued_at = item
            yield from channel.send(entry.inst.bytes)
            elapsed = self.sim.now - issued_at
            self.busy_cycles += elapsed
            layer = entry.inst.layer
            cycles = self.layer_cycles
            cycles[layer] = cycles.get(layer, 0) + elapsed
            if self._traced:
                chip.trace_event(self.core.core_id, self.name, entry.inst)
            self._mark_done(entry)

    def _loop(self) -> Generator:
        cfg = self.core.config
        read_bw = cfg.core.local_memory_read_bytes_per_cycle
        write_bw = cfg.core.local_memory_write_bytes_per_cycle
        chip = self.core.chip
        queue = self.queue
        rob = self.core.rob
        while True:
            ok, entry = queue.try_get()
            if not ok:
                entry = yield from queue.get()
            blocker = rob.oldest_conflict(entry)
            while blocker is not None:
                yield rob.ready_event(blocker)
                blocker = rob.oldest_conflict(entry)
            inst = entry.inst
            start = self.sim.now
            if inst.op == "SEND":
                yield math.ceil(inst.bytes / read_bw)  # drain local memory
                chip.energy.local_mem(cfg.energy, inst.bytes)
                self.ops += 1
                ok = self._send_queue(inst.flow).try_put((entry, self.sim.now))
                assert ok  # send queues are unbounded
                continue
            if inst.op == "RECV":
                yield from chip.flow(inst.flow).recv(inst.seq)
                yield math.ceil(inst.bytes / write_bw)  # fill local memory
            elif inst.op == "LOAD":
                yield from chip.gmem.access(self.core.core_id, inst.bytes,
                                            write=False)
                yield math.ceil(inst.bytes / write_bw)
            else:  # STORE
                yield math.ceil(inst.bytes / read_bw)
                yield from chip.gmem.access(self.core.core_id, inst.bytes,
                                            write=True)
            chip.energy.local_mem(cfg.energy, inst.bytes)
            self._account(entry, start)


class ScalarUnit(_UnitBase):
    name = "scalar"

    def _loop(self) -> Generator:
        cfg = self.core.config
        latency = max(1, cfg.core.scalar_cycles)
        energy = self.core.chip.energy
        execute = self.core.execute_scalar
        queue = self.queue
        rob = self.core.rob
        while True:
            ok, entry = queue.try_get()
            if not ok:
                entry = yield from queue.get()
            blocker = rob.oldest_conflict(entry)
            while blocker is not None:
                yield rob.ready_event(blocker)
                blocker = rob.oldest_conflict(entry)
            inst = entry.inst
            start = self.sim.now
            yield latency
            execute(inst)
            energy.scalar_op(cfg.energy)
            self._account(entry, start)

