"""Energy accounting.

The meter accumulates picojoules per category as units execute; leakage is
integrated over the final latency when the report is assembled.  Categories
mirror the hardware inventory: crossbar reads, DACs, ADCs, vector ALU,
scalar ALU, local memory, global memory, NoC.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["EnergyMeter", "CATEGORIES"]

CATEGORIES = ("xbar", "dac", "adc", "vector", "scalar",
              "local_mem", "global_mem", "noc", "leakage")


@dataclass
class EnergyMeter:
    """Accumulates dynamic energy per category (picojoules)."""

    pj: dict[str, float] = field(default_factory=lambda: {c: 0.0 for c in CATEGORIES})

    def add(self, category: str, picojoules: float) -> None:
        self.pj[category] += picojoules

    # The per-category charges below update ``pj`` directly rather than
    # going through :meth:`add` — they run once or more per instruction.

    def mvm(self, energy_cfg, rows: int, cols: int, dac_phases: int,
            count: int) -> None:
        """Charge one MVM instruction: ``count`` input vectors through a
        group of ``rows`` x ``cols`` active cells."""
        pj = self.pj
        pj["xbar"] += energy_cfg.xbar_read_pj_per_cell * rows * cols * count
        pj["dac"] += energy_cfg.dac_pj_per_conversion * rows * dac_phases * count
        pj["adc"] += energy_cfg.adc_pj_per_sample * cols * dac_phases * count

    def vector_op(self, energy_cfg, length: int, mem_bytes: int) -> None:
        pj = self.pj
        pj["vector"] += energy_cfg.vector_pj_per_element * length
        pj["local_mem"] += energy_cfg.local_mem_pj_per_byte * mem_bytes

    def vector_special_op(self, energy_cfg, length: int, mem_bytes: int) -> None:
        """Transcendental-heavy vector op (softmax / layernorm / gelu)."""
        pj = self.pj
        pj["vector"] += energy_cfg.vector_special_pj_per_element * length
        pj["local_mem"] += energy_cfg.local_mem_pj_per_byte * mem_bytes

    def vector_macs(self, energy_cfg, macs: int, mem_bytes: int) -> None:
        """Dynamic matmul on the vector unit: ``macs`` multiply-accumulates."""
        pj = self.pj
        pj["vector"] += energy_cfg.vector_mac_pj * macs
        pj["local_mem"] += energy_cfg.local_mem_pj_per_byte * mem_bytes

    def scalar_op(self, energy_cfg) -> None:
        self.pj["scalar"] += energy_cfg.scalar_pj_per_op

    def local_mem(self, energy_cfg, nbytes: int) -> None:
        self.pj["local_mem"] += energy_cfg.local_mem_pj_per_byte * nbytes

    def global_mem(self, energy_cfg, nbytes: int) -> None:
        self.pj["global_mem"] += energy_cfg.global_mem_pj_per_byte * nbytes

    def noc_traffic(self, energy_cfg, nbytes: int, hops: int) -> None:
        self.pj["noc"] += energy_cfg.noc_pj_per_byte_hop * nbytes * hops

    def add_leakage(self, energy_cfg, n_cores_used: int, seconds: float) -> None:
        """Integrate static power over the run (charged once, at the end)."""
        milliwatts = energy_cfg.chip_leakage_mw + energy_cfg.core_leakage_mw * n_cores_used
        self.add("leakage", milliwatts * 1e-3 * seconds * 1e12)

    @property
    def total_pj(self) -> float:
        return sum(self.pj.values())

    @property
    def dynamic_pj(self) -> float:
        return self.total_pj - self.pj["leakage"]

    def to_dict(self) -> dict[str, float]:
        return dict(self.pj)
