"""Mesh network-on-chip and global memory models.

The chip interconnect is a 2D mesh with dimension-ordered (XY) routing.
A message occupies each link on its path in turn: per hop it arbitrates
for the link (FIFO), pays the hop latency plus the serialization time of
its payload, then moves on — a store-and-forward model that is slightly
pessimistic versus wormhole switching but preserves the contention and
backpressure behaviour the paper's synchronized-communication argument
rests on (contrast: MNSIM2.0's instantaneous, infinitely-buffered model,
reproduced in :mod:`repro.baseline`).
"""

from __future__ import annotations

import math
from typing import Generator

from ..config import ArchConfig
from ..sim import Mutex, Resource, Simulator
from .energy import EnergyMeter

__all__ = ["MeshNoc", "GlobalMemory", "xy_route"]

Coord = tuple[int, int]


def xy_route(src: Coord, dst: Coord) -> list[tuple[Coord, Coord]]:
    """Dimension-ordered route: X (columns) first, then Y (rows).

    Returns the list of directed links ((from, to) coordinate pairs).
    """
    links: list[tuple[Coord, Coord]] = []
    r, c = src
    while c != dst[1]:
        step = 1 if dst[1] > c else -1
        links.append(((r, c), (r, c + step)))
        c += step
    while r != dst[0]:
        step = 1 if dst[0] > r else -1
        links.append(((r, c), (r + step, c)))
        r += step
    return links


class MeshNoc:
    """The chip's mesh interconnect."""

    def __init__(self, sim: Simulator, config: ArchConfig,
                 energy: EnergyMeter) -> None:
        self.sim = sim
        self.config = config
        self.energy = energy
        self._links: dict[tuple[Coord, Coord], Mutex] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.byte_hops = 0
        #: traffic per directed link, for hotspot analysis.
        self.link_bytes: dict[tuple[Coord, Coord], int] = {}

    def _link(self, key: tuple[Coord, Coord]) -> Mutex:
        if key not in self._links:
            self._links[key] = Mutex(self.sim, f"link{key}")
        return self._links[key]

    def core_xy(self, core_id: int) -> Coord:
        return self.config.core_xy(core_id)

    def transmit(self, src_core: int, dst_core: int, nbytes: int) -> Generator:
        """Coroutine: move ``nbytes`` from one core to another."""
        yield from self.transmit_xy(self.core_xy(src_core),
                                    self.core_xy(dst_core), nbytes)

    def transmit_xy(self, src: Coord, dst: Coord, nbytes: int) -> Generator:
        noc_cfg = self.config.noc
        path = xy_route(src, dst)
        serialization = math.ceil(nbytes / noc_cfg.link_bytes_per_cycle)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        self.byte_hops += nbytes * len(path)
        self.energy.noc_traffic(self.config.energy, nbytes, len(path))
        if not path:  # same node
            return
        for key in path:
            self.link_bytes[key] = self.link_bytes.get(key, 0) + nbytes
            if noc_cfg.model_contention:
                link = self._link(key)
                yield from link.acquire()
                yield noc_cfg.hop_cycles + serialization
                link.release()
            else:
                yield noc_cfg.hop_cycles + serialization

    def hops(self, src_core: int, dst_core: int) -> int:
        return len(xy_route(self.core_xy(src_core), self.core_xy(dst_core)))

    def hottest_links(self, n: int = 8) -> list[tuple[str, int]]:
        """The ``n`` busiest directed links as ("(r,c)->(r,c)", bytes)."""
        ranked = sorted(self.link_bytes.items(), key=lambda kv: -kv[1])[:n]
        return [(f"{a}->{b}", nbytes) for (a, b), nbytes in ranked]


class GlobalMemory:
    """The chip's global memory behind a bandwidth-limited port."""

    def __init__(self, sim: Simulator, config: ArchConfig, noc: MeshNoc,
                 energy: EnergyMeter) -> None:
        self.sim = sim
        self.config = config
        self.noc = noc
        self.energy = energy
        self._port = Resource(sim, 1, "gmem.port")
        self.bytes_read = 0
        self.bytes_written = 0

    def access(self, core_id: int, nbytes: int, *, write: bool) -> Generator:
        """Coroutine: one LOAD (read) or STORE (write) from a core.

        Cost: mesh traversal to the memory access point, port arbitration,
        access latency and payload serialization at the memory bandwidth.
        """
        chip = self.config.chip
        core = self.noc.core_xy(core_id)
        yield from self.noc.transmit_xy(core, chip.global_memory_xy, nbytes)
        yield from self._port.acquire()
        yield chip.global_memory_latency_cycles + math.ceil(
            nbytes / chip.global_memory_bytes_per_cycle)
        self._port.release()
        self.energy.global_mem(self.config.energy, nbytes)
        if write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes
