"""Mesh network-on-chip and global memory models.

The chip interconnect is a 2D mesh with dimension-ordered (XY) routing.
A message occupies each link on its path in turn: per hop it arbitrates
for the link (FIFO), pays the hop latency plus the serialization time of
its payload, then moves on — a store-and-forward model that is slightly
pessimistic versus wormhole switching but preserves the contention and
backpressure behaviour the paper's synchronized-communication argument
rests on (contrast: MNSIM2.0's instantaneous, infinitely-buffered model,
reproduced in :mod:`repro.baseline`).
"""

from __future__ import annotations

import math
from typing import Generator

from ..config import ArchConfig
from ..sim import Mutex, Resource, Simulator
from .energy import EnergyMeter

__all__ = ["MeshNoc", "GlobalMemory", "xy_route"]

Coord = tuple[int, int]


def xy_route(src: Coord, dst: Coord) -> list[tuple[Coord, Coord]]:
    """Dimension-ordered route: X (columns) first, then Y (rows).

    Returns the list of directed links ((from, to) coordinate pairs).
    """
    links: list[tuple[Coord, Coord]] = []
    r, c = src
    while c != dst[1]:
        step = 1 if dst[1] > c else -1
        links.append(((r, c), (r, c + step)))
        c += step
    while r != dst[0]:
        step = 1 if dst[0] > r else -1
        links.append(((r, c), (r + step, c)))
        r += step
    return links


class MeshNoc:
    """The chip's mesh interconnect.

    Hot-path design: XY routes are pure functions of the (src, dst) pair,
    so they are memoized per coordinate pair (and per core pair in
    :meth:`transmit`); link mutexes take the frame-free
    :meth:`~repro.sim.Mutex.try_acquire` path when the link is free; and
    with ``model_contention=False`` there is nothing to arbitrate per hop,
    so the whole traversal collapses into a single timed wait of the
    path's total latency.
    """

    def __init__(self, sim: Simulator, config: ArchConfig,
                 energy: EnergyMeter) -> None:
        self.sim = sim
        self.config = config
        self.energy = energy
        self._links: dict[tuple[Coord, Coord], Mutex] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.byte_hops = 0
        #: traffic per directed link, for hotspot analysis.
        self.link_bytes: dict[tuple[Coord, Coord], int] = {}
        #: memoized routes: (src, dst) coordinate pair -> link list.
        self._routes: dict[tuple[Coord, Coord], list[tuple[Coord, Coord]]] = {}
        #: memoized core-pair routes: (src_core, dst_core) -> link list.
        self._core_routes: dict[tuple[int, int], list[tuple[Coord, Coord]]] = {}

    def _link(self, key: tuple[Coord, Coord]) -> Mutex:
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = Mutex(self.sim, f"link{key}")
        return link

    def core_xy(self, core_id: int) -> Coord:
        return self.config.core_xy(core_id)

    def _route(self, src: Coord, dst: Coord) -> list[tuple[Coord, Coord]]:
        path = self._routes.get((src, dst))
        if path is None:
            path = self._routes[(src, dst)] = xy_route(src, dst)
        return path

    def transmit(self, src_core: int, dst_core: int, nbytes: int) -> Generator:
        """Coroutine: move ``nbytes`` from one core to another."""
        path = self._core_routes.get((src_core, dst_core))
        if path is None:
            path = self._core_routes[(src_core, dst_core)] = self._route(
                self.core_xy(src_core), self.core_xy(dst_core))
        yield from self._transmit_path(path, nbytes)

    def transmit_xy(self, src: Coord, dst: Coord, nbytes: int) -> Generator:
        yield from self._transmit_path(self._route(src, dst), nbytes)

    def _transmit_path(self, path: list[tuple[Coord, Coord]],
                       nbytes: int) -> Generator:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if not path:
            # Same-node transfer: it still counts as one message of
            # ``nbytes`` (the local delivery really happens), but it
            # traverses zero links — no byte-hops, no link traffic, no
            # NoC energy, no latency (pinned by tests/test_arch_noc.py).
            return
        noc_cfg = self.config.noc
        hop_latency = noc_cfg.hop_cycles \
            + -(-nbytes // noc_cfg.link_bytes_per_cycle)
        self.byte_hops += nbytes * len(path)
        self.energy.noc_traffic(self.config.energy, nbytes, len(path))
        link_bytes = self.link_bytes
        if not noc_cfg.model_contention:
            # Nothing arbitrates per hop, so the traversal is one timed
            # wait for the path's total latency.  Total arrival time is
            # identical to the seed's per-hop yields; only the process's
            # intermediate wake positions disappear (the mode is pinned
            # by tests/test_arch_noc.py::test_no_contention_cycle_count).
            for key in path:
                link_bytes[key] = link_bytes.get(key, 0) + nbytes
            yield hop_latency * len(path)
            return
        for key in path:
            link_bytes[key] = link_bytes.get(key, 0) + nbytes
            link = self._link(key)
            if not link.try_acquire():
                yield from link.acquire()
            yield hop_latency
            link.release()

    def hops(self, src_core: int, dst_core: int) -> int:
        return len(self._route(self.core_xy(src_core), self.core_xy(dst_core)))

    def hottest_links(self, n: int = 8) -> list[tuple[str, int]]:
        """The ``n`` busiest directed links as ("(r,c)->(r,c)", bytes)."""
        ranked = sorted(self.link_bytes.items(), key=lambda kv: -kv[1])[:n]
        return [(f"{a}->{b}", nbytes) for (a, b), nbytes in ranked]


class GlobalMemory:
    """The chip's global memory behind a bandwidth-limited port."""

    def __init__(self, sim: Simulator, config: ArchConfig, noc: MeshNoc,
                 energy: EnergyMeter) -> None:
        self.sim = sim
        self.config = config
        self.noc = noc
        self.energy = energy
        self._port = Resource(sim, 1, "gmem.port")
        self.bytes_read = 0
        self.bytes_written = 0

    def access(self, core_id: int, nbytes: int, *, write: bool) -> Generator:
        """Coroutine: one LOAD (read) or STORE (write) from a core.

        Cost: mesh traversal to the memory access point, port arbitration,
        access latency and payload serialization at the memory bandwidth.
        """
        chip = self.config.chip
        core = self.noc.core_xy(core_id)
        yield from self.noc.transmit_xy(core, chip.global_memory_xy, nbytes)
        if not self._port.try_acquire():
            yield from self._port.acquire()
        yield chip.global_memory_latency_cycles + math.ceil(
            nbytes / chip.global_memory_bytes_per_cycle)
        self._port.release()
        self.energy.global_mem(self.config.energy, nbytes)
        if write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes
