"""Fast-fidelity chip model: batched analytic core execution (ROADMAP 3a).

:func:`~repro.arch.chip.run_program` dispatches here when
``config.sim.fidelity == "fast"``.  The chip keeps the real event kernel,
flow channels, mesh NoC and global memory — everything cross-core stays
event-driven — but each straight-line core's five kernel processes (the
issue loop and four execution units) collapse into ONE walker generator:

* compute instructions (matrix / vector / scalar) advance through pure
  integer recurrences: the front-end pacing, the ROB's in-order
  retirement frontier, the static-blocker waits (PR 2's per-program
  tables) and per-unit serialization that decide a start cycle are all
  arithmetic over known completion times, so a whole straight-line
  compute run costs zero kernel events;
* transfer instructions (SEND / RECV / LOAD / STORE) execute against the
  real flow channels and global memory at their computed start cycle:
  the walker advances simulated time there and runs the same coroutines
  the cycle-accurate transfer unit would.  SENDs drain through real
  per-flow drainer processes, so credit windows, link contention and
  cross-core backpressure behave identically; a SEND's completion enters
  the analytic window as a :class:`~repro.sim.PendingCompletion` that
  later readers resolve against the kernel.

Cores the recurrences cannot cover — branchy programs (no static blocker
table), shared-ADC arbitration, or instruction tracing — fall back to
the cycle-accurate :class:`~repro.arch.core.CoreModel` inside the same
chip, so mixed chips stay exact where they must be.

Accuracy: compute timing is computed retroactively (it never depends on
the walker's real position in simulated time), with one deviation
source: a walker that must wait for an in-flight SEND — as a hazard
blocker or at the retirement frontier — blocks in real simulated time,
which can floor a *later* transfer's start at that wait's end where the
cycle-accurate core would have started it earlier.  Energy charges are
the unit formulas term for term.  ``tools/check_fidelity.py`` bounds the
resulting total-cycle deviation at 2% across the whole model zoo.
"""

from __future__ import annotations

import math
from typing import Generator

from ..isa import (
    N_REGISTERS,
    VECTOR_SPECIAL_OPS,
    MvmInst,
    Program,
    ScalarInst,
    VectorInst,
)
from ..sim import Event, Fifo, PendingCompletion
from .chip import ChipModel, RawResult
from .core import CoreModel
from .rob import analytic_window

__all__ = ["FastChipModel", "FastCore"]


class _AnalyticUnit:
    """Per-unit tallies of a walker core (collection-compatible with the
    cycle-accurate units: ``name`` / ``busy_cycles`` / ``ops`` /
    ``layer_cycles`` are all :class:`~repro.arch.chip.ChipModel` reads)."""

    __slots__ = ("name", "busy_cycles", "ops", "layer_cycles")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_cycles = 0
        self.ops = 0
        self.layer_cycles: dict[str, int] = {}


class _RobShim:
    """What :meth:`ChipModel._diagnose` and :meth:`FastCore.stats` need
    from a walker core's (virtual) ROB."""

    __slots__ = ("entries", "occupancy_peak")

    def __init__(self) -> None:
        self.entries: tuple = ()
        self.occupancy_peak = 0


class FastCore:
    """One straight-line core executed by the analytic walker."""

    def __init__(self, chip: "FastChipModel", program: Program) -> None:
        self.chip = chip
        self.sim = chip.sim
        self.config = chip.config
        self.core_id = program.core
        self.program = program
        self.groups = program.groups
        self.regs = [0] * N_REGISTERS
        rob_size = chip.config.core.rob_size
        self._blockers = program.static_blockers(rob_size)
        assert self._blockers is not None  # factory falls back otherwise
        self._rob_size = rob_size
        self.units = {name: _AnalyticUnit(name)
                      for name in ("matrix", "vector", "transfer", "scalar")}
        self.rob = _RobShim()
        self.halted = Event(chip.sim, f"core{self.core_id}.halted")
        self.halt_time: int | None = None
        self.issued = 0
        self.rob_stall_cycles = 0
        self.hazard_stall_cycles = 0
        self.queue_stall_cycles = 0
        #: maximal straight-line compute runs advanced analytically.
        self.analytic_runs = 0
        #: instructions executed through the event kernel (transfers).
        self.fallback_events = 0
        self._send_queues: dict[int, Fifo] = {}

    def start(self) -> None:
        self.sim.spawn(self._walk(), f"core{self.core_id}.walk")

    # -- kernel-side send path ------------------------------------------------

    def _send_queue(self, flow_id: int) -> Fifo:
        queue = self._send_queues.get(flow_id)
        if queue is None:
            queue = self._send_queues[flow_id] = Fifo(
                self.sim, None, f"core{self.core_id}.sendq{flow_id}")
            self.sim.spawn(self._flow_drainer(flow_id, queue),
                           f"core{self.core_id}.drain{flow_id}")
        return queue

    def _flow_drainer(self, flow_id: int, queue: Fifo) -> Generator:
        """Cycle mode's per-flow virtual output channel, resolving a
        :class:`PendingCompletion` instead of a ROB entry."""
        sim = self.sim
        channel = self.chip.flow(flow_id)
        transfer = self.units["transfer"]
        layers = transfer.layer_cycles
        while True:
            ok, item = queue.try_get()
            if not ok:
                item = yield from queue.get()
            pending, issued_at, inst = item
            yield from channel.send(inst.bytes)
            now = sim.now
            elapsed = now - issued_at
            transfer.busy_cycles += elapsed
            layer = inst.layer
            layers[layer] = layers.get(layer, 0) + elapsed
            pending.resolve(now)

    # -- the walker -----------------------------------------------------------

    def _walk(self) -> Generator:
        """Advance the whole program: compute runs analytically,
        transfers in real simulated time.

        The start-cycle recurrences replay the cycle-accurate core
        exactly (front-end: 1 cycle per ``fetch_width`` after the
        decode+dispatch fill, stalled to the retirement frontier when
        the ROB is full; units: serialized per unit — the matrix unit
        frees after 1 issue cycle, children overlap — floored by the
        oldest-blocker completion max).  Latency and energy arithmetic
        mirrors the unit loops / :func:`repro.arch.units.unit_latency`
        term for term; it is inlined here because this loop runs once
        per instruction.
        """
        sim = self.sim
        chip = self.chip
        cfg = self.config
        core_cfg = cfg.core
        blockers_tab = self._blockers
        rob_size = self._rob_size
        window = analytic_window(rob_size)
        ring, mask = window.ring, window.mask

        fetch_width = core_cfg.fetch_width
        single_issue = fetch_width == 1
        read_bw = core_cfg.local_memory_read_bytes_per_cycle
        write_bw = core_cfg.local_memory_write_bytes_per_cycle
        lanes = core_cfg.vector_lanes
        v_issue = core_cfg.vector_issue_cycles
        special_cycles = core_cfg.vector_special_cycles_per_element
        scalar_latency = max(1, core_cfg.scalar_cycles)
        mvm_cycles = cfg.crossbar.mvm_cycles()
        act_bytes = cfg.compiler.activation_bytes
        dac_phases = cfg.crossbar.dac_phases
        groups = self.groups.groups if self.groups is not None else {}
        special = VECTOR_SPECIAL_OPS

        e = cfg.energy
        e_xbar = e.xbar_read_pj_per_cell
        e_dac = e.dac_pj_per_conversion
        e_adc = e.adc_pj_per_sample
        e_vector = e.vector_pj_per_element
        e_special = e.vector_special_pj_per_element
        e_mac = e.vector_mac_pj
        e_lmem = e.local_mem_pj_per_byte
        energy = chip.energy
        pj = energy.pj

        matrix = self.units["matrix"]
        vector = self.units["vector"]
        transfer = self.units["transfer"]
        scalar = self.units["scalar"]
        m_layers = matrix.layer_cycles
        v_layers = vector.layer_cycles
        s_layers = scalar.layer_cycles
        t_layers = transfer.layer_cycles

        fill = core_cfg.decode_cycles + core_cfg.dispatch_cycles
        if fill:
            yield fill
        vt = sim.now  # front-end virtual clock
        issued = 0
        matrix_free = 0
        vector_free = 0
        scalar_free = 0
        transfer_free = 0
        rob_stall = 0
        in_run = False
        n_runs = 0
        n_fallback = 0
        last_index = -1
        outstanding: list[PendingCompletion] = []

        for inst in self.program.instructions:
            tinst = type(inst)
            if tinst is ScalarInst and inst.is_control:
                break  # straight-line programs: a (possibly early) HALT
            index = inst.index
            last_index = index
            # ROB-full: the front-end runs at most rob_size entries
            # ahead of the in-order retirement frontier.
            bound = index - rob_size
            if bound >= 0 and window._retired < bound:
                pending = window.advance_frontier(bound)
                while pending is not None:
                    yield pending.event()
                    pending = window.advance_frontier(bound)
            if bound >= 0:
                frontier = window.retire_frontier
                if frontier > vt:
                    rob_stall += frontier - vt
                    vt = frontier
            alloc = vt
            issued += 1
            if single_issue or issued % fetch_width == 0:
                vt += 1
            # Oldest-blocker wait: in cycle mode the unit waits blocker
            # by blocker; the start cycle it lands on is the completion
            # max over the static predecessor set.
            bmax = 0
            for j in blockers_tab[index]:
                done = ring[j & mask]
                if type(done) is not int:
                    if done.done_at is None:
                        yield done.event()  # real wait on an in-flight SEND
                    done = done.done_at
                    ring[j & mask] = done
                if done > bmax:
                    bmax = done

            if tinst is MvmInst:
                start = alloc
                if matrix_free > start:
                    start = matrix_free
                if bmax > start:
                    start = bmax
                matrix_free = start + 1  # 1 MVM issue/cycle, children overlap
                count = inst.count
                group = groups[inst.group]
                in_bytes = count * group.rows * act_bytes
                out_bytes = inst.dst_bytes
                stream = -(-in_bytes // read_bw) + -(-out_bytes // write_bw)
                latency = count * mvm_cycles
                if stream > latency:
                    latency = stream
                ring[index & mask] = start + latency
                rows = group.rows
                pj["xbar"] += e_xbar * rows * group.cols * count
                pj["dac"] += e_dac * rows * dac_phases * count
                pj["adc"] += e_adc * group.cols * dac_phases * count
                pj["local_mem"] += e_lmem * (in_bytes + out_bytes)
                matrix.busy_cycles += latency
                matrix.ops += 1
                layer = inst.layer
                m_layers[layer] = m_layers.get(layer, 0) + latency
                in_run = True
                continue

            if tinst is VectorInst:
                start = alloc
                if vector_free > start:
                    start = vector_free
                if bmax > start:
                    start = bmax
                length = inst.length
                if inst.n_sources == 2:
                    read_bytes = inst.src_bytes + (inst.src2_bytes
                                                   or inst.src_bytes)
                else:
                    read_bytes = inst.src_bytes
                op = inst.op
                if op == "VMATMUL":
                    e_elem = e_mac
                    alu = -(-length // lanes)
                elif op in special:
                    e_elem = e_special
                    alu = -(-length * special_cycles // lanes)
                else:
                    e_elem = e_vector
                    alu = -(-length // lanes)
                stream = max(-(-read_bytes // read_bw),
                             -(-inst.dst_bytes // write_bw))
                latency = v_issue + (alu if alu > stream else stream)
                vector_free = start + latency
                ring[index & mask] = vector_free
                pj["vector"] += e_elem * length
                pj["local_mem"] += e_lmem * (read_bytes + inst.dst_bytes)
                vector.busy_cycles += latency
                vector.ops += 1
                layer = inst.layer
                v_layers[layer] = v_layers.get(layer, 0) + latency
                in_run = True
                continue

            if tinst is ScalarInst:
                start = alloc
                if scalar_free > start:
                    start = scalar_free
                if bmax > start:
                    start = bmax
                scalar_free = start + scalar_latency
                ring[index & mask] = scalar_free
                self.execute_scalar(inst)
                energy.scalar_op(e)
                scalar.busy_cycles += scalar_latency
                scalar.ops += 1
                layer = inst.layer
                s_layers[layer] = s_layers.get(layer, 0) + scalar_latency
                in_run = True
                continue

            # TransferInst: the kernel boundary.  Advance real simulated
            # time to the computed start and run the real coroutines.
            if in_run:
                n_runs += 1
                in_run = False
            n_fallback += 1
            start = alloc
            if transfer_free > start:
                start = transfer_free
            if bmax > start:
                start = bmax
            now = sim.now
            if start < now:  # real time cannot rewind (see module docs)
                start = now
            op = inst.op
            nbytes = inst.bytes
            if op == "SEND":
                busy_until = start + math.ceil(nbytes / read_bw)
                if busy_until > now:
                    yield busy_until - now
                energy.local_mem(e, nbytes)
                transfer.ops += 1
                pending = PendingCompletion(
                    sim, f"core{self.core_id}.send{index}")
                ring[index & mask] = pending
                outstanding.append(pending)
                ok = self._send_queue(inst.flow).try_put(
                    (pending, sim.now, inst))
                assert ok  # send queues are unbounded
                transfer_free = busy_until
                continue
            if start > now:
                yield start - now
            if op == "RECV":
                yield from chip.flow(inst.flow).recv(inst.seq)
                yield math.ceil(nbytes / write_bw)  # fill local memory
            elif op == "LOAD":
                yield from chip.gmem.access(self.core_id, nbytes,
                                            write=False)
                yield math.ceil(nbytes / write_bw)
            else:  # STORE
                yield math.ceil(nbytes / read_bw)
                yield from chip.gmem.access(self.core_id, nbytes,
                                            write=True)
            energy.local_mem(e, nbytes)
            done = sim.now
            ring[index & mask] = done
            elapsed = done - start
            transfer.busy_cycles += elapsed
            transfer.ops += 1
            layer = inst.layer
            t_layers[layer] = t_layers.get(layer, 0) + elapsed
            transfer_free = done

        if in_run:
            n_runs += 1
        # Drain: resolve in-flight sends, retire everything, halt at the
        # later of the front-end clock and the last retirement.
        for pending in outstanding:
            if pending.done_at is None:
                yield pending.event()
        pending = window.advance_frontier(last_index)
        while pending is not None:  # pragma: no cover - resolved above
            yield pending.event()
            pending = window.advance_frontier(last_index)
        halt_t = vt
        if window.retire_frontier > halt_t:
            halt_t = window.retire_frontier
        now = sim.now
        if halt_t > now:
            yield halt_t - now
        self.issued = issued
        self.rob_stall_cycles = rob_stall
        self.analytic_runs = n_runs
        self.fallback_events = n_fallback
        self.rob.occupancy_peak = min(issued, rob_size)
        self.halt_time = sim.now
        self.halted.notify()

    # -- scalar ALU -----------------------------------------------------------

    def execute_scalar(self, inst: ScalarInst) -> None:
        """Architectural effect of a scalar ALU op (program order — the
        same order the in-order scalar unit completes them in)."""
        regs = self.regs
        if inst.op == "LI":
            regs[inst.rd] = inst.imm
        elif inst.op == "SADD":
            regs[inst.rd] = regs[inst.rs1] + regs[inst.rs2]
        elif inst.op == "SSUB":
            regs[inst.rd] = regs[inst.rs1] - regs[inst.rs2]
        elif inst.op == "SMUL":
            regs[inst.rd] = regs[inst.rs1] * regs[inst.rs2]
        elif inst.op == "SAND":
            regs[inst.rd] = regs[inst.rs1] & regs[inst.rs2]
        elif inst.op == "SOR":
            regs[inst.rd] = regs[inst.rs1] | regs[inst.rs2]
        # NOP: no architectural effect.

    # -- reporting ------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "issued": self.issued,
            "halt_time": self.halt_time,
            "rob_stall_cycles": self.rob_stall_cycles,
            "hazard_stall_cycles": self.hazard_stall_cycles,
            "queue_stall_cycles": self.queue_stall_cycles,
            "rob_peak": self.rob.occupancy_peak,
            "unit_busy": {name: unit.busy_cycles
                          for name, unit in self.units.items()},
            "unit_ops": {name: unit.ops for name, unit in self.units.items()},
        }


class FastChipModel(ChipModel):
    """The fast-fidelity chip: walker cores where the analytic
    recurrences apply, cycle-accurate cores everywhere else."""

    def _make_core(self, program: Program):
        cfg = self.config
        if cfg.sim.trace or cfg.core.shared_adc_domains:
            # Tracing wants per-instruction events; shared-ADC domains
            # arbitrate a Resource the recurrences cannot fold.
            return CoreModel(self, program)
        if not program.sealed \
                or program.static_blockers(cfg.core.rob_size) is None:
            return CoreModel(self, program)  # branchy: runtime scoreboard
        return FastCore(self, program)

    def _collect(self) -> RawResult:
        raw = super()._collect()
        runs = 0
        fallback = 0
        for core in self.cores.values():
            if type(core) is FastCore:
                runs += core.analytic_runs
                fallback += core.fallback_events
            else:
                fallback += core.issued
        raw.meta["fidelity"] = "fast"
        raw.meta["analytic_runs"] = runs
        raw.meta["fallback_events"] = fallback
        return raw
