"""Core model: fetch / decode / dispatch front-end, ROB, execution units.

The front-end issues the core's instruction stream in program order:

1. fetch+decode (``fetch_width`` instructions per cycle),
2. stall while the ROB is full (the ROB *is* the lookahead window — the
   knob Fig. 4 sweeps),
3. allocate a ROB entry and enqueue to the target execution unit.

Hazards are enforced at unit issue, not dispatch: each unit holds an
instruction until no *older* in-flight entry conflicts with it (RAW/WAR/
WAW on registers or local memory, structural hazard on crossbar groups —
see :meth:`~repro.arch.rob.ReorderBuffer.conflicts_before`), so
independent younger instructions in other units keep flowing.  This is
the paper's "dispatch unit which can identify the conflicts between
instructions" working with the ROB to expose hardware parallelism.

Branches resolve at dispatch (sources are hazard-checked first, so the
register file is architecturally current); ``HALT`` stops issue and the
core reports halted once its ROB drains.  Compiled programs are
straight-line, but the branch path makes the core a complete interpreter
for the ISA's scalar control flow (exercised by the ISA-level tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from ..isa import N_REGISTERS, Program, ScalarInst
from ..sim import Event
from .rob import ReorderBuffer
from .units import MatrixUnit, ScalarUnit, TransferUnit, VectorUnit

if TYPE_CHECKING:  # pragma: no cover
    from .chip import ChipModel

__all__ = ["CoreModel"]


class CoreModel:
    """One PIM core executing its compiled program."""

    def __init__(self, chip: "ChipModel", program: Program) -> None:
        self.chip = chip
        self.sim = chip.sim
        self.config = chip.config
        self.core_id = program.core
        self.program = program
        self.groups = program.groups
        self.regs = [0] * N_REGISTERS
        rob_size = chip.config.core.rob_size
        # Straight-line programs carry a static hazard table (cached on
        # the sealed program, amortized across sweeps/repeat runs);
        # branchy programs fall back to the runtime scoreboard.
        static = program.static_blockers(rob_size) if program.sealed else None
        self.rob = ReorderBuffer(chip.sim, rob_size,
                                 f"core{self.core_id}.rob",
                                 static_blockers=static)
        self.units = {
            "matrix": MatrixUnit(self),
            "vector": VectorUnit(self),
            "transfer": TransferUnit(self),
            "scalar": ScalarUnit(self),
        }
        self.halted = Event(chip.sim, f"core{self.core_id}.halted")
        self.halt_time: int | None = None
        self.issued = 0
        self.rob_stall_cycles = 0
        self.hazard_stall_cycles = 0
        self.queue_stall_cycles = 0

    def start(self) -> None:
        for unit in self.units.values():
            unit.start()
        self.sim.spawn(self._issue(), f"core{self.core_id}.issue")

    # -- front-end ---------------------------------------------------------------

    def _issue(self) -> Generator:
        cfg = self.config.core
        fill = cfg.decode_cycles + cfg.dispatch_cycles
        if fill:
            yield fill
        insts = self.program.instructions
        n_insts = len(insts)
        rob = self.rob
        rob_entries = rob.entries
        rob_size = rob.size
        sim = self.sim
        # Unit queues are unbounded (see _UnitBase), so a put is exactly
        # a deque append plus the Fifo's edge-triggered, waiter-gated
        # empty->nonempty wake-up — inlined here because this loop runs
        # once per instruction.
        queues = {unit: (u.queue._items, u.queue._not_empty)
                  for unit, u in self.units.items()}
        fetch_width = cfg.fetch_width
        single_issue = fetch_width == 1
        pc = 0
        while 0 <= pc < n_insts:
            inst = insts[pc]

            if isinstance(inst, ScalarInst) and inst.is_control:
                if inst.op == "HALT":
                    break
                # Branch: wait for in-flight writers of its sources (the
                # scoreboard names the oldest, so dispatch blocks on that
                # entry's completion event), then resolve against the
                # architectural register file.
                t0 = sim.now
                blocker = rob.oldest_conflict_inst(inst)
                while blocker is not None:
                    yield rob.ready_event(blocker)
                    blocker = rob.oldest_conflict_inst(inst)
                self.hazard_stall_cycles += sim.now - t0
                pc = self._branch_target(inst, pc)
                yield 1  # redirect bubble
                continue

            if len(rob_entries) >= rob_size:
                t0 = sim.now
                while len(rob_entries) >= rob_size:
                    yield rob.slot_freed
                self.rob_stall_cycles += sim.now - t0

            entry = rob.allocate(inst)
            items, not_empty = queues[inst.unit]
            items.append(entry)
            if len(items) == 1 and not_empty._waiters:
                not_empty.notify()

            self.issued += 1
            pc += 1
            if single_issue or self.issued % fetch_width == 0:
                yield 1

        while rob.entries:
            yield rob.drained
        self.halt_time = self.sim.now
        self.halted.notify()

    def _branch_target(self, inst: ScalarInst, pc: int) -> int:
        if inst.op == "SJMP":
            return inst.target
        taken = (self.regs[inst.rs1] == self.regs[inst.rs2])
        if inst.op == "SBNE":
            taken = not taken
        return inst.target if taken else pc + 1

    # -- scalar ALU ------------------------------------------------------------

    def execute_scalar(self, inst: ScalarInst) -> None:
        """Architectural effect of a scalar instruction (called by the
        scalar unit at completion)."""
        if inst.op == "LI":
            self.regs[inst.rd] = inst.imm
        elif inst.op == "SADD":
            self.regs[inst.rd] = self.regs[inst.rs1] + self.regs[inst.rs2]
        elif inst.op == "SSUB":
            self.regs[inst.rd] = self.regs[inst.rs1] - self.regs[inst.rs2]
        elif inst.op == "SMUL":
            self.regs[inst.rd] = self.regs[inst.rs1] * self.regs[inst.rs2]
        elif inst.op == "SAND":
            self.regs[inst.rd] = self.regs[inst.rs1] & self.regs[inst.rs2]
        elif inst.op == "SOR":
            self.regs[inst.rd] = self.regs[inst.rs1] | self.regs[inst.rs2]
        # NOP / HALT: no architectural effect.

    # -- reporting ----------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "issued": self.issued,
            "halt_time": self.halt_time,
            "rob_stall_cycles": self.rob_stall_cycles,
            "hazard_stall_cycles": self.hazard_stall_cycles,
            "queue_stall_cycles": self.queue_stall_cycles,
            "rob_peak": self.rob.occupancy_peak,
            "unit_busy": {name: unit.busy_cycles
                          for name, unit in self.units.items()},
            "unit_ops": {name: unit.ops for name, unit in self.units.items()},
        }
