"""Cycle-accurate architecture models: cores, NoC, memory, energy."""

from .chip import ChipModel, RawResult, run_program
from .core import CoreModel
from .energy import CATEGORIES, EnergyMeter
from .flows import FlowChannel
from .noc import GlobalMemory, MeshNoc, xy_route
from .rob import ReorderBuffer, RobEntry
from .units import MatrixUnit, ScalarUnit, TransferUnit, VectorUnit

__all__ = [
    "ChipModel",
    "RawResult",
    "run_program",
    "CoreModel",
    "ReorderBuffer",
    "RobEntry",
    "MatrixUnit",
    "VectorUnit",
    "TransferUnit",
    "ScalarUnit",
    "MeshNoc",
    "GlobalMemory",
    "xy_route",
    "FlowChannel",
    "EnergyMeter",
    "CATEGORIES",
]
