"""Re-order buffer.

The ROB bounds the number of instructions a core may have in flight
(Fig. 2b).  Dispatch allocates an entry in program order; execution units
mark entries done out of order; retirement frees entries strictly in
order.  The dispatch stage consults :meth:`has_conflict` so an instruction
never enters an execution unit while an older in-flight instruction
conflicts with it — including the crossbar-group *structure hazard* the
paper uses to explain the ROB-size plateau of Fig. 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..isa import Instruction
from ..sim import Event, Simulator, TimeWeighted

__all__ = ["RobEntry", "ReorderBuffer"]


@dataclass
class RobEntry:
    inst: Instruction
    done: bool = False
    dispatched_at: int = 0
    completed_at: int = field(default=-1)


class ReorderBuffer:
    """In-order allocate / out-of-order complete / in-order retire."""

    def __init__(self, sim: Simulator, size: int, name: str = "rob") -> None:
        if size < 1:
            raise ValueError(f"ROB size must be >= 1, got {size}")
        self.sim = sim
        self.size = size
        self.name = name
        self.entries: deque[RobEntry] = deque()
        self.slot_freed = Event(sim, f"{name}.slot_freed")
        self.completed = Event(sim, f"{name}.completed")
        self.drained = Event(sim, f"{name}.drained")
        self.retired_count = 0
        self.occupancy = TimeWeighted(f"{name}.occupancy")

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.size

    @property
    def empty(self) -> bool:
        return not self.entries

    def has_conflict(self, inst: Instruction) -> bool:
        """Does ``inst`` conflict with any in-flight instruction?  Used by
        the dispatch stage for instructions executed outside the ROB
        (branch resolution)."""
        return any(not e.done and inst.conflicts_with(e.inst)
                   for e in self.entries)

    def conflicts_before(self, entry: RobEntry) -> bool:
        """Does ``entry`` conflict with any *older* in-flight entry?

        Execution units call this before issuing: an instruction waits for
        program-order-earlier writers/readers of its operands and for the
        crossbar group it needs, but instructions behind it in other units
        keep flowing — the out-of-order overlap the ROB window buys.
        """
        for older in self.entries:
            if older is entry:
                return False
            if not older.done and entry.inst.conflicts_with(older.inst):
                return True
        return False  # pragma: no cover - entry always in the ROB

    def allocate(self, inst: Instruction) -> RobEntry:
        if self.full:
            raise RuntimeError(f"{self.name}: allocate on full ROB")
        entry = RobEntry(inst=inst, dispatched_at=self.sim.now)
        self.entries.append(entry)
        self.occupancy.update(self.sim.now, len(self.entries))
        return entry

    def mark_done(self, entry: RobEntry) -> None:
        if entry.done:
            raise RuntimeError(f"{self.name}: double completion of {entry.inst!r}")
        entry.done = True
        entry.completed_at = self.sim.now
        self.completed.notify()
        self._retire()

    def _retire(self) -> None:
        freed = False
        while self.entries and self.entries[0].done:
            self.entries.popleft()
            self.retired_count += 1
            freed = True
        if freed:
            self.occupancy.update(self.sim.now, len(self.entries))
            self.slot_freed.notify()
            if not self.entries:
                self.drained.notify()
