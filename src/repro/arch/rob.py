"""Re-order buffer with an incremental hazard scoreboard.

The ROB bounds the number of instructions a core may have in flight
(Fig. 2b).  Dispatch allocates an entry in program order; execution units
mark entries done out of order; retirement frees entries strictly in
order.  The dispatch stage consults :meth:`has_conflict` so an instruction
never enters an execution unit while an older in-flight instruction
conflicts with it — including the crossbar-group *structure hazard* the
paper uses to explain the ROB-size plateau of Fig. 4.

Hazard queries are answered by a *scoreboard* maintained incrementally at
:meth:`allocate` and :meth:`mark_done` instead of the seed's O(window)
re-scan of the whole ROB on every probe:

* registers and crossbar groups are footprint-indexed — one bucket of
  in-flight entries per register (readers and writers separately) and per
  group, so a probe touches only the buckets its own footprint names;
* local-memory ranges live in two flat in-flight maps (readers/writers),
  insertion-ordered by allocation, probed with the precise interval
  overlap — only entries that touch memory at all are visited, and the
  scan stops at the first entry younger than the probe.

All buckets and maps are insertion-ordered dicts, i.e. ordered by
allocation sequence (= program order), so the first member is always the
oldest and scans can cut off early.  Queries return the *oldest*
conflicting entry, so a blocked unit can wait on exactly the entry that
blocks it (via :meth:`ready_event`) and re-probe only when that entry
completes, rather than being woken by every completion in the window.
The answers are bit-identical to the seed's
:meth:`Instruction.conflicts_with` scan (pinned by the randomized oracle
in ``tests/test_rob_scoreboard.py`` and the ``tests/golden/`` traces).

This module is on the per-instruction hot path of every simulation, so
the scoreboard insert/remove/probe bodies are inlined rather than
factored (mirroring the kernel's own style); ``RobEntry`` is a
``__slots__`` class for the same reason.
"""

from __future__ import annotations

from collections import deque

from ..isa import Instruction
from ..sim import AnalyticWindow, Event, Simulator

__all__ = ["RobEntry", "ReorderBuffer", "analytic_window"]


def analytic_window(size: int) -> AnalyticWindow:
    """The analytic twin of a ``size``-entry ROB in table mode.

    Ring sizing and index masking match :class:`ReorderBuffer`'s static
    ring exactly (``2*size - 1`` covered indices), so the fast-fidelity
    walker's blocker lookups hit the same slots the cycle-accurate
    scoreboard would, with completion *times* in place of entries.
    """
    return AnalyticWindow(size)


class RobEntry:
    """One in-flight instruction: identity-keyed, slotted (hot path)."""

    __slots__ = ("inst", "fp", "done", "dispatched_at", "completed_at",
                 "seq", "done_event")

    def __init__(self, inst: Instruction, fp: tuple = None,
                 dispatched_at: int = 0, seq: int = 0) -> None:
        self.inst = inst
        #: the instruction's cached dependence footprint ``(groups,
        #: reads_regs, writes_regs, reads_mem, writes_mem)``.
        self.fp = fp if fp is not None else _footprint(inst)
        self.done = False
        self.dispatched_at = dispatched_at
        self.completed_at = -1
        #: allocation sequence number; program order within the core.
        self.seq = seq
        #: lazily-created event notified at completion (``ready_event``).
        self.done_event: Event | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "in-flight"
        return f"RobEntry({self.inst!r}, {state}, seq={self.seq})"


def _footprint(inst: Instruction) -> tuple:
    try:
        return inst._fp
    except AttributeError:
        return inst._footprint()


class ReorderBuffer:
    """In-order allocate / out-of-order complete / in-order retire.

    ``static_blockers`` (from :meth:`repro.isa.Program.static_blockers`)
    switches the hazard engine to table mode: for straight-line programs
    the conflicting predecessors of every instruction are known up front,
    so a hazard probe is a couple of done-flag checks on a ring of recent
    entries and the runtime scoreboard is skipped entirely.  Both engines
    answer identically (pinned by ``tests/test_rob_scoreboard.py``).
    """

    def __init__(self, sim: Simulator, size: int, name: str = "rob", *,
                 static_blockers: tuple | None = None) -> None:
        if size < 1:
            raise ValueError(f"ROB size must be >= 1, got {size}")
        self.sim = sim
        self.size = size
        self.name = name
        self.entries: deque[RobEntry] = deque()
        self.slot_freed = Event(sim, f"{name}.slot_freed")
        self.completed = Event(sim, f"{name}.completed")
        self.drained = Event(sim, f"{name}.drained")
        self.retired_count = 0
        #: peak in-flight occupancy (the only occupancy statistic reports
        #: consume; tracked as a bare int to keep allocate/retire lean).
        self.occupancy_peak = 0
        self._seq = 0
        # -- static hazard table (straight-line programs) --------------------
        self._static = static_blockers
        if static_blockers is not None:
            # While entry i awaits its blockers (indices >= i-size+1),
            # instructions through i+size-1 may allocate, so slots must
            # cover 2*size-1 consecutive indices without collision.
            ring_size = 1 << (2 * size - 1).bit_length()
            self._ring_mask = ring_size - 1
            #: recent entries by instruction index (in-flight ⊆ ring).
            self._ring: list[RobEntry | None] = [None] * ring_size
        # -- scoreboard: in-flight readers/writers, oldest first ------------
        #: crossbar group -> ordered set of in-flight entries using it.
        self._group_users: dict[int, dict[RobEntry, None]] = {}
        #: register -> ordered set of in-flight readers / writers.
        self._reg_readers: dict[int, dict[RobEntry, None]] = {}
        self._reg_writers: dict[int, dict[RobEntry, None]] = {}
        #: in-flight entries touching local memory -> their byte ranges.
        self._mem_readers: dict[RobEntry, tuple] = {}
        self._mem_writers: dict[RobEntry, tuple] = {}

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.size

    @property
    def empty(self) -> bool:
        return not self.entries

    # -- hazard queries -------------------------------------------------------

    def _oldest_conflicting(self, fp: tuple,
                            before_seq: int) -> RobEntry | None:
        """Oldest in-flight entry with ``seq < before_seq`` whose footprint
        conflicts with ``fp``; ``None`` when none does.  Mirrors the
        dependence rules of :meth:`Instruction.conflicts_with` exactly
        (RAW/WAR/WAW through registers and local memory, structural on
        groups)."""
        groups, reads_r, writes_r, reads_m, writes_m = fp
        best: RobEntry | None = None
        best_seq = before_seq
        # Structural: the oldest in-flight user of one of my groups.  A
        # bucket's first member is its oldest, so one probe per bucket.
        for g in groups:
            bucket = self._group_users.get(g)
            if bucket:
                e = next(iter(bucket))
                if e.seq < best_seq:
                    best, best_seq = e, e.seq
        if reads_r or writes_r:
            # RAW: an older writer of a register I read.
            for r in reads_r:
                bucket = self._reg_writers.get(r)
                if bucket:
                    e = next(iter(bucket))
                    if e.seq < best_seq:
                        best, best_seq = e, e.seq
            # WAW + WAR: an older writer or reader of a register I write.
            for r in writes_r:
                bucket = self._reg_writers.get(r)
                if bucket:
                    e = next(iter(bucket))
                    if e.seq < best_seq:
                        best, best_seq = e, e.seq
                bucket = self._reg_readers.get(r)
                if bucket:
                    e = next(iter(bucket))
                    if e.seq < best_seq:
                        best, best_seq = e, e.seq
        # Memory scans: insertion order == program order, so each scan
        # stops at the first entry not older than the current best.  The
        # range tuples are tiny (one or two intervals), so the precise
        # overlap test is inlined (the triple break/else ladders) rather
        # than paying a function call per candidate.
        if reads_m and self._mem_writers:
            # RAW: an older writer overlapping a range I read.
            for e, ranges in self._mem_writers.items():
                if e.seq >= best_seq:
                    break
                for lo, hi in reads_m:
                    for olo, ohi in ranges:
                        if lo < ohi and olo < hi:
                            best, best_seq = e, e.seq
                            break
                    else:
                        continue
                    break
                else:
                    continue
                break
        if writes_m:
            # WAW: an older writer overlapping a range I write.
            for e, ranges in self._mem_writers.items():
                if e.seq >= best_seq:
                    break
                for lo, hi in writes_m:
                    for olo, ohi in ranges:
                        if lo < ohi and olo < hi:
                            best, best_seq = e, e.seq
                            break
                    else:
                        continue
                    break
                else:
                    continue
                break
            # WAR: an older reader of a range I write.
            for e, ranges in self._mem_readers.items():
                if e.seq >= best_seq:
                    break
                for lo, hi in writes_m:
                    for olo, ohi in ranges:
                        if lo < ohi and olo < hi:
                            best, best_seq = e, e.seq
                            break
                    else:
                        continue
                    break
                else:
                    continue
                break
        return best

    def oldest_conflict(self, entry: RobEntry) -> RobEntry | None:
        """The oldest in-flight entry older than ``entry`` that conflicts
        with it, or ``None``.

        Execution units call this before issuing: an instruction waits for
        program-order-earlier writers/readers of its operands and for the
        crossbar group it needs, but instructions behind it in other units
        keep flowing — the out-of-order overlap the ROB window buys.  The
        returned entry is what the unit should wait on (``ready_event``).

        In table mode the static blocker set is fixed at allocation and
        only done-flags change, so the oldest *undone* static blocker is
        exactly what the dynamic scoreboard would return.
        """
        table = self._static
        if table is None:
            return self._oldest_conflicting(entry.fp, entry.seq)
        ring = self._ring
        mask = self._ring_mask
        for j in table[entry.inst.index]:
            blocker = ring[j & mask]
            if not blocker.done:
                return blocker
        return None

    def oldest_conflict_inst(self, inst: Instruction) -> RobEntry | None:
        """Oldest in-flight entry conflicting with a not-yet-allocated
        instruction (branch resolution at dispatch).  Table mode implies a
        branch-free program, so this only runs under the scoreboard — the
        table-mode fallback below serves external callers."""
        if self._static is None:
            return self._oldest_conflicting(_footprint(inst), self._seq + 1)
        for e in self.entries:
            if not e.done and inst.conflicts_with(e.inst):
                return e
        return None

    def conflicts_before(self, entry: RobEntry) -> bool:
        """Does ``entry`` conflict with any *older* in-flight entry?"""
        return self.oldest_conflict(entry) is not None

    def has_conflict(self, inst: Instruction) -> bool:
        """Does ``inst`` conflict with any in-flight instruction?  Used by
        the dispatch stage for instructions executed outside the ROB
        (branch resolution)."""
        return self.oldest_conflict_inst(inst) is not None

    # -- lifecycle ------------------------------------------------------------

    def ready_event(self, entry: RobEntry) -> Event:
        """The event notified when ``entry`` completes (lazily created, so
        entries that never block anyone cost no Event object)."""
        event = entry.done_event
        if event is None:
            event = entry.done_event = Event(self.sim,
                                             f"{self.name}.e{entry.seq}.done")
        return event

    def allocate(self, inst: Instruction) -> RobEntry:
        entries = self.entries
        if len(entries) >= self.size:
            raise RuntimeError(f"{self.name}: allocate on full ROB")
        self._seq = seq = self._seq + 1
        try:
            fp = inst._fp
        except AttributeError:
            fp = inst._footprint()
        entry = RobEntry(inst, fp, self.sim.now, seq)
        entries.append(entry)
        if self._static is not None:
            # Table mode: in-flight lookups go through the index ring.
            self._ring[inst.index & self._ring_mask] = entry
        else:
            # Scoreboard insert (inlined; see module docstring).
            groups, reads_r, writes_r, reads_m, writes_m = fp
            for g in groups:
                bucket = self._group_users.get(g)
                if bucket is None:
                    bucket = self._group_users[g] = {}
                bucket[entry] = None
            for r in reads_r:
                bucket = self._reg_readers.get(r)
                if bucket is None:
                    bucket = self._reg_readers[r] = {}
                bucket[entry] = None
            for r in writes_r:
                bucket = self._reg_writers.get(r)
                if bucket is None:
                    bucket = self._reg_writers[r] = {}
                bucket[entry] = None
            if reads_m:
                self._mem_readers[entry] = reads_m
            if writes_m:
                self._mem_writers[entry] = writes_m
        n = len(entries)
        if n > self.occupancy_peak:
            self.occupancy_peak = n
        return entry

    def mark_done(self, entry: RobEntry) -> None:
        if entry.done:
            raise RuntimeError(f"{self.name}: double completion of {entry.inst!r}")
        entry.done = True
        entry.completed_at = self.sim.now
        if self._static is None:
            # Scoreboard remove (inlined).
            groups, reads_r, writes_r, reads_m, writes_m = entry.fp
            for g in groups:
                del self._group_users[g][entry]
            for r in reads_r:
                del self._reg_readers[r][entry]
            for r in writes_r:
                del self._reg_writers[r][entry]
            if reads_m:
                del self._mem_readers[entry]
            if writes_m:
                del self._mem_writers[entry]
        if entry.done_event is not None:
            entry.done_event.notify()
        # ``completed`` is notified only when observed: nothing in the
        # model layer polls it any more (units wait per-entry), but it
        # remains the ROB's public completion signal.
        if self.completed._waiters:
            self.completed.notify()
        # Retire (inlined): free in-order-completed head entries.  The
        # deque still holds ``entry``, so it is never empty here.
        entries = self.entries
        if entries[0].done:
            retired = 0
            while entries and entries[0].done:
                entries.popleft()
                retired += 1
            self.retired_count += retired
            if self.slot_freed._waiters:
                self.slot_freed.notify()
            if not entries and self.drained._waiters:
                self.drained.notify()
