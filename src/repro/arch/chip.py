"""Chip model: cores + mesh NoC + global memory, and the run loop.

:func:`run_program` is the simulator entry point: it instantiates the
hardware described by the architecture configuration, loads the compiled
chip program, runs the event kernel to completion and returns a
:class:`RawResult` with cycles, energy and per-layer/per-core activity.

Deadlocks (a protocol bug, e.g. hand-written programs with unmatched
transfers) are detected when the event wheel drains with cores still
unhalted, and reported with per-core program counters and flow states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ArchConfig, validate
from ..isa import ChipProgram
from ..sim import AllOf, DeadlockError, Simulator
from .core import CoreModel
from .energy import EnergyMeter
from .flows import FlowChannel
from .noc import GlobalMemory, MeshNoc

__all__ = ["ChipModel", "RawResult", "run_program"]


@dataclass
class RawResult:
    """Raw simulator outputs (wrapped by :mod:`repro.runner.results`)."""

    cycles: int
    energy_pj: dict[str, float]
    #: layer -> unit -> busy cycles.
    layer_busy: dict[str, dict[str, int]]
    per_core: dict[int, dict]
    noc: dict[str, int]
    flow_stalls: int
    meta: dict = field(default_factory=dict)
    #: core -> layer -> vector-unit busy cycles (the un-merged view behind
    #: ``layer_busy``'s vector column; how token-sharded attention work
    #: spreads over a shard group is only visible here).
    vector_layer_cycles: dict[int, dict[str, int]] = field(default_factory=dict)
    #: (cycle, core, unit, instruction) completion trace, when enabled.
    trace: list[tuple[int, int, str, str]] | None = None

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())


class ChipModel:
    """The simulated accelerator."""

    def __init__(self, program: ChipProgram, config: ArchConfig) -> None:
        validate(config)
        self.program = program
        self.config = config
        self.sim = Simulator()
        self.energy = EnergyMeter()
        self.noc = MeshNoc(self.sim, config, self.energy)
        self.gmem = GlobalMemory(self.sim, config, self.noc, self.energy)
        self._flows: dict[int, FlowChannel] = {}
        for flow_id, info in program.flows.items():
            window = info.window or config.noc.sync_window
            self._flows[flow_id] = FlowChannel(self.sim, info, self.noc, window)
        #: completion trace (cycle, core, unit, instruction repr) when
        #: ``sim.trace`` is enabled; bounded by ``trace_limit``.
        self.trace: list[tuple[int, int, str, str]] | None = (
            [] if config.sim.trace else None)
        self._trace_limit = 200_000
        self.cores = {
            core_id: self._make_core(core_program)
            for core_id, core_program in sorted(program.programs.items())
        }
        self._finished = False

    def _make_core(self, program):
        """Core-model factory; the fast-fidelity chip overrides this to
        substitute analytic walker cores where they apply."""
        return CoreModel(self, program)

    # -- hooks used by units ---------------------------------------------------

    def flow(self, flow_id: int) -> FlowChannel:
        return self._flows[flow_id]

    def _merged_layer_busy(self) -> dict[str, dict[str, int]]:
        """layer -> unit -> busy cycles, merged from the per-unit tallies
        (units accumulate locally so the per-instruction hot path pays one
        dict bump instead of a chip-level method call)."""
        merged: dict[str, dict[str, int]] = {}
        for core in self.cores.values():
            for unit in core.units.values():
                for layer, cycles in unit.layer_cycles.items():
                    per_unit = merged.setdefault(layer or "<untagged>", {})
                    per_unit[unit.name] = per_unit.get(unit.name, 0) + cycles
        return merged

    def trace_event(self, core: int, unit: str, inst) -> None:
        if self.trace is not None and len(self.trace) < self._trace_limit:
            self.trace.append((self.sim.now, core, unit, repr(inst)))

    # -- running ------------------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> RawResult:
        sim = self.sim
        sim.spawn(self._completion_watcher(), "chip.watcher")
        for core in self.cores.values():
            core.start()
        limit = max_cycles if max_cycles is not None else self.config.sim.max_cycles
        sim.run(until=limit, detect_deadlock=False)
        if not self._finished:
            raise DeadlockError(self._diagnose(limit))
        return self._collect()

    def _completion_watcher(self):
        yield AllOf(*[core.halted for core in self.cores.values()])
        self._finished = True
        self.sim.stop()

    def _diagnose(self, limit: int | None) -> str:
        stuck = [c for c in self.cores.values() if c.halt_time is None]
        lines = []
        if limit is not None and self.sim.now >= limit:
            lines.append(f"simulation exceeded max_cycles={limit}")
        else:
            lines.append(f"simulation deadlocked at cycle {self.sim.now}")
        lines.append(f"{len(stuck)}/{len(self.cores)} cores not halted:")
        for core in stuck[:8]:
            inflight = [repr(e.inst) for e in core.rob.entries if not e.done][:3]
            lines.append(
                f"  core {core.core_id}: issued={core.issued}/"
                f"{len(core.program)} in-flight={inflight}"
            )
        waiting = [f for f in self._flows.values()
                   if f.info.n_messages and f.outstanding]
        for flowch in waiting[:8]:
            lines.append(f"  pending {flowch!r}")
        return "\n".join(lines)

    def _collect(self) -> RawResult:
        cycles = self.sim.now
        seconds = cycles * self.config.sim.cycle_seconds
        # No power gating: the whole core array leaks for the full run
        # (this is why the paper's Fig. 3 energy ratios track its latency
        # ratios so closely).
        self.energy.add_leakage(self.config.energy, self.config.chip.n_cores,
                                seconds)
        return RawResult(
            cycles=cycles,
            energy_pj=self.energy.to_dict(),
            layer_busy=self._merged_layer_busy(),
            per_core={cid: core.stats() for cid, core in self.cores.items()},
            vector_layer_cycles={
                cid: dict(core.units["vector"].layer_cycles)
                for cid, core in self.cores.items()
                if core.units["vector"].layer_cycles
            },
            noc={
                "messages": self.noc.messages_sent,
                "bytes": self.noc.bytes_sent,
                "byte_hops": self.noc.byte_hops,
                "gmem_read": self.gmem.bytes_read,
                "gmem_written": self.gmem.bytes_written,
                "hottest_links": self.noc.hottest_links(),
            },
            flow_stalls=sum(f.stall_cycles for f in self._flows.values()),
            meta={"network": self.program.network, **self.program.meta},
            trace=self.trace,
        )


def run_program(program: ChipProgram, config: ArchConfig, *,
                max_cycles: int | None = None) -> RawResult:
    """Simulate a compiled chip program to completion.

    ``config.sim.fidelity`` selects the execution mode: ``"cycle"``
    (default) is the bit-exact event-driven model; ``"fast"`` dispatches
    to the batched analytic executor (:mod:`repro.arch.fast`,
    ROADMAP 3a), which is bounded-error on cycles (gated at 2% by
    ``tools/check_fidelity.py``) but substantially faster.
    """
    if config.sim.fidelity == "fast":
        from .fast import FastChipModel
        return FastChipModel(program, config).run(max_cycles=max_cycles)
    return ChipModel(program, config).run(max_cycles=max_cycles)
