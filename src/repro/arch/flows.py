"""Windowed synchronized flows over the NoC.

A :class:`FlowChannel` realizes the ISA's synchronized transfer semantics
for one producer->consumer message stream: the sender may run at most
``window`` messages ahead of the receiver (credit flow control, modelling
the consumer's bounded input ring), each message physically traverses the
mesh, and a receive blocks until its sequence number has arrived.

``window=1`` degenerates to strict rendezvous; the default (4) matches the
input-ring depth the compiler allocates.  This bounded-buffer behaviour is
the central modelling difference from MNSIM2.0's "fully asynchronous,
immediately transmitted" assumption the paper criticizes.
"""

from __future__ import annotations

from typing import Generator

from ..isa import FlowInfo
from ..sim import Event, Simulator
from .noc import MeshNoc

__all__ = ["FlowChannel"]


class FlowChannel:
    """One windowed, ordered message stream between two cores."""

    def __init__(self, sim: Simulator, info: FlowInfo, noc: MeshNoc,
                 window: int) -> None:
        self.sim = sim
        self.info = info
        self.noc = noc
        self.window = max(1, window)
        self._arrived = 0     # messages fully delivered to the receiver core
        self._consumed = 0    # messages the receiver has RECVed
        self._send_started = 0
        self._arrival_event = Event(sim, f"flow{info.flow_id}.arrival")
        self._credit_event = Event(sim, f"flow{info.flow_id}.credit")
        #: cycles senders spent blocked on credit (backpressure measure).
        self.stall_cycles = 0

    # -- sender side ---------------------------------------------------------

    def send(self, nbytes: int) -> Generator:
        """Coroutine: deliver the next message; blocks on the credit window
        and on the physical mesh traversal."""
        if self._send_started - self._consumed >= self.window:
            wait_start = self.sim.now
            while self._send_started - self._consumed >= self.window:
                yield self._credit_event
            self.stall_cycles += self.sim.now - wait_start
        self._send_started += 1
        yield from self.noc.transmit(self.info.src_core, self.info.dst_core,
                                     nbytes)
        self._arrived += 1
        # Receivers re-check ``_arrived`` before blocking, so an arrival
        # with nobody waiting needs no wake-up callback.
        if self._arrival_event._waiters:
            self._arrival_event.notify()

    # -- receiver side ---------------------------------------------------------

    def recv(self, seq: int) -> Generator:
        """Coroutine: block until message ``seq`` has arrived, consume it.

        Receives must be issued in sequence order (the static verifier
        guarantees the compiler emits them densely per flow).
        """
        if seq != self._consumed:
            raise RuntimeError(
                f"flow {self.info.flow_id} ({self.info.layer}): RECV seq {seq} "
                f"out of order (expected {self._consumed})"
            )
        while self._arrived <= seq:
            yield self._arrival_event
        self._consumed += 1
        # Senders re-check the credit window before blocking, so a credit
        # returned with nobody waiting needs no wake-up callback.
        if self._credit_event._waiters:
            self._credit_event.notify()

    @property
    def outstanding(self) -> int:
        return self._arrived - self._consumed

    def __repr__(self) -> str:
        return (f"<Flow {self.info.flow_id} {self.info.src_core}->"
                f"{self.info.dst_core} {self._consumed}/{self.info.n_messages}>")
