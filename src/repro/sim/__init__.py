"""Event-driven simulation kernel (pure-Python SystemC substitute).

Public surface:

* :class:`~repro.sim.kernel.Simulator` — the event wheel / process scheduler.
* :class:`~repro.sim.kernel.Event`, :class:`~repro.sim.kernel.AnyOf`,
  :class:`~repro.sim.kernel.AllOf` — wait conditions.
* :class:`~repro.sim.channel.Fifo`, :class:`~repro.sim.channel.Rendezvous`,
  :class:`~repro.sim.channel.Mutex`, :class:`~repro.sim.channel.Resource`
  — blocking communication/arbitration primitives.
* :mod:`~repro.sim.stats` — statistics collectors.
"""

from .analytic import AnalyticWindow, PendingCompletion
from .channel import ChannelError, Fifo, Mutex, Rendezvous, Resource
from .kernel import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    Process,
    SimulationError,
    Simulator,
)
from .stats import Accumulator, Counter, StatGroup, TimeWeighted

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "DeadlockError",
    "Fifo",
    "Rendezvous",
    "Mutex",
    "Resource",
    "ChannelError",
    "PendingCompletion",
    "AnalyticWindow",
    "Counter",
    "Accumulator",
    "TimeWeighted",
    "StatGroup",
]
