"""Lightweight statistics collectors for simulation models.

The architecture models record activity through these collectors rather
than ad-hoc dicts, so reports (:mod:`repro.runner.results`) can enumerate
and aggregate them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Accumulator", "TimeWeighted", "StatGroup"]


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Accumulator:
    """Accumulates samples; tracks count / sum / min / max / mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if sample < self.min:
            self.min = sample
        if sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Accumulator({self.name}: n={self.count} mean={self.mean:.3g} "
            f"min={self.min:.3g} max={self.max:.3g})"
        )


class TimeWeighted:
    """Tracks the time integral of a piecewise-constant signal.

    Used for occupancy metrics (ROB fill, queue depth, link utilization):
    ``update(now, v)`` records that the signal changed to ``v`` at ``now``;
    ``integral(now)`` returns the running time integral, from which the
    time-average follows.
    """

    __slots__ = ("name", "_start_time", "_last_time", "_last_value",
                 "_integral", "peak")

    def __init__(self, name: str = "", start_time: int = 0, start_value: float = 0.0) -> None:
        self.name = name
        self._start_time = start_time
        self._last_time = start_time
        self._last_value = start_value
        self._integral = 0.0
        self.peak = start_value

    def update(self, now: int, value: float) -> None:
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._integral += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value
        if value > self.peak:
            self.peak = value

    def integral(self, now: int) -> float:
        """Integral of the signal from start to ``now``."""
        return self._integral + self._last_value * (now - self._last_time)

    def average(self, now: int) -> float:
        """Time-average of the signal over ``[start_time, now]``.

        The span is measured from the collector's ``start_time``, not
        from 0 — a collector created mid-run averages only over its own
        lifetime (regression: the seed divided by ``now``, deflating the
        average of any late-created collector).
        """
        span = now - self._start_time
        return self.integral(now) / span if span else self._last_value

    @property
    def current(self) -> float:
        return self._last_value


@dataclass
class StatGroup:
    """A named bag of collectors, nestable, exportable to plain dicts."""

    name: str
    counters: dict[str, Counter] = field(default_factory=dict)
    accumulators: dict[str, Accumulator] = field(default_factory=dict)
    time_weighted: dict[str, TimeWeighted] = field(default_factory=dict)
    children: dict[str, "StatGroup"] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(f"{self.name}.{name}")
        return self.counters[name]

    def accumulator(self, name: str) -> Accumulator:
        if name not in self.accumulators:
            self.accumulators[name] = Accumulator(f"{self.name}.{name}")
        return self.accumulators[name]

    def weighted(self, name: str) -> TimeWeighted:
        if name not in self.time_weighted:
            self.time_weighted[name] = TimeWeighted(f"{self.name}.{name}")
        return self.time_weighted[name]

    def child(self, name: str) -> "StatGroup":
        if name not in self.children:
            self.children[name] = StatGroup(f"{self.name}.{name}")
        return self.children[name]

    def to_dict(self, now: int | None = None) -> dict:
        """Export all collectors as a nested plain dict (JSON-friendly)."""
        out: dict = {}
        for key, c in self.counters.items():
            out[key] = c.value
        for key, a in self.accumulators.items():
            out[key] = {"count": a.count, "sum": a.total, "mean": a.mean,
                        "min": a.min if a.count else None,
                        "max": a.max if a.count else None}
        for key, w in self.time_weighted.items():
            entry = {"peak": w.peak, "current": w.current}
            if now is not None:
                entry["average"] = w.average(now)
            out[key] = entry
        for key, child in self.children.items():
            out[key] = child.to_dict(now)
        return out
