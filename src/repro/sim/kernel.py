"""Discrete-event simulation kernel.

This module is the pure-Python stand-in for the SystemC engine used by the
original PIMSIM-NN.  It provides the same discrete-event semantics:

* an event wheel ordered by simulated time (integer cycles),
* *processes* written as Python generators that suspend on ``yield`` and are
  resumed by the kernel when their wake-up condition fires,
* ``Event`` objects that processes can wait on and that models can notify,
  either after a delay or in the next *delta* step of the current timestamp.

Time is an integer number of cycles.  Within one timestamp, wake-ups are
processed in FIFO order of scheduling, which gives deterministic simulations
(there is no reliance on SystemC's two-phase evaluate/update split; modules
in :mod:`repro.arch` are written to be insensitive to same-cycle ordering
beyond FIFO fairness).

Example
-------
>>> sim = Simulator()
>>> done = Event(sim, "done")
>>> def producer():
...     yield 5           # wait 5 cycles
...     done.notify()
>>> def consumer(log):
...     yield done        # wait on the event
...     log.append(sim.now)
>>> log = []
>>> sim.spawn(producer())
<Process producer>
>>> sim.spawn(consumer(log))
<Process consumer>
>>> sim.run()
>>> log
[5]
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "DeadlockError",
]


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain blocked forever.

    A deadlock is reported when the event wheel drains while live processes
    are still waiting on events that can no longer be notified.  The message
    lists the stuck processes to make protocol bugs (e.g. an unmatched
    synchronized SEND) easy to diagnose.
    """


class Event:
    """A notifiable condition that processes can wait on.

    Mirrors ``sc_event``: any number of processes may be blocked on an event;
    :meth:`notify` wakes all of them.  Notification may be immediate (next
    delta of the current cycle) or delayed by an integer number of cycles.
    """

    __slots__ = ("sim", "name", "_waiters", "_fired_at")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._waiters: list[Process] = []
        #: time of the most recent notification, or ``None``.
        self._fired_at: int | None = None

    def notify(self, delay: int = 0) -> None:
        """Fire after ``delay`` cycles (0 = next delta step).

        Waiters are collected at *fire* time, matching ``sc_event``: a
        process that starts waiting between the notify call and the fire
        instant is woken; one that starts waiting after the fire is not.
        """
        if delay < 0:
            raise ValueError(f"negative notify delay: {delay}")
        self.sim._schedule(delay, self._fire, None)

    def _fire(self, _arg: object) -> None:
        self._fired_at = self.sim.now
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._wake(self)

    @property
    def fired_at(self) -> int | None:
        """Cycle of the last notification, or ``None`` if never fired."""
        return self._fired_at

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.name or hex(id(self))}>"


class AnyOf:
    """Wait condition satisfied when *any* of the given events fires."""

    __slots__ = ("events",)

    def __init__(self, *events: Event) -> None:
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self.events = events


class AllOf:
    """Wait condition satisfied once *all* of the given events have fired."""

    __slots__ = ("events",)

    def __init__(self, *events: Event) -> None:
        if not events:
            raise ValueError("AllOf requires at least one event")
        self.events = events


class Process:
    """A simulation process driving a generator coroutine.

    The generator may yield:

    * ``int`` — suspend for that many cycles,
    * :class:`Event` — suspend until the event is notified,
    * :class:`AnyOf` — suspend until the first of several events fires,
    * :class:`AllOf` — suspend until all of several events have fired.

    The value sent back into the generator is the :class:`Event` that woke it
    (or ``None`` for a timed wait), so a process waiting on ``AnyOf`` can
    learn which condition fired.
    """

    __slots__ = ("sim", "gen", "name", "_waiting_on", "_pending_all", "_done", "_finished_event")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "") or gen.__class__.__name__
        self._waiting_on: tuple[Event, ...] = ()
        self._pending_all: set[Event] | None = None
        self._done = False
        self._finished_event: Event | None = None

    @property
    def done(self) -> bool:
        """Whether the underlying generator has finished."""
        return self._done

    @property
    def finished(self) -> Event:
        """Event notified when this process terminates (lazily created)."""
        if self._finished_event is None:
            self._finished_event = Event(self.sim, f"{self.name}.finished")
            if self._done:
                self._finished_event.notify()
        return self._finished_event

    def _wake(self, cause: Event | None) -> None:
        if self._done:
            return
        if self._pending_all is not None and cause is not None:
            self._pending_all.discard(cause)
            if self._pending_all:
                return  # still waiting on the rest of the AllOf set
            self._pending_all = None
        # Cancel any sibling waits (AnyOf semantics).
        for ev in self._waiting_on:
            if ev is not cause:
                ev._remove_waiter(self)
        self._waiting_on = ()
        self._step(cause)

    def _step(self, send_value: Any) -> None:
        sim = self.sim
        try:
            condition = self.gen.send(send_value)
        except StopIteration:
            self._done = True
            sim._live_processes.discard(self)
            if self._finished_event is not None:
                self._finished_event.notify()
            return
        if isinstance(condition, int):
            if condition < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {condition}"
                )
            sim._schedule(condition, self._wake, None)
        elif isinstance(condition, Event):
            condition._add_waiter(self)
            self._waiting_on = (condition,)
        elif isinstance(condition, AnyOf):
            for ev in condition.events:
                ev._add_waiter(self)
            self._waiting_on = tuple(condition.events)
        elif isinstance(condition, AllOf):
            self._pending_all = set(condition.events)
            for ev in condition.events:
                ev._add_waiter(self)
            self._waiting_on = tuple(condition.events)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported condition "
                f"{condition!r} (expected int, Event, AnyOf or AllOf)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name}>"


class Simulator:
    """The event wheel: schedules callbacks and drives processes.

    ``Simulator`` replaces the SystemC kernel.  Models register processes
    with :meth:`spawn`; :meth:`run` then advances simulated time until the
    wheel drains, a time bound is hit, or :meth:`stop` is called.
    """

    def __init__(self) -> None:
        #: current simulated time in cycles.
        self.now: int = 0
        self._wheel: list[tuple[int, int, Callable, Any]] = []
        self._seq = 0
        self._live_processes: set[Process] = set()
        self._stopped = False

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, delay: int, fn: Callable, arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._wheel, (self.now + delay, self._seq, fn, arg))

    def call_at(self, time: int, fn: Callable, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        self._schedule(time - self.now, fn, arg)

    def call_after(self, delay: int, fn: Callable, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._schedule(delay, fn, arg)

    def event(self, name: str = "") -> Event:
        """Create a fresh :class:`Event` bound to this simulator."""
        return Event(self, name)

    # -- processes ----------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; it takes its first step at
        the current time (before time advances)."""
        proc = Process(self, gen, name)
        self._live_processes.add(proc)
        self._schedule(0, proc._step, None)
        return proc

    # -- running ------------------------------------------------------------

    def run(self, until: int | None = None, *, detect_deadlock: bool = True) -> None:
        """Advance simulation until the wheel drains or ``until`` is reached.

        With ``detect_deadlock`` (default), raises :class:`DeadlockError` if
        the wheel drains while spawned processes are still blocked on events.
        """
        self._stopped = False
        wheel = self._wheel
        while wheel and not self._stopped:
            time, _seq, fn, arg = heapq.heappop(wheel)
            if until is not None and time > until:
                # Put it back; the caller may resume later.
                heapq.heappush(wheel, (time, _seq, fn, arg))
                self.now = until
                return
            self.now = time
            fn(arg)
        if detect_deadlock and not self._stopped and self._live_processes:
            stuck = sorted(p.name for p in self._live_processes)
            raise DeadlockError(
                f"simulation deadlocked at cycle {self.now}; "
                f"{len(stuck)} process(es) still blocked: {', '.join(stuck[:12])}"
                + (" …" if len(stuck) > 12 else "")
            )

    def stop(self) -> None:
        """Request :meth:`run` to return after the current callback."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed wheel entries."""
        return len(self._wheel)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now} pending={self.pending}>"
