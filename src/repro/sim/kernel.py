"""Discrete-event simulation kernel.

This module is the pure-Python stand-in for the SystemC engine used by the
original PIMSIM-NN.  It provides the same discrete-event semantics:

* an event wheel ordered by simulated time (integer cycles),
* *processes* written as Python generators that suspend on ``yield`` and are
  resumed by the kernel when their wake-up condition fires,
* ``Event`` objects that processes can wait on and that models can notify,
  either after a delay or in the next *delta* step of the current timestamp.

Time is an integer number of cycles.  Within one timestamp, wake-ups are
processed in FIFO order of scheduling, which gives deterministic simulations
(there is no reliance on SystemC's two-phase evaluate/update split; modules
in :mod:`repro.arch` are written to be insensitive to same-cycle ordering
beyond FIFO fairness).

Scheduler design
----------------
The kernel is the hot loop of every benchmark, so scheduling is split into
three structures by delay instead of a single binary heap:

* **delta queue** — ``delay == 0`` callbacks (the dominant case: every
  ``Event.notify()``, process spawn and ``yield 0``) go to a plain list of
  ready-to-call zero-argument callables drained FIFO within the current
  cycle.  Nothing is allocated (bound methods are cached per event/process)
  and the heap is never touched.
* **near wheel** — delays in ``1 .. _NEAR_SIZE-1`` go to a ring of
  ``_NEAR_SIZE`` buckets indexed by ``(now + delay) & _NEAR_MASK``; each
  bucket is again a flat callable list, appended (and therefore drained)
  in scheduling order.
* **far heap** — delays ``>= _NEAR_SIZE`` fall back to a ``heapq`` of
  ``(time, seq, fn, arg)`` tuples, exactly like the classic wheel.

Determinism guarantees are unchanged from the single-heap kernel: all
callbacks scheduled for one timestamp run in global scheduling (FIFO)
order.  This holds structurally: for a given fire time ``T`` every far-heap
entry was scheduled at ``S <= T - _NEAR_SIZE``, every near-wheel entry at
``T - _NEAR_SIZE < S < T`` and every delta entry at exactly ``T``, so
draining far entries at ``T`` (heap pops are seq-ordered), then the bucket
``T & _NEAR_MASK`` (append order), then the delta queue (append order,
including entries appended while draining) replays scheduling order
exactly.  New same-cycle work created by a callback can only enter the
delta queue, never the already-drained structures.

Further fast paths: ``Event`` waiter bookkeeping is an insertion-ordered
``dict`` keyed by process, so AnyOf sibling cancellation and the
AllOf-after-fire cleanup are O(1) ``pop`` calls (the old list-based
``remove`` was O(n) and silently swallowed double removals); a process
waiting on a single event or a timer records no tuple; and ``run()`` checks
its ``until`` bound once per distinct timestamp rather than once per event.

``Simulator.pending`` is exact whenever ``run()`` is not on the stack
(entries already executed inside the current ``run`` slice are compacted
away on every return path).

Example
-------
>>> sim = Simulator()
>>> done = Event(sim, "done")
>>> def producer():
...     yield 5           # wait 5 cycles
...     done.notify()
>>> def consumer(log):
...     yield done        # wait on the event
...     log.append(sim.now)
>>> log = []
>>> sim.spawn(producer())
<Process producer>
>>> sim.spawn(consumer(log))
<Process consumer>
>>> sim.run()
>>> log
[5]
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Generator
from functools import partial
from typing import Any, Callable

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "DeadlockError",
]

#: near-wheel span in cycles; delays below this use O(1) ring buckets.
_NEAR_SIZE = 128
_NEAR_MASK = _NEAR_SIZE - 1


def _call_entry(entry) -> None:
    """Run one delta/near-format entry (bare callable or (fn, arg) tuple);
    used when such entries are parked on the far heap by a clock rewind."""
    if entry.__class__ is tuple:
        entry[0](entry[1])
    else:
        entry()


class SimulationError(RuntimeError):
    """Base class for kernel-level errors."""


class DeadlockError(SimulationError):
    """Raised by :meth:`Simulator.run` when processes remain blocked forever.

    A deadlock is reported when the event wheel drains while live processes
    are still waiting on events that can no longer be notified.  The message
    lists the stuck processes to make protocol bugs (e.g. an unmatched
    synchronized SEND) easy to diagnose.
    """


class Event:
    """A notifiable condition that processes can wait on.

    Mirrors ``sc_event``: any number of processes may be blocked on an event;
    :meth:`notify` wakes all of them.  Notification may be immediate (next
    delta of the current cycle) or delayed by an integer number of cycles.
    """

    __slots__ = ("sim", "name", "_waiters", "_fired_at", "_fire_cb",
                 "_dappend")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: insertion-ordered waiting processes (dict used as an ordered set
        #: so cancellation is O(1); wake order is insertion order, matching
        #: the old list-based FIFO semantics).
        self._waiters: dict[Process, None] = {}
        #: time of the most recent notification, or ``None``.
        self._fired_at: int | None = None
        #: bound method cached once so scheduling a notification does not
        #: allocate a fresh bound-method object per call; same for the
        #: simulator's delta append (the delta list is never replaced).
        self._fire_cb = self._fire
        self._dappend = sim._delta_append

    def notify(self, delay: int = 0) -> None:
        """Fire after ``delay`` cycles (0 = next delta step).

        Waiters are collected at *fire* time, matching ``sc_event``: a
        process that starts waiting between the notify call and the fire
        instant is woken; one that starts waiting after the fire is not.
        """
        if delay == 0:
            self._dappend(self._fire_cb)
        elif delay > 0:
            if not isinstance(delay, int):
                raise ValueError(
                    f"notify delay must be an integer number of cycles, "
                    f"got {delay!r}")
            self.sim._schedule(delay, self._fire_cb)
        else:
            raise ValueError(f"negative notify delay: {delay}")

    def _fire(self, _arg: object = None) -> None:
        sim = self.sim
        self._fired_at = sim.now
        waiters = self._waiters
        if not waiters:
            return
        if len(waiters) == 1:
            proc = waiters.popitem()[0]
            if proc._wait_single is not self:
                # AnyOf / AllOf wake: sibling cancellation and AllOf
                # accounting live in the general resume.
                proc._resume(self)
                return
            # Single-event waiter: the wake is fully determined (no
            # siblings to cancel, no AllOf set, the process cannot be
            # done), so step the generator right here instead of paying
            # another frame for Process._resume.  The dispatch below is
            # the shared condition-dispatch block — see the sync note on
            # Process._resume.
            proc._wait_single = None
            try:
                condition = proc._send(self)
            except StopIteration:
                proc._done = True
                sim._live_processes.discard(proc)
                if proc._finished_event is not None:
                    proc._finished_event.notify()
                return
            tc = condition.__class__
            if tc is int:
                if 0 < condition < _NEAR_SIZE:
                    sim._near[(sim.now + condition) & _NEAR_MASK].append(
                        proc._timer_cb)
                    sim._near_count += 1
                elif condition == 0:
                    sim._delta_append(proc._timer_cb)
                elif condition > 0:
                    sim._seq = seq = sim._seq + 1
                    heapq.heappush(
                        sim._far,
                        (sim.now + condition, seq, proc._timer_cb, None))
                else:
                    raise SimulationError(
                        f"process {proc.name!r} yielded a negative delay: "
                        f"{condition}"
                    )
            elif tc is Event:
                condition._waiters[proc] = None
                proc._wait_single = condition
            elif tc is AnyOf:
                for ev in condition.events:
                    ev._waiters[proc] = None
                proc._wait_multi = condition.events
            elif tc is AllOf:
                proc._pending_all = set(condition.events)
                for ev in condition.events:
                    ev._waiters[proc] = None
                proc._wait_multi = condition.events
            elif isinstance(condition, int):
                # bool / int subclasses take the generic path.
                if condition < 0:
                    raise SimulationError(
                        f"process {proc.name!r} yielded a negative delay: "
                        f"{condition}"
                    )
                sim._schedule(condition, proc._timer_cb)
            elif isinstance(condition, Event):
                condition._waiters[proc] = None
                proc._wait_single = condition
            else:
                raise SimulationError(
                    f"process {proc.name!r} yielded unsupported condition "
                    f"{condition!r} (expected int, Event, AnyOf or AllOf)"
                )
        else:
            self._waiters = {}
            for proc in waiters:
                proc._resume(self)

    @property
    def fired_at(self) -> int | None:
        """Cycle of the last notification, or ``None`` if never fired."""
        return self._fired_at

    def _add_waiter(self, proc: "Process") -> None:
        self._waiters[proc] = None

    def _remove_waiter(self, proc: "Process") -> None:
        # O(1); removing a process that is not waiting (e.g. the AllOf
        # cleanup of an already-fired member event) is a defined no-op.
        self._waiters.pop(proc, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.name or hex(id(self))}>"


class AnyOf:
    """Wait condition satisfied when *any* of the given events fires."""

    __slots__ = ("events",)

    def __init__(self, *events: Event) -> None:
        if not events:
            raise ValueError("AnyOf requires at least one event")
        self.events = events


class AllOf:
    """Wait condition satisfied once *all* of the given events have fired."""

    __slots__ = ("events",)

    def __init__(self, *events: Event) -> None:
        if not events:
            raise ValueError("AllOf requires at least one event")
        self.events = events


class Process:
    """A simulation process driving a generator coroutine.

    The generator may yield:

    * ``int`` — suspend for that many cycles,
    * :class:`Event` — suspend until the event is notified,
    * :class:`AnyOf` — suspend until the first of several events fires,
    * :class:`AllOf` — suspend until all of several events have fired.

    The value sent back into the generator is the :class:`Event` that woke it
    (or ``None`` for a timed wait), so a process waiting on ``AnyOf`` can
    learn which condition fired.
    """

    __slots__ = ("sim", "gen", "name", "_wait_single", "_wait_multi",
                 "_pending_all", "_done", "_finished_event", "_resume_cb",
                 "_timer_cb", "_send")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "") or gen.__class__.__name__
        #: bound-method / send caches: rescheduling this process allocates
        #: no fresh bound-method object, and each resume skips one lookup.
        self._resume_cb = self._resume
        self._timer_cb = self._timer_resume
        self._send = gen.send
        #: fast path: the one event this process waits on (no tuple built).
        self._wait_single: Event | None = None
        #: AnyOf/AllOf: the tuple of events this process is registered with.
        self._wait_multi: tuple[Event, ...] | None = None
        self._pending_all: set[Event] | None = None
        self._done = False
        self._finished_event: Event | None = None

    @property
    def done(self) -> bool:
        """Whether the underlying generator has finished."""
        return self._done

    @property
    def finished(self) -> Event:
        """Event notified when this process terminates (lazily created)."""
        if self._finished_event is None:
            self._finished_event = Event(self.sim, f"{self.name}.finished")
            if self._done:
                self._finished_event.notify()
        return self._finished_event

    # NOTE: _resume, _timer_resume and the single-waiter fast path of
    # Event._fire share the post-``send`` condition dispatch verbatim.  The
    # duplication is deliberate: this is the kernel's hottest code (every
    # process switch lands in one of the copies) and factoring the dispatch
    # into a helper would put one extra Python frame on every single
    # wake-up.  Keep the three copies in sync.

    def _resume(self, cause: Event | None = None) -> None:
        """Wake from an event fire (or the spawn step): wait-state cleanup,
        then one generator step, then dispatch on the yielded condition.

        Only :meth:`Event._fire` (whose waiters are by construction live,
        blocked processes) and :meth:`Simulator.spawn` (a fresh process)
        schedule this, so no ``_done`` re-check is needed.
        """
        pending = self._pending_all
        if pending is not None and cause is not None:
            pending.discard(cause)
            if pending:
                return  # still waiting on the rest of the AllOf set
            self._pending_all = None
        single = self._wait_single
        if single is not None:
            self._wait_single = None
        else:
            multi = self._wait_multi
            if multi is not None:
                self._wait_multi = None
                # Cancel any sibling waits (AnyOf semantics); O(1) each.
                for ev in multi:
                    if ev is not cause:
                        ev._waiters.pop(self, None)
        sim = self.sim
        try:
            condition = self._send(cause)
        except StopIteration:
            self._done = True
            sim._live_processes.discard(self)
            if self._finished_event is not None:
                self._finished_event.notify()
            return
        tc = condition.__class__
        if tc is int:
            if 0 < condition < _NEAR_SIZE:
                sim._near[(sim.now + condition) & _NEAR_MASK].append(
                    self._timer_cb)
                sim._near_count += 1
            elif condition == 0:
                sim._delta_append(self._timer_cb)
            elif condition > 0:
                sim._seq = seq = sim._seq + 1
                heapq.heappush(
                    sim._far, (sim.now + condition, seq, self._timer_cb, None))
            else:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {condition}"
                )
        elif tc is Event:
            condition._waiters[self] = None
            self._wait_single = condition
        elif tc is AnyOf:
            for ev in condition.events:
                ev._waiters[self] = None
            self._wait_multi = condition.events
        elif tc is AllOf:
            self._pending_all = set(condition.events)
            for ev in condition.events:
                ev._waiters[self] = None
            self._wait_multi = condition.events
        elif isinstance(condition, int):
            # bool / int subclasses take the generic path.
            if condition < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {condition}"
                )
            sim._schedule(condition, self._timer_cb)
        elif isinstance(condition, Event):
            condition._waiters[self] = None
            self._wait_single = condition
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported condition "
                f"{condition!r} (expected int, Event, AnyOf or AllOf)"
            )

    def _timer_resume(self, _arg: object = None) -> None:
        """Wake from a timed wait: a timer-suspended process has no wait
        state to clean and cannot be done, so this skips every guard in
        :meth:`_resume` (see the sync note above)."""
        sim = self.sim
        try:
            condition = self._send(None)
        except StopIteration:
            self._done = True
            sim._live_processes.discard(self)
            if self._finished_event is not None:
                self._finished_event.notify()
            return
        tc = condition.__class__
        if tc is int:
            if 0 < condition < _NEAR_SIZE:
                sim._near[(sim.now + condition) & _NEAR_MASK].append(
                    self._timer_cb)
                sim._near_count += 1
            elif condition == 0:
                sim._delta_append(self._timer_cb)
            elif condition > 0:
                sim._seq = seq = sim._seq + 1
                heapq.heappush(
                    sim._far, (sim.now + condition, seq, self._timer_cb, None))
            else:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {condition}"
                )
        elif tc is Event:
            condition._waiters[self] = None
            self._wait_single = condition
        elif tc is AnyOf:
            for ev in condition.events:
                ev._waiters[self] = None
            self._wait_multi = condition.events
        elif tc is AllOf:
            self._pending_all = set(condition.events)
            for ev in condition.events:
                ev._waiters[self] = None
            self._wait_multi = condition.events
        elif isinstance(condition, int):
            # bool / int subclasses take the generic path.
            if condition < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded a negative delay: {condition}"
                )
            sim._schedule(condition, self._timer_cb)
        elif isinstance(condition, Event):
            condition._waiters[self] = None
            self._wait_single = condition
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported condition "
                f"{condition!r} (expected int, Event, AnyOf or AllOf)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name}>"


class Simulator:
    """The event wheel: schedules callbacks and drives processes.

    ``Simulator`` replaces the SystemC kernel.  Models register processes
    with :meth:`spawn`; :meth:`run` then advances simulated time until the
    wheel drains, a time bound is hit, or :meth:`stop` is called.
    """

    def __init__(self) -> None:
        #: current simulated time in cycles.
        self.now: int = 0
        #: same-cycle callbacks: a FIFO of zero-arg callables.  The deque
        #: object is never replaced (the drain pops it empty in place), so
        #: its bound ``append`` can be cached by every scheduling site.
        self._delta: deque = deque()
        self._delta_append = self._delta.append
        #: ring of near-future buckets (zero-arg callables each).
        self._near: list[list] = [[] for _ in range(_NEAR_SIZE)]
        #: number of entries currently in the near wheel.
        self._near_count = 0
        #: far-future heap of ``(time, seq, fn, arg)``.
        self._far: list[tuple[int, int, Callable, Any]] = []
        self._seq = 0
        self._live_processes: set[Process] = set()
        self._stopped = False

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, delay: int, fn: Callable) -> None:
        """Schedule a no-argument callable after ``delay`` cycles.

        Internal primitive: delta/near entries occupy one list slot and are
        either a bare zero-arg callable (kernel callbacks; also called as
        ``fn(None)`` when spilled to the far heap, so they must tolerate one
        optional positional argument) or an ``(fn, arg)`` tuple scheduled by
        ``call_at``/``call_after``.
        """
        if delay == 0:
            self._delta_append(fn)
        elif delay < _NEAR_SIZE:
            self._near[(self.now + delay) & _NEAR_MASK].append(fn)
            self._near_count += 1
        else:
            self._seq = seq = self._seq + 1
            heapq.heappush(self._far, (self.now + delay, seq, fn, None))

    def call_at(self, time: int, fn: Callable, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` at absolute cycle ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        self.call_after(time - self.now, fn, arg)

    def call_after(self, delay: int, fn: Callable, arg: Any = None) -> None:
        """Schedule ``fn(arg)`` after ``delay`` cycles."""
        if not isinstance(delay, int):
            raise SimulationError(
                f"delay must be an integer number of cycles, got {delay!r}")
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        if delay >= _NEAR_SIZE:
            self._seq = seq = self._seq + 1
            heapq.heappush(self._far, (self.now + delay, seq, fn, arg))
        elif delay:
            # near buckets hold zero-argument callables or ``(fn, arg)``
            # tuples (their drain special-cases the tuple form for the
            # user-facing ``fn(arg)`` convention of call_at/call_after).
            self._schedule(delay, (fn, arg))
        else:
            # the delta queue is callables-only (its drain has no tuple
            # dispatch); bind the argument once here instead.
            self._delta_append(partial(fn, arg))

    def event(self, name: str = "") -> Event:
        """Create a fresh :class:`Event` bound to this simulator."""
        return Event(self, name)

    # -- processes ----------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Register a generator as a process; it takes its first step at
        the current time (before time advances)."""
        proc = Process(self, gen, name)
        self._live_processes.add(proc)
        self._delta_append(proc._resume_cb)
        return proc

    # -- running ------------------------------------------------------------

    def run(self, until: int | None = None, *, detect_deadlock: bool = True) -> None:
        """Advance simulation until the wheel drains or ``until`` is reached.

        With ``detect_deadlock`` (default), raises :class:`DeadlockError` if
        the wheel drains while spawned processes are still blocked on events.
        """
        self._stopped = False
        delta = self._delta
        dpop = delta.popleft
        near = self._near
        far = self._far
        pop_far = heapq.heappop
        mask = _NEAR_MASK
        has_until = until is not None
        if has_until and until < self.now:
            # Nothing at or before `until` can exist; mirror the old
            # kernel: rewind the clock without processing anything.  Ring
            # buckets and the delta queue are keyed to the current clock,
            # so park their entries on the far heap (absolute times
            # preserved) before moving `now` backwards — otherwise they
            # would alias to wrong cycles after the rewind.
            if delta or self._near_count or far:
                now = self.now
                if self._near_count:
                    for k in range(1, _NEAR_SIZE):
                        bucket = near[(now + k) & mask]
                        if bucket:
                            fire_time = now + k
                            for fn in bucket:
                                self._seq = seq = self._seq + 1
                                heapq.heappush(
                                    far, (fire_time, seq, _call_entry, fn))
                            bucket.clear()
                    self._near_count = 0
                while delta:
                    self._seq = seq = self._seq + 1
                    heapq.heappush(far, (now, seq, _call_entry, dpop()))
                self.now = until
                return
        while True:
            now = self.now
            # 1. far-heap entries that landed exactly on the current cycle
            # (only possible right after a time advance or on resume).
            while far and far[0][0] == now:
                entry = pop_far(far)
                entry[2](entry[3])
                if self._stopped:
                    return
            # 2. the near bucket for the current cycle.  Its entries were
            # scheduled strictly before `now`, hence after every far entry
            # for `now` and before any delta entry (module-docstring proof);
            # nothing can be appended to it while it drains, so its length
            # is fixed.  The try/finally is free on 3.11+ and keeps
            # `pending`/resume exact if a callback raises or ``stop()``s.
            bucket = near[now & mask]
            if bucket:
                if len(bucket) == 1:
                    # overwhelmingly common in streaming sims: one process
                    # timer per cycle; skip the loop/compaction machinery.
                    fn = bucket[0]
                    bucket.clear()
                    self._near_count -= 1
                    if fn.__class__ is tuple:
                        fn[0](fn[1])
                    else:
                        fn()
                    if self._stopped:
                        return
                else:
                    i = 0
                    n = len(bucket)
                    try:
                        while i < n:
                            fn = bucket[i]
                            i += 1
                            if fn.__class__ is tuple:
                                fn[0](fn[1])
                            else:
                                fn()
                            if self._stopped:
                                return
                    finally:
                        del bucket[:i]
                        self._near_count -= i
            # 3. the delta queue: all same-cycle work, including work
            # appended while draining (entries are consumed as they run, so
            # `pending` and resume-after-stop stay exact with no cleanup).
            while delta:
                dpop()()
                if self._stopped:
                    return
            # 4. advance time to the next scheduled cycle.
            next_time = -1
            if self._near_count:
                k = now + 1
                if near[k & mask]:
                    next_time = k  # fast path: something lands next cycle
                else:
                    end = now + _NEAR_SIZE
                    k += 1
                    while k < end:
                        if near[k & mask]:
                            next_time = k
                            break
                        k += 1
            if far:
                far_time = far[0][0]
                if next_time < 0 or far_time < next_time:
                    next_time = far_time
            if next_time < 0:
                break  # drained
            if has_until and next_time > until:
                self.now = until
                return
            self.now = next_time
        if detect_deadlock and not self._stopped and self._live_processes:
            stuck = sorted(p.name for p in self._live_processes)
            raise DeadlockError(
                f"simulation deadlocked at cycle {self.now}; "
                f"{len(stuck)} process(es) still blocked: {', '.join(stuck[:12])}"
                + (" …" if len(stuck) > 12 else "")
            )

    def stop(self) -> None:
        """Request :meth:`run` to return after the current callback."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed wheel entries."""
        return len(self._far) + self._near_count + len(self._delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now} pending={self.pending}>"
