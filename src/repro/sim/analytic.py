"""Analytic scheduling primitives for the fast-fidelity executor.

``fidelity="fast"`` (ROADMAP 3a) replaces each straight-line core's five
kernel processes (issue loop + four execution units) with ONE walker
generator that advances whole compute runs in pure integer arithmetic and
only enters the event kernel at transfer boundaries.  The two primitives
the walker needs on the kernel side live here; the architecture binding
is :mod:`repro.arch.fast`.

* :class:`PendingCompletion` — the completion time of an instruction
  whose finish the event kernel decides (an in-flight SEND pushing
  through the credit window and the mesh): an int once resolved, and a
  lazily-created :class:`~repro.sim.Event` to block on before that.
* :class:`AnalyticWindow` — the ROB's analytic twin: a ring of
  completion times over the last ``2*size-1`` instructions supporting
  the static-blocker lookups and the in-order retirement frontier (the
  running prefix max of completion times) that the front-end recurrence
  needs.  Ring sizing and indexing mirror
  :class:`~repro.arch.rob.ReorderBuffer`'s table mode exactly.
"""

from __future__ import annotations

from .kernel import Event, Simulator

__all__ = ["PendingCompletion", "AnalyticWindow"]


class PendingCompletion:
    """A completion time not yet known to the analytic walker.

    Stored in an :class:`AnalyticWindow` ring slot in place of an int;
    any reader that truly needs the value blocks on :meth:`event` until
    the kernel-side process (a flow drainer) calls :meth:`resolve`.
    """

    __slots__ = ("sim", "name", "done_at", "_event")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: resolved completion cycle, or ``None`` while in flight.
        self.done_at: int | None = None
        self._event: Event | None = None

    def event(self) -> Event:
        """The event notified at resolution (lazily created, so sends
        nobody waits on cost no Event object)."""
        event = self._event
        if event is None:
            event = self._event = Event(self.sim, self.name)
        return event

    def resolve(self, now: int) -> None:
        self.done_at = now
        event = self._event
        if event is not None and event._waiters:
            event.notify()


class AnalyticWindow:
    """Completion-time ring + in-order retirement frontier.

    ``ring[index & mask]`` holds instruction ``index``'s completion
    cycle (an int, or a :class:`PendingCompletion` while the kernel still
    owns it).  While instruction ``i`` is awaited, instructions through
    ``i + size - 1`` may complete, so — exactly like the ROB's static
    table mode — the ring covers ``2*size - 1`` consecutive indices
    without collision.

    ``retire_frontier`` is the prefix max of completion times through
    the highest index folded by :meth:`advance_frontier`: because
    retirement is in order, instruction ``i`` may allocate no earlier
    than the frontier over indices ``<= i - size``.
    """

    __slots__ = ("ring", "mask", "retire_frontier", "_retired")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        ring_size = 1 << (2 * size - 1).bit_length()
        self.ring: list = [0] * ring_size
        self.mask = ring_size - 1
        #: prefix max of completion times through index ``_retired``.
        self.retire_frontier = 0
        self._retired = -1

    def advance_frontier(self, upto: int):
        """Fold completion times through index ``upto`` into the
        frontier.  Returns an unresolved :class:`PendingCompletion` the
        caller must wait on (then call again), or ``None`` once the
        frontier covers ``upto``."""
        ring, mask = self.ring, self.mask
        r, fmax = self._retired, self.retire_frontier
        while r < upto:
            done = ring[(r + 1) & mask]
            if type(done) is not int:
                if done.done_at is None:
                    self._retired, self.retire_frontier = r, fmax
                    return done
                done = done.done_at
                ring[(r + 1) & mask] = done
            r += 1
            if done > fmax:
                fmax = done
        self._retired, self.retire_frontier = r, fmax
        return None
