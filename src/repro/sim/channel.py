"""Blocking communication primitives built on the event kernel.

Three channel flavours cover every inter-module protocol used by the
architecture models:

* :class:`Fifo` — bounded queue with blocking ``put``/``get`` coroutines;
  used for unit issue queues and NoC link buffers.
* :class:`Rendezvous` — unbuffered synchronized exchange where a put and a
  get complete together; this is the primitive behind the ISA's
  *synchronized transfer* instructions.
* :class:`Mutex` / :class:`Resource` — exclusive or counted resource locks;
  used for shared-ADC arbitration and NoC link serialization.

All blocking operations are generator coroutines: call them with
``yield from`` inside a process.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from .kernel import Event, SimulationError, Simulator

__all__ = ["Fifo", "Rendezvous", "Mutex", "Resource", "ChannelError"]


class ChannelError(SimulationError):
    """Protocol misuse of a channel (e.g. nonblocking get on empty fifo)."""


class Fifo:
    """Bounded FIFO with blocking coroutine ``put``/``get``.

    ``capacity=None`` means unbounded (puts never block).
    """

    def __init__(self, sim: Simulator, capacity: int | None = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"fifo capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: deque[Any] = deque()
        self._not_full = Event(sim, f"{name}.not_full")
        self._not_empty = Event(sim, f"{name}.not_empty")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    # Notifications are edge-triggered AND waiter-gated: ``_not_empty``
    # fires only on the empty->nonempty transition and ``_not_full`` only
    # on full->notfull, and only when some coroutine is actually blocked
    # on that boundary.  Waiters re-check the queue state before blocking,
    # so a transition with nobody waiting needs no kernel callback at all
    # — steady-state streaming schedules nothing, and a consumer that
    # arrives after the transition sees the items directly.
    #
    # ``try_put``/``try_get`` are the frame-free twins of the coroutines'
    # nonblocking paths: hot loops call them first and fall into the
    # generator only when the queue would actually block.

    def put(self, item: Any) -> Generator:
        """Coroutine: append ``item``, blocking while the fifo is full."""
        items = self._items
        capacity = self.capacity
        if capacity is not None:
            while len(items) >= capacity:
                yield self._not_full
        items.append(item)
        if len(items) == 1 and self._not_empty._waiters:
            self._not_empty.notify()

    def get(self) -> Generator:
        """Coroutine: pop the oldest item, blocking while empty.

        The popped item is returned as the coroutine's value
        (``x = yield from fifo.get()``).
        """
        items = self._items
        while not items:
            yield self._not_empty
        item = items.popleft()
        capacity = self.capacity
        if capacity is not None and len(items) == capacity - 1 \
                and self._not_full._waiters:
            self._not_full.notify()
        return item

    def try_put(self, item: Any) -> bool:
        """Nonblocking put; returns False when full."""
        items = self._items
        capacity = self.capacity
        if capacity is not None and len(items) >= capacity:
            return False
        items.append(item)
        if len(items) == 1 and self._not_empty._waiters:
            self._not_empty.notify()
        return True

    def try_get(self) -> tuple[bool, Any]:
        """Nonblocking get; returns ``(ok, item)``."""
        items = self._items
        if not items:
            return False, None
        item = items.popleft()
        capacity = self.capacity
        if capacity is not None and len(items) == capacity - 1 \
                and self._not_full._waiters:
            self._not_full.notify()
        return True, item

    def peek(self) -> Any:
        """Return the oldest item without removing it."""
        if not self._items:
            raise ChannelError(f"peek on empty fifo {self.name!r}")
        return self._items[0]


class Rendezvous:
    """Unbuffered synchronized exchange keyed by an arbitrary tag.

    A ``put(tag, item)`` completes only when a ``get(tag)`` is pending for
    the same tag and vice versa — both sides resume at the same cycle.  This
    models the ISA's synchronized SEND/RECV semantics: the sender holds its
    data until the receiver is ready, so no unbounded buffering is assumed
    (the modelling point the paper makes against MNSIM2.0).
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._senders: dict[Any, deque[tuple[Any, Event]]] = {}
        self._receivers: dict[Any, deque[tuple[list, Event]]] = {}

    def put(self, tag: Any, item: Any) -> Generator:
        """Coroutine: offer ``item`` under ``tag``; block until matched."""
        receivers = self._receivers.get(tag)
        if receivers:
            slot, wake = receivers.popleft()
            if not receivers:
                del self._receivers[tag]
            slot.append(item)
            wake.notify()
            return
        wake = Event(self.sim, f"{self.name}.put[{tag}]")
        self._senders.setdefault(tag, deque()).append((item, wake))
        yield wake

    def get(self, tag: Any) -> Generator:
        """Coroutine: receive the item offered under ``tag``; block until
        a matching put arrives.  Returns the item."""
        senders = self._senders.get(tag)
        if senders:
            item, wake = senders.popleft()
            if not senders:
                del self._senders[tag]
            wake.notify()
            return item
        slot: list = []
        wake = Event(self.sim, f"{self.name}.get[{tag}]")
        self._receivers.setdefault(tag, deque()).append((slot, wake))
        yield wake
        return slot[0]

    @property
    def pending_sends(self) -> int:
        return sum(len(q) for q in self._senders.values())

    @property
    def pending_receives(self) -> int:
        return sum(len(q) for q in self._receivers.values())


class Mutex:
    """Exclusive lock with FIFO granting order."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Generator:
        """Coroutine: block until the lock is held by the caller."""
        while self._locked:
            wake = Event(self.sim, f"{self.name}.acquire")
            self._waiters.append(wake)
            yield wake
        self._locked = True

    def try_acquire(self) -> bool:
        """Nonblocking acquire; returns False when the lock is held.

        Equivalent to the no-suspension path of :meth:`acquire` (including
        its barging behaviour: an unlocked mutex is taken immediately even
        while released-but-not-yet-woken waiters are queued), minus the
        coroutine frame — the fast path for uncontended hot loops.
        """
        if self._locked:
            return False
        self._locked = True
        return True

    def release(self) -> None:
        if not self._locked:
            raise ChannelError(f"release of unlocked mutex {self.name!r}")
        self._locked = False
        if self._waiters:
            self._waiters.popleft().notify()


class Resource:
    """Counted resource: up to ``slots`` concurrent holders, FIFO waiting.

    Models shared hardware with limited parallelism, e.g. an ADC shared by
    the crossbars of a matrix execution unit.
    """

    def __init__(self, sim: Simulator, slots: int, name: str = "") -> None:
        if slots < 1:
            raise ValueError(f"resource needs >= 1 slot, got {slots}")
        self.sim = sim
        self.slots = slots
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.slots - self._in_use

    def acquire(self) -> Generator:
        """Coroutine: block until a slot is free, then take it."""
        while self._in_use >= self.slots:
            wake = Event(self.sim, f"{self.name}.acquire")
            self._waiters.append(wake)
            yield wake
        self._in_use += 1

    def try_acquire(self) -> bool:
        """Nonblocking acquire; returns False when all slots are taken.

        The frame-free twin of the no-suspension path of :meth:`acquire`
        (same barging semantics as :meth:`Mutex.try_acquire`).
        """
        if self._in_use >= self.slots:
            return False
        self._in_use += 1
        return True

    def release(self) -> None:
        if self._in_use <= 0:
            raise ChannelError(f"release of idle resource {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._waiters.popleft().notify()
