"""Model registry: look up the paper's evaluation networks by name.

``build_model("resnet18")`` returns the CIFAR-resolution variant used by
the default benchmark runs; pass ``imagenet=True`` for 224x224 inputs
(slower to simulate, same normalized trends — see DESIGN.md).
"""

from __future__ import annotations

from typing import Callable

from ..graph import Graph
from .alexnet import alexnet
from .attention import bert_tiny, vit_tiny
from .decode import gpt_tiny
from .googlenet import googlenet
from .resnet import resnet18
from .small import lenet5, mlp
from .squeezenet import squeezenet
from .vgg import vgg16, vgg8

__all__ = ["MODELS", "build_model", "FIG3_MODELS", "FIG5_MODELS",
           "ATTENTION_MODELS", "DECODE_MODELS"]

MODELS: dict[str, Callable[..., Graph]] = {
    "alexnet": alexnet,
    "lenet5": lenet5,
    "mlp": mlp,
    "googlenet": googlenet,
    "resnet18": resnet18,
    "squeezenet": squeezenet,
    "vgg8": vgg8,
    "vgg16": vgg16,
    "vit_tiny": vit_tiny,
    "bert_tiny": bert_tiny,
    "gpt_tiny": gpt_tiny,
}

#: the four networks of Fig. 3 / Fig. 4.
FIG3_MODELS = ("alexnet", "googlenet", "resnet18", "squeezenet")
#: the three networks of Fig. 5 (the MNSIM2.0 comparison).
FIG5_MODELS = ("vgg8", "vgg16", "resnet18")
#: the attention / transformer scenario (not part of the paper's figures).
ATTENTION_MODELS = ("vit_tiny", "bert_tiny")
#: the autoregressive decode scenario: seq-1 steps over a growing KV cache.
DECODE_MODELS = ("gpt_tiny",)

#: zoo entries that do not take an image input_shape.
_NON_IMAGE = ("mlp", "lenet5", "bert_tiny", "gpt_tiny")


def build_model(name: str, *, imagenet: bool = False,
                num_classes: int | None = None) -> Graph:
    """Instantiate a zoo network by name."""
    try:
        factory = MODELS[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODELS)}") from None
    if name in _NON_IMAGE:
        return factory(num_classes=num_classes or (2 if name == "bert_tiny"
                                                   else 10))
    if imagenet:
        return factory(input_shape=(3, 224, 224), num_classes=num_classes or 1000)
    return factory(input_shape=(3, 32, 32), num_classes=num_classes or 10)
