"""Autoregressive decode networks: one transformer decode step.

Where :mod:`repro.models.attention` models *prefill* (all tokens at
once), these networks model the workload that dominates LLM serving: a
single new token (``(dim, 1, 1)`` in the channel-first token layout)
attending over a growing key/value buffer.  Each layer's K/V projection
feeds a ``kv_cache`` node whose ``tokens`` attr is the cache extent of
*this* step and whose ``max_tokens`` is the capacity the compiler
provisions, so the graph of step ``t`` is the same graph with the extent
advanced (:func:`repro.graph.serialize.with_kv_extent`) — the property
the step-reusable compiled programs build on
(:func:`repro.compiler.compile_step_template`).

Per decode step the crossbar work (Q/K/V/proj/MLP projections of one
token) is constant while the dynamic vector work (scores, softmax,
context) grows linearly with the cache extent — exactly the asymmetry
continuous-batching schedulers exploit.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["decode_block", "gpt_tiny"]


def decode_block(b: GraphBuilder, name: str, dim: int, heads: int,
                 kv_tokens: int, max_kv_tokens: int, *,
                 mlp_ratio: int = 4) -> str:
    """Append one pre-LN decode block; returns its output node name.

    Expects the builder's current node to be the step's ``(dim, 1, 1)``
    hidden state.  Structure mirrors
    :func:`repro.models.attention.encoder_block` with the K/V
    projections routed through ``kv_cache`` buffers, so queries are
    seq-1 while keys/values span the whole cache.
    """
    if dim % heads:
        raise ValueError(f"{name}: dim={dim} not divisible by heads={heads}")
    inp = b.current
    ln1 = b.layernorm(after=inp, name=f"{name}_ln1")
    q = b.conv(dim, kernel=1, after=ln1, name=f"{name}_q")
    k = b.conv(dim, kernel=1, after=ln1, name=f"{name}_k")
    v = b.conv(dim, kernel=1, after=ln1, name=f"{name}_v")
    kc = b.kv_cache(kv_tokens, max_tokens=max_kv_tokens, after=k,
                    name=f"{name}_kcache")
    vc = b.kv_cache(kv_tokens, max_tokens=max_kv_tokens, after=v,
                    name=f"{name}_vcache")
    scores = b.matmul(q, kc, transpose_b=True, heads=heads,
                      scale=(dim // heads) ** -0.5, name=f"{name}_scores")
    attn = b.softmax(heads=heads, after=scores, name=f"{name}_attn")
    ctx = b.matmul(attn, vc, heads=heads, name=f"{name}_ctx")
    proj = b.conv(dim, kernel=1, after=ctx, name=f"{name}_proj")
    res1 = b.add(proj, inp, name=f"{name}_res1")
    b.layernorm(after=res1, name=f"{name}_ln2")
    b.conv(dim * mlp_ratio, kernel=1, name=f"{name}_mlp1")
    b.gelu(name=f"{name}_gelu")
    mlp = b.conv(dim, kernel=1, name=f"{name}_mlp2")
    return b.add(mlp, res1, name=f"{name}_res2")


def gpt_tiny(num_classes: int = 10, *, dim: int = 32, depth: int = 2,
             heads: int = 2, kv_tokens: int = 8,
             max_kv_tokens: int = 64) -> Graph:
    """A tiny GPT-class decoder modeling one autoregressive decode step.

    The input is the current token's embedding ``(dim, 1, 1)``; the body
    is a stack of pre-LN decode blocks attending over per-layer KV
    caches of extent ``kv_tokens`` (capacity ``max_kv_tokens``); the
    head projects the final hidden state to ``num_classes`` logits
    (standing in for the vocabulary).
    """
    if not 1 <= kv_tokens <= max_kv_tokens:
        raise ValueError(f"kv_tokens={kv_tokens} outside "
                         f"1..max_kv_tokens={max_kv_tokens}")
    b = GraphBuilder("gpt_tiny", (dim, 1, 1))
    for i in range(depth):
        decode_block(b, f"blk{i}", dim, heads, kv_tokens, max_kv_tokens)
    b.layernorm(name="final_ln")
    b.flatten(name="flat")
    b.fc(num_classes, name="head")
    return b.build()
