"""VGG-style networks: VGG-8 and VGG-16.

VGG-8 follows the 6-conv + 2-fc arrangement MNSIM2.0 ships for CIFAR; the
paper's Fig. 5 uses VGG-8/VGG-16 for the simulator comparison.  Both
networks are plain chains — no residual or concat joins — which is exactly
why the synchronized-vs-ideal communication gap is small on them.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["vgg8", "vgg16"]


def _conv_block(b: GraphBuilder, out_channels: int, n_convs: int) -> None:
    for _ in range(n_convs):
        b.conv(out_channels, kernel=3, padding=1)
        b.relu()
    b.maxpool(2)


def vgg8(input_shape: tuple[int, int, int] = (3, 32, 32),
         num_classes: int = 10) -> Graph:
    """VGG-8 (CIFAR scale): 6 conv layers in 3 blocks + 2 fc layers."""
    b = GraphBuilder("vgg8", input_shape)
    _conv_block(b, 128, 2)
    _conv_block(b, 256, 2)
    _conv_block(b, 512, 2)
    b.flatten()
    b.fc(1024)
    b.relu()
    b.fc(num_classes)
    return b.build()


def vgg16(input_shape: tuple[int, int, int] = (3, 32, 32),
          num_classes: int = 10) -> Graph:
    """VGG-16: 13 conv layers in 5 blocks + 3 fc layers.

    At CIFAR resolution the feature map reaches 1x1 after five 2x pools,
    so the classifier head shrinks accordingly (standard CIFAR-VGG16).
    """
    b = GraphBuilder("vgg16", input_shape)
    _conv_block(b, 64, 2)
    _conv_block(b, 128, 2)
    _conv_block(b, 256, 3)
    _conv_block(b, 512, 3)
    _conv_block(b, 512, 3)
    b.flatten()
    hidden = 4096 if input_shape[1] >= 224 else 512
    b.fc(hidden)
    b.relu()
    b.fc(hidden)
    b.relu()
    b.fc(num_classes)
    return b.build()
