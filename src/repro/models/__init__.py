"""Model zoo: the networks used in the paper's evaluation."""

from .alexnet import alexnet
from .attention import bert_tiny, encoder_block, vit_tiny
from .decode import decode_block, gpt_tiny
from .googlenet import googlenet
from .resnet import resnet18
from .small import lenet5, mlp
from .squeezenet import squeezenet
from .vgg import vgg8, vgg16
from .zoo import (
    ATTENTION_MODELS,
    DECODE_MODELS,
    FIG3_MODELS,
    FIG5_MODELS,
    MODELS,
    build_model,
)

__all__ = [
    "alexnet",
    "lenet5",
    "mlp",
    "googlenet",
    "resnet18",
    "squeezenet",
    "vgg8",
    "vgg16",
    "vit_tiny",
    "bert_tiny",
    "gpt_tiny",
    "encoder_block",
    "decode_block",
    "MODELS",
    "build_model",
    "FIG3_MODELS",
    "FIG5_MODELS",
    "ATTENTION_MODELS",
    "DECODE_MODELS",
]
