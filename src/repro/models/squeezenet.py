"""SqueezeNet 1.0 (Iandola et al., 2016) built from fire modules.

Each fire module squeezes with 1x1 convs then expands through parallel
1x1 and 3x3 branches joined by ``concat`` — the operator the paper notes
MNSIM2.0's open-source code cannot express.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["squeezenet"]


def _fire(b: GraphBuilder, in_name: str, squeeze: int, expand: int, tag: str) -> str:
    """Squeeze(1x1) -> expand(1x1 || 3x3) -> concat; returns output name."""
    b.conv(squeeze, kernel=1, after=in_name, name=f"{tag}_squeeze")
    sq = b.relu(name=f"{tag}_srelu")
    b.conv(expand, kernel=1, after=sq, name=f"{tag}_e1x1")
    left = b.relu(name=f"{tag}_e1relu")
    b.conv(expand, kernel=3, padding=1, after=sq, name=f"{tag}_e3x3")
    right = b.relu(name=f"{tag}_e3relu")
    return b.concat(left, right, name=f"{tag}_concat")


def squeezenet(input_shape: tuple[int, int, int] = (3, 32, 32),
               num_classes: int = 10) -> Graph:
    """Build SqueezeNet: stem conv + 8 fire modules + conv classifier."""
    b = GraphBuilder("squeezenet", input_shape)
    if input_shape[1] >= 224:
        b.conv(96, kernel=7, stride=2, name="stem_conv")
        b.relu(name="stem_relu")
        b.maxpool(3, stride=2, ceil_mode=True, name="stem_pool")
    else:
        b.conv(96, kernel=3, padding=1, name="stem_conv")
        b.relu(name="stem_relu")
        b.maxpool(2, name="stem_pool")
    x = b.current
    x = _fire(b, x, 16, 64, "fire2")
    x = _fire(b, x, 16, 64, "fire3")
    x = _fire(b, x, 32, 128, "fire4")
    x = b.maxpool(2, after=x, name="pool4")
    x = _fire(b, x, 32, 128, "fire5")
    x = _fire(b, x, 48, 192, "fire6")
    x = _fire(b, x, 48, 192, "fire7")
    x = _fire(b, x, 64, 256, "fire8")
    x = b.maxpool(2, after=x, name="pool8")
    x = _fire(b, x, 64, 256, "fire9")
    b.dropout(after=x, name="drop9")
    b.conv(num_classes, kernel=1, name="classifier_conv")
    b.relu(name="classifier_relu")
    b.global_avgpool(name="gap")
    b.flatten(name="flat")
    return b.build()
