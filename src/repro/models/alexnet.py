"""AlexNet (Krizhevsky et al., 2012) in this repo's graph IR.

Two variants: the canonical 224x224 ImageNet network, and a CIFAR-scaled
version (same 5-conv/3-fc structure with strides/pools adjusted for 32x32
inputs) used by the default benchmark runs.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["alexnet"]


def alexnet(input_shape: tuple[int, int, int] = (3, 32, 32),
            num_classes: int = 10) -> Graph:
    """Build AlexNet; the head/stride geometry adapts to the input size."""
    if input_shape[1] >= 224:
        return _alexnet_imagenet(input_shape, num_classes)
    return _alexnet_cifar(input_shape, num_classes)


def _alexnet_imagenet(input_shape: tuple[int, int, int], num_classes: int) -> Graph:
    b = GraphBuilder("alexnet", input_shape)
    b.conv(96, kernel=11, stride=4, padding=2)
    b.relu()
    b.lrn()
    b.maxpool(3, stride=2)
    b.conv(256, kernel=5, padding=2)
    b.relu()
    b.lrn()
    b.maxpool(3, stride=2)
    b.conv(384, kernel=3, padding=1)
    b.relu()
    b.conv(384, kernel=3, padding=1)
    b.relu()
    b.conv(256, kernel=3, padding=1)
    b.relu()
    b.maxpool(3, stride=2)
    b.flatten()
    b.fc(4096)
    b.relu()
    b.dropout()
    b.fc(4096)
    b.relu()
    b.dropout()
    b.fc(num_classes)
    return b.build()


def _alexnet_cifar(input_shape: tuple[int, int, int], num_classes: int) -> Graph:
    b = GraphBuilder("alexnet", input_shape)
    b.conv(96, kernel=5, stride=1, padding=2)
    b.relu()
    b.maxpool(2)
    b.conv(256, kernel=5, padding=2)
    b.relu()
    b.maxpool(2)
    b.conv(384, kernel=3, padding=1)
    b.relu()
    b.conv(384, kernel=3, padding=1)
    b.relu()
    b.conv(256, kernel=3, padding=1)
    b.relu()
    b.maxpool(2)
    b.flatten()
    b.fc(1024)
    b.relu()
    b.fc(512)
    b.relu()
    b.fc(num_classes)
    return b.build()
