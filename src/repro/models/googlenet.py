"""GoogLeNet / Inception-v1 (Szegedy et al., 2015).

Nine inception modules, each a four-way split (1x1 / 3x3 / 5x5 / pool-proj)
joined by ``concat``.  Auxiliary classifier heads are omitted — they exist
only for training and contribute nothing to inference latency.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["googlenet"]


def _inception(b: GraphBuilder, in_name: str, c1: int, c3r: int, c3: int,
               c5r: int, c5: int, pp: int, tag: str) -> str:
    """One inception module; returns the concat output name."""
    b.conv(c1, kernel=1, after=in_name, name=f"{tag}_1x1")
    b1 = b.relu(name=f"{tag}_1x1relu")

    b.conv(c3r, kernel=1, after=in_name, name=f"{tag}_3x3reduce")
    b.relu(name=f"{tag}_3x3rrelu")
    b.conv(c3, kernel=3, padding=1, name=f"{tag}_3x3")
    b2 = b.relu(name=f"{tag}_3x3relu")

    b.conv(c5r, kernel=1, after=in_name, name=f"{tag}_5x5reduce")
    b.relu(name=f"{tag}_5x5rrelu")
    b.conv(c5, kernel=5, padding=2, name=f"{tag}_5x5")
    b3 = b.relu(name=f"{tag}_5x5relu")

    b.maxpool(3, stride=1, padding=1, after=in_name, name=f"{tag}_pool")
    b.conv(pp, kernel=1, name=f"{tag}_poolproj")
    b4 = b.relu(name=f"{tag}_pprelu")

    return b.concat(b1, b2, b3, b4, name=f"{tag}_concat")


#: (c1, c3r, c3, c5r, c5, pool_proj) for the nine modules, per the paper.
_INCEPTION_PARAMS = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def googlenet(input_shape: tuple[int, int, int] = (3, 32, 32),
              num_classes: int = 10) -> Graph:
    """Build GoogLeNet: stem + inception 3a..5b + classifier."""
    b = GraphBuilder("googlenet", input_shape)
    if input_shape[1] >= 224:
        b.conv(64, kernel=7, stride=2, padding=3, name="stem_conv1")
        b.relu(name="stem_relu1")
        b.maxpool(3, stride=2, ceil_mode=True, name="stem_pool1")
        b.lrn(name="stem_lrn1")
        b.conv(64, kernel=1, name="stem_conv2")
        b.relu(name="stem_relu2")
        b.conv(192, kernel=3, padding=1, name="stem_conv3")
        b.relu(name="stem_relu3")
        b.lrn(name="stem_lrn2")
        b.maxpool(3, stride=2, ceil_mode=True, name="stem_pool2")
    else:
        # CIFAR stem: single downsampling step keeps 3a at 16x16.
        b.conv(64, kernel=3, padding=1, name="stem_conv1")
        b.relu(name="stem_relu1")
        b.conv(192, kernel=3, padding=1, name="stem_conv3")
        b.relu(name="stem_relu3")
        b.maxpool(2, name="stem_pool2")
    x = b.current
    x = _inception(b, x, *_INCEPTION_PARAMS["3a"], tag="i3a")
    x = _inception(b, x, *_INCEPTION_PARAMS["3b"], tag="i3b")
    x = b.maxpool(2, after=x, name="pool3")
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        x = _inception(b, x, *_INCEPTION_PARAMS[tag], tag=f"i{tag}")
    x = b.maxpool(2, after=x, name="pool4")
    x = _inception(b, x, *_INCEPTION_PARAMS["5a"], tag="i5a")
    x = _inception(b, x, *_INCEPTION_PARAMS["5b"], tag="i5b")
    b.global_avgpool(after=x, name="gap")
    b.flatten(name="flat")
    b.dropout(name="drop")
    b.fc(num_classes, name="classifier")
    return b.build()
