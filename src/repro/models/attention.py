"""Attention-based networks: a tiny vision transformer and a BERT-class
text encoder.

Token tensors use the channel-first convention of :mod:`repro.graph.ops`:
``(dim, tokens, 1)``.  Per-token linear projections (Q/K/V, the output
projection, the MLP) are 1x1 convolutions — crossbar-mapped weights like
any conv — while the *dynamic* pieces of attention (scores = Q.K^T,
softmax, context = scores.V) and the normalizations run on the vector
unit (``VMATMUL`` / ``VSOFTMAX`` / ``VLAYERNORM`` / ``VGELU``).  With
``compiler.attention_shards > 1`` the compiler splits each dynamic op's
token range across a shard group of cores (partial gathers back to the
home core), so long sequences scale out instead of serializing on one
vector unit.

Both models are deliberately "tiny": small enough that a cycle-accurate
simulation finishes in test time, while still exercising every layer the
real architectures do.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["encoder_block", "vit_tiny", "bert_tiny"]


def encoder_block(b: GraphBuilder, name: str, dim: int, heads: int,
                  *, mlp_ratio: int = 4) -> str:
    """Append one pre-LN transformer encoder block; returns its output.

    Expects the builder's current node to be a ``(dim, tokens, 1)`` token
    map.  Structure: LN -> multi-head self-attention -> residual add ->
    LN -> MLP (1x1 conv, gelu, 1x1 conv) -> residual add.
    """
    if dim % heads:
        raise ValueError(f"{name}: dim={dim} not divisible by heads={heads}")
    inp = b.current
    ln1 = b.layernorm(after=inp, name=f"{name}_ln1")
    q = b.conv(dim, kernel=1, after=ln1, name=f"{name}_q")
    k = b.conv(dim, kernel=1, after=ln1, name=f"{name}_k")
    v = b.conv(dim, kernel=1, after=ln1, name=f"{name}_v")
    scores = b.matmul(q, k, transpose_b=True, heads=heads,
                      scale=(dim // heads) ** -0.5, name=f"{name}_scores")
    attn = b.softmax(heads=heads, after=scores, name=f"{name}_attn")
    ctx = b.matmul(attn, v, heads=heads, name=f"{name}_ctx")
    proj = b.conv(dim, kernel=1, after=ctx, name=f"{name}_proj")
    res1 = b.add(proj, inp, name=f"{name}_res1")
    b.layernorm(after=res1, name=f"{name}_ln2")
    b.conv(dim * mlp_ratio, kernel=1, name=f"{name}_mlp1")
    b.gelu(name=f"{name}_gelu")
    mlp = b.conv(dim, kernel=1, name=f"{name}_mlp2")
    return b.add(mlp, res1, name=f"{name}_res2")


def vit_tiny(input_shape: tuple[int, int, int] = (3, 32, 32),
             num_classes: int = 10, *, dim: int = 64, depth: int = 2,
             heads: int = 2, patch: int | None = None) -> Graph:
    """A tiny vision transformer (ViT): patch embed + encoder stack.

    The patch embedding is a stride=kernel convolution; the resulting
    ``(dim, H/p, W/p)`` grid is reshaped to the ``(dim, tokens, 1)``
    token layout (a pure relayout the compiler folds away).  Mean pooling
    over tokens replaces the class token — standard for compact ViTs.
    """
    _c, h, w = input_shape
    if patch is None:
        patch = 4 if h <= 64 else 16
    if h % patch or w % patch:
        raise ValueError(f"input {h}x{w} not divisible by patch={patch}")
    tokens = (h // patch) * (w // patch)
    b = GraphBuilder("vit_tiny", input_shape)
    b.conv(dim, kernel=patch, stride=patch, name="patch_embed")
    b.reshape((dim, tokens, 1), name="to_tokens")
    for i in range(depth):
        encoder_block(b, f"blk{i}", dim, heads)
    b.layernorm(name="final_ln")
    b.global_avgpool(name="pool")
    b.flatten(name="flat")
    b.fc(num_classes, name="head")
    return b.build()


def bert_tiny(seq_len: int = 32, num_classes: int = 2, *, dim: int = 64,
              depth: int = 2, heads: int = 2) -> Graph:
    """A BERT-class text encoder: token embeddings in, classifier out.

    The input is the already-embedded token sequence ``(dim, seq, 1)``
    (embedding lookup is a memory gather, not crossbar work); the body is
    a stack of pre-LN encoder blocks; classification mean-pools the final
    hidden states.
    """
    b = GraphBuilder("bert_tiny", (dim, seq_len, 1))
    for i in range(depth):
        encoder_block(b, f"enc{i}", dim, heads)
    b.layernorm(name="final_ln")
    b.global_avgpool(name="pool")
    b.flatten(name="flat")
    b.fc(num_classes, name="head")
    return b.build()
