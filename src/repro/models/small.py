"""Small classic networks: LeNet-5 and a plain MLP.

Not part of the paper's evaluation, but useful as fast end-to-end
workloads and because they exercise compiler paths the big CNNs do not
(average pooling in the feature extractor; a network with *no*
convolutions at all).
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["lenet5", "mlp"]


def lenet5(input_shape: tuple[int, int, int] = (1, 28, 28),
           num_classes: int = 10) -> Graph:
    """LeNet-5 (LeCun et al., 1998): 2 conv+avgpool blocks, 3 fc layers."""
    b = GraphBuilder("lenet5", input_shape)
    b.conv(6, kernel=5, padding=2)
    b.relu()
    b.avgpool(2)
    b.conv(16, kernel=5)
    b.relu()
    b.avgpool(2)
    b.flatten()
    b.fc(120)
    b.relu()
    b.fc(84)
    b.relu()
    b.fc(num_classes)
    return b.build()


def mlp(input_shape: tuple[int, ...] = (784,),
        hidden: tuple[int, ...] = (256, 128),
        num_classes: int = 10) -> Graph:
    """A fully-connected classifier: flatten -> fc+relu stack -> fc."""
    b = GraphBuilder("mlp", input_shape)
    if len(input_shape) > 1:
        b.flatten()
    for width in hidden:
        b.fc(width)
        b.relu()
    b.fc(num_classes)
    return b.build()
