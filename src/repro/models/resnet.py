"""ResNet-18 (He et al., 2016) with basic residual blocks.

The residual ``add`` joins are the structural feature Fig. 5 exercises:
each add must synchronize results arriving from two different layer paths,
which is where synchronized transfers diverge from MNSIM2.0's ideal
asynchronous communication model.
"""

from __future__ import annotations

from ..graph import Graph, GraphBuilder

__all__ = ["resnet18"]


def _basic_block(b: GraphBuilder, in_name: str, channels: int, stride: int,
                 tag: str) -> str:
    """Two 3x3 convs + identity/projection shortcut; returns output name."""
    b.conv(channels, kernel=3, stride=stride, padding=1,
           after=in_name, name=f"{tag}_conv1")
    b.batchnorm(name=f"{tag}_bn1")
    b.relu(name=f"{tag}_relu1")
    b.conv(channels, kernel=3, padding=1, name=f"{tag}_conv2")
    main = b.batchnorm(name=f"{tag}_bn2")
    if stride != 1:
        shortcut = b.conv(channels, kernel=1, stride=stride,
                          after=in_name, name=f"{tag}_proj")
    else:
        shortcut = in_name
    b.add(main, shortcut, name=f"{tag}_add")
    return b.relu(name=f"{tag}_relu2")


def resnet18(input_shape: tuple[int, int, int] = (3, 32, 32),
             num_classes: int = 10) -> Graph:
    """Build ResNet-18: stem + 4 stages x 2 basic blocks + classifier."""
    b = GraphBuilder("resnet18", input_shape)
    if input_shape[1] >= 224:
        b.conv(64, kernel=7, stride=2, padding=3, name="stem_conv")
        b.batchnorm(name="stem_bn")
        b.relu(name="stem_relu")
        b.maxpool(3, stride=2, padding=1, name="stem_pool")
    else:
        # CIFAR stem: 3x3, no aggressive downsampling.
        b.conv(64, kernel=3, padding=1, name="stem_conv")
        b.batchnorm(name="stem_bn")
        b.relu(name="stem_relu")
    x = b.current
    stage_channels = (64, 128, 256, 512)
    for stage, channels in enumerate(stage_channels, start=1):
        for block in (1, 2):
            stride = 2 if (stage > 1 and block == 1) else 1
            x = _basic_block(b, x, channels, stride, tag=f"s{stage}b{block}")
    b.global_avgpool(after=x, name="gap")
    b.flatten(name="flat")
    b.fc(num_classes, name="classifier")
    return b.build()
