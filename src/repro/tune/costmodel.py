"""Analytic cost model: score a compiled candidate without simulating.

The compiler already records everything a first-order performance model
needs — per-core crossbar loads, the full flow table (message counts,
bytes, endpoints), per-run closed-form unit latencies and the group
tables MVM latencies derive from.  :class:`CostModel` turns one
:class:`~repro.compiler.CompilationResult` plus its resolved
configuration into a :class:`CostEstimate` in a few milliseconds, so the
tuner can rank an entire knob grid before paying for a single
simulation.

The latency term is an ``AnalyticWindow``-style in-order walk per core
(the ROB-stall closed form of :mod:`repro.sim.analytic`, applied
statically): instruction ``i`` may allocate no earlier than the in-order
retirement frontier over instructions ``<= i - rob_size``, each unit
serializes (crossbar groups stay concurrent, like the matrix unit), and
completion times come from :func:`repro.arch.units.unit_latency` — the
same arithmetic the fast-fidelity executor and the compiler's per-run
metadata use.  The chip estimate is the max over cores; a per-flow
``bytes x XY-hops`` pressure term is reported alongside (and is what the
energy estimate charges the NoC with).

The contract is *rank* fidelity, not absolute accuracy: estimates ignore
inter-core blocking so they undershoot measured cycles, but they order
candidates correctly — pinned by rank-correlation and monotonicity tests
in ``tests/test_tune.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.units import unit_latency
from ..compiler import CompilationResult
from ..config import ArchConfig
from ..isa import VECTOR_SPECIAL_OPS

__all__ = ["CostEstimate", "CostModel", "OBJECTIVES"]

#: Tuning objectives: minimize latency (cycles), energy (pJ), or their
#: product (energy-delay product).
OBJECTIVES = ("latency", "energy", "edp")


@dataclass(frozen=True)
class CostEstimate:
    """Analytic score of one candidate (see :class:`CostModel`)."""

    #: critical-core cycle estimate (max of the per-core window walks).
    cycles: int
    #: analytic dynamic-energy estimate in picojoules.
    energy_pj: float
    #: per-core walk results (diagnostic; the max is :attr:`cycles`).
    per_core_cycles: dict[int, int] = field(default_factory=dict)
    #: serialized NoC pressure: sum over flows of messages x (hop delay
    #: + link serialization) in cycles.
    flow_cycles: int = 0

    def objective(self, objective: str) -> float:
        """The scalar the tuner minimizes."""
        if objective == "latency":
            return float(self.cycles)
        if objective == "energy":
            return self.energy_pj
        if objective == "edp":
            return self.cycles * self.energy_pj
        raise ValueError(
            f"objective must be one of {OBJECTIVES}, got {objective!r}")

    def to_dict(self) -> dict:
        return {"cycles": self.cycles, "energy_pj": self.energy_pj,
                "flow_cycles": self.flow_cycles}


class CostModel:
    """Scores compiled candidates from compile-time records only."""

    def estimate(self, compiled: CompilationResult,
                 config: ArchConfig) -> CostEstimate:
        chip = compiled.program
        per_core = {
            core: self._core_walk(program, config)
            for core, program in chip.programs.items()
        }
        flow_cycles = self._flow_pressure(chip, config)
        cycles = max(per_core.values(), default=0)
        energy = self._energy(chip, config)
        return CostEstimate(cycles=cycles, energy_pj=energy,
                            per_core_cycles=per_core,
                            flow_cycles=flow_cycles)

    # -- latency -------------------------------------------------------------

    def _core_walk(self, program, config: ArchConfig) -> int:
        """In-order window walk over one core's straight-line program.

        Mirrors :class:`~repro.sim.analytic.AnalyticWindow`'s retirement
        frontier: with a ROB of ``R`` entries, instruction ``i`` cannot
        allocate before every instruction through ``i - R`` has retired,
        and retirement is in order (the prefix max of completion times).
        Units execute serially except the matrix unit, whose crossbar
        groups each have their own converters.
        """
        groups = program.groups.groups if program.groups is not None else {}
        core = config.core
        chip = config.chip
        front_lat = core.decode_cycles + core.dispatch_cycles
        rob = core.rob_size
        gmem_bw = chip.global_memory_bytes_per_cycle
        gmem_lat = chip.global_memory_latency_cycles
        prefix_max: list[int] = []  # retirement frontier through index i
        unit_free: dict = {}
        t_fetch = 0
        last = 0
        for i, inst in enumerate(program.instructions):
            t_fetch += 1  # fetch_width=1: one allocation per cycle
            if i >= rob:
                t_fetch = max(t_fetch, prefix_max[i - rob])
            unit = inst.unit
            key = (unit, inst.group) if unit == "matrix" else unit
            start = max(t_fetch + front_lat, unit_free.get(key, 0))
            lat = unit_latency(inst, config, groups)
            if unit == "transfer" and inst.op in ("LOAD", "STORE"):
                # unit_latency covers only the local-memory fill/drain;
                # the global-memory round trip is deterministic too.
                lat += gmem_lat + -(-inst.bytes // gmem_bw)
            done = start + lat
            unit_free[key] = done
            prefix_max.append(max(prefix_max[-1], done) if prefix_max
                              else done)
            if done > last:
                last = done
        return last

    def _flow_pressure(self, chip, config: ArchConfig) -> int:
        """Serialized flow cycles: messages x (XY hop delay + link time)."""
        noc = config.noc
        total = 0
        for flow in chip.flows.values():
            sx, sy = config.core_xy(flow.src_core)
            dx, dy = config.core_xy(flow.dst_core)
            hops = abs(sx - dx) + abs(sy - dy)
            per_message = hops * noc.hop_cycles + -(
                -flow.bytes_per_message // noc.link_bytes_per_cycle)
            total += flow.n_messages * per_message
        return total

    # -- energy --------------------------------------------------------------

    def _energy(self, chip, config: ArchConfig) -> float:
        """First-order dynamic energy: crossbar reads + converters, vector
        elements (MACs / transcendentals priced separately), local/global
        memory bytes, and flow bytes x hops on the mesh."""
        xbar = config.crossbar
        energy = config.energy
        total = 0.0
        mvm_dac = xbar.rows * xbar.dac_phases * energy.dac_pj_per_conversion
        mvm_adc = (xbar.samples_per_phase * xbar.dac_phases
                   * energy.adc_pj_per_sample)
        for program in chip.programs.values():
            groups = program.groups.groups \
                if program.groups is not None else {}
            for inst in program.instructions:
                unit = inst.unit
                if unit == "matrix":
                    group = groups[inst.group]
                    cells = group.rows * group.cols
                    total += inst.count * (
                        cells * energy.xbar_read_pj_per_cell
                        + mvm_dac + mvm_adc)
                elif unit == "vector":
                    if inst.op == "VMATMUL":
                        total += inst.length * energy.vector_mac_pj
                    elif inst.op in VECTOR_SPECIAL_OPS:
                        total += (inst.length
                                  * energy.vector_special_pj_per_element)
                    else:
                        total += inst.length * energy.vector_pj_per_element
                elif unit == "transfer":
                    if inst.op in ("LOAD", "STORE"):
                        total += inst.bytes * energy.global_mem_pj_per_byte
                    else:
                        total += inst.bytes * energy.local_mem_pj_per_byte
                else:
                    total += energy.scalar_pj_per_op
        for flow in chip.flows.values():
            sx, sy = config.core_xy(flow.src_core)
            dx, dy = config.core_xy(flow.dst_core)
            hops = abs(sx - dx) + abs(sy - dy)
            total += (flow.n_messages * flow.bytes_per_message * hops
                      * energy.noc_pj_per_byte_hop)
        return total
