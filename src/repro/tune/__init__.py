"""Design-space autotuning: cost model, candidate search, tune reports.

``repro.tune`` turns the simulator from a measurement instrument into an
optimizer: :class:`CostModel` scores compiled candidates analytically
(no simulation), :class:`Tuner` searches the mapping / ROB / shard /
placement knob space under a measurement budget, and :class:`TuneReport`
records the full cost-vs-measured table with the winning configuration
delta.  ``pimsim tune`` is the CLI front end.
"""

from .costmodel import OBJECTIVES, CostEstimate, CostModel
from .search import Candidate, Tuner, TuneEntry, TuneReport, evaluate_jobs

__all__ = [
    "CostModel",
    "CostEstimate",
    "OBJECTIVES",
    "Candidate",
    "Tuner",
    "TuneEntry",
    "TuneReport",
    "evaluate_jobs",
]
