"""Cost-model-guided design-space search over the compiler/core knobs.

:class:`Tuner` explores the cross product of the knobs a deployment can
actually turn — mapping policy, ROB capacity, attention shard count and
shard-group placement — without simulating the whole grid:

1. **Enumerate** every distinct candidate (shard knobs collapse for
   networks with no shardable stage, placements collapse at one shard,
   shard counts are capped at the chip's core count).
2. **Score** each candidate with the analytic
   :class:`~repro.tune.costmodel.CostModel`.  Scoring compiles (through
   the engine's compile cache — ROB size and fidelity share one entry
   per structure) but never simulates.
3. **Prune** to the ``budget`` best-estimated candidates and measure the
   survivors at ``fidelity="fast"``.
4. **Re-verify** the ``top_k`` measured leaders at ``fidelity="cycle"``
   and measure both built-in mapping baselines at the base
   configuration, also at cycle fidelity.

Every measurement streams to a JSONL *journal* as it lands (same
crash-safe discipline as ``pimsim batch``): ``tune(journal=...,
resume=True)`` replays only the measurements the journal does not
already cover.  The result is a JSON-round-trippable
:class:`TuneReport`: the full cost-vs-measured table, the winning
:class:`~repro.config.ArchConfig` delta and the speedup against both
built-in mappings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..config import SHARD_PLACEMENTS, ArchConfig
from ..engine import Engine, JobFailed, JobSpec, resolve_engine
from .costmodel import OBJECTIVES, CostModel

__all__ = ["Candidate", "Tuner", "TuneEntry", "TuneReport", "evaluate_jobs"]

#: both built-in mapping policies — the tuner always covers (and
#: baselines against) the full set.
MAPPINGS = ("utilization_first", "performance_first")


def evaluate_jobs(specs: Iterable[JobSpec], *, engine: Engine | None = None,
                  workers: int | None = 1) -> list:
    """Run specs through an engine, capturing failures as results.

    The one evaluation path shared by the tuner and
    :func:`repro.explore.explore`: results come back in spec order, with
    :class:`~repro.engine.JobFailed` entries in place of reports for jobs
    that raised (``errors="capture"``).
    """
    specs = list(specs)
    if not specs:
        return []
    return resolve_engine(engine).map(specs, workers=workers,
                                      errors="capture")


@dataclass(frozen=True)
class Candidate:
    """One point of the design space: the four tuned knobs."""

    mapping: str
    rob_size: int
    attention_shards: int = 1
    shard_placement: str = "distance"

    def key(self) -> str:
        """Stable human-readable identity, e.g.
        ``performance_first/rob16/shards4/load_aware``."""
        return (f"{self.mapping}/rob{self.rob_size}/"
                f"shards{self.attention_shards}/{self.shard_placement}")

    def to_dict(self) -> dict:
        return {"mapping": self.mapping, "rob_size": self.rob_size,
                "attention_shards": self.attention_shards,
                "shard_placement": self.shard_placement}

    @classmethod
    def from_dict(cls, data: dict) -> "Candidate":
        return cls(**data)

    def spec(self, network, config: ArchConfig, *,
             fidelity: str | None = None) -> JobSpec:
        """The :class:`~repro.engine.JobSpec` measuring this candidate.

        ``shard_placement`` travels in the configuration (it has no
        per-job override field); the other knobs use the spec's override
        fields so the engine's ``_job_config`` precedence applies.
        """
        cfg = config
        if cfg.compiler.shard_placement != self.shard_placement:
            cfg = cfg.with_shard_placement(self.shard_placement)
        return JobSpec(network, config=cfg, mapping=self.mapping,
                       rob_size=self.rob_size,
                       attention_shards=self.attention_shards,
                       fidelity=fidelity, tag=self.key())


@dataclass
class TuneEntry:
    """One candidate's row of the cost-vs-measured table."""

    candidate: Candidate
    #: :meth:`CostEstimate.to_dict` of the analytic score.
    estimate: dict | None = None
    #: the scalar the tuner ranked by (cost-model units).
    estimated_objective: float | None = None
    #: cut by the cost model before any simulation.
    pruned: bool = False
    #: fast-fidelity measurement ``{"cycles", "energy_pj", "fidelity"}``.
    fast: dict | None = None
    #: cycle-fidelity re-verification (top-k only).
    cycle: dict | None = None
    error: str | None = None

    @property
    def measured(self) -> dict | None:
        """Best available measurement (cycle wins over fast)."""
        return self.cycle if self.cycle is not None else self.fast

    def to_dict(self) -> dict:
        out: dict = {"candidate": self.candidate.to_dict()}
        for key in ("estimate", "estimated_objective", "fast", "cycle",
                    "error"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.pruned:
            out["pruned"] = True
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TuneEntry":
        return cls(candidate=Candidate.from_dict(data["candidate"]),
                   estimate=data.get("estimate"),
                   estimated_objective=data.get("estimated_objective"),
                   pruned=data.get("pruned", False),
                   fast=data.get("fast"), cycle=data.get("cycle"),
                   error=data.get("error"))


@dataclass
class TuneReport:
    """Everything a tuning run decided, measured and concluded."""

    network: str
    objective: str
    budget: int
    entries: list[TuneEntry] = field(default_factory=list)
    #: mapping -> cycle-fidelity measurement at the base configuration.
    baselines: dict[str, dict] = field(default_factory=dict)
    winner: Candidate | None = None
    #: cycle-verified measurement of the winner.
    winner_measured: dict | None = None
    #: mapping -> baseline objective / winner objective (>1: tuner wins).
    speedups: dict[str, float] = field(default_factory=dict)
    #: dotted config path -> ``{"base": ..., "tuned": ...}``.
    config_delta: dict[str, dict] = field(default_factory=dict)
    #: measurements replayed from the journal instead of re-run.
    resumed: int = 0

    # -- derived -------------------------------------------------------------

    @property
    def considered(self) -> int:
        return len(self.entries)

    @property
    def pruned(self) -> int:
        return sum(1 for e in self.entries if e.pruned)

    @property
    def evaluated(self) -> int:
        return sum(1 for e in self.entries
                   if e.fast is not None or e.error is not None)

    def summary(self) -> str:
        lines = [f"tune {self.network} (objective={self.objective}): "
                 f"{self.considered} candidates, {self.pruned} pruned by "
                 f"cost model, {self.evaluated} measured"
                 + (f", {self.resumed} resumed" if self.resumed else "")]
        width = max((len(e.candidate.key()) for e in self.entries),
                    default=10)
        for entry in sorted(
                self.entries,
                key=lambda e: (e.measured is None,
                               (e.measured or {}).get("cycles", 0))):
            meas = entry.measured
            if entry.error is not None:
                shown = f"FAILED: {entry.error}"
            elif meas is None:
                shown = "pruned"
            else:
                shown = (f"{meas['cycles']:>12,} cycles "
                         f"[{meas['fidelity']}]")
            est = entry.estimate["cycles"] if entry.estimate else 0
            lines.append(f"  {entry.candidate.key():<{width}} "
                         f"est={est:>10,}  {shown}")
        for mapping, meas in self.baselines.items():
            lines.append(f"  baseline {mapping:<{width - 9}} "
                         f"{meas['cycles']:>12,} cycles "
                         f"[{meas['fidelity']}]")
        if self.winner is not None:
            lines.append(f"winner: {self.winner.key()} = "
                         f"{self.winner_measured['cycles']:,} cycles")
            for mapping, speedup in self.speedups.items():
                lines.append(f"  {speedup:.2f}x vs {mapping}")
            for path, delta in self.config_delta.items():
                lines.append(f"  {path}: {delta['base']!r} -> "
                             f"{delta['tuned']!r}")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "objective": self.objective,
            "budget": self.budget,
            "entries": [e.to_dict() for e in self.entries],
            "baselines": self.baselines,
            "winner": self.winner.to_dict() if self.winner else None,
            "winner_measured": self.winner_measured,
            "speedups": self.speedups,
            "config_delta": self.config_delta,
            "resumed": self.resumed,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, data: dict) -> "TuneReport":
        winner = data.get("winner")
        return cls(
            network=data["network"],
            objective=data["objective"],
            budget=data["budget"],
            entries=[TuneEntry.from_dict(e) for e in data.get("entries", [])],
            baselines=data.get("baselines", {}),
            winner=Candidate.from_dict(winner) if winner else None,
            winner_measured=data.get("winner_measured"),
            speedups=data.get("speedups", {}),
            config_delta=data.get("config_delta", {}),
            resumed=data.get("resumed", 0),
        )

    @classmethod
    def from_json(cls, text: str) -> "TuneReport":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "TuneReport":
        return cls.from_json(Path(path).read_text())


# -- journal -----------------------------------------------------------------


def _read_tune_journal(path) -> dict:
    """Measurements already settled in a tune journal.

    Returns ``{(candidate_key, fidelity): record}`` for candidate
    measurements and ``{("baseline", mapping): record}`` for baselines.
    Torn trailing lines and foreign lines are skipped, exactly like the
    ``pimsim batch`` journal reader.
    """
    done: dict = {}
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return done
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict):
            continue
        if "baseline" in record and "report" in record:
            done[("baseline", record["baseline"])] = record
        elif "key" in record and "fidelity" in record \
                and ("report" in record or "error" in record):
            done[(record["key"], record["fidelity"])] = record
    return done


class _Journal:
    """Append-only JSONL sink, flushed per record (``None`` path: no-op)."""

    def __init__(self, path):
        self._path = Path(path) if path is not None else None
        if self._path is not None and self._path.exists():
            # Terminate a torn final line from a crashed predecessor so
            # our first record starts on a fresh line (batch idiom).
            tail = self._path.read_bytes()[-1:]
            if tail and tail != b"\n":
                with self._path.open("ab") as fh:
                    fh.write(b"\n")

    def write(self, record: dict) -> None:
        if self._path is None:
            return
        with self._path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
            fh.flush()


# -- the tuner ---------------------------------------------------------------


class Tuner:
    """Load-aware, cost-model-guided autotuner (see module docstring).

    Parameters
    ----------
    network:
        Zoo model name or in-memory :class:`~repro.graph.Graph`.
    config:
        Base architecture configuration (``None``: the engine's
        default).  Baselines and the winner's delta are reported
        against it.
    objective:
        ``"latency"``, ``"energy"`` or ``"edp"``.
    budget:
        How many candidates survive cost-model pruning and get a
        fast-fidelity measurement.
    top_k:
        How many measured leaders are re-verified at cycle fidelity.
    rob_sizes / shard_counts / placements:
        The knob grid.  Shard counts are capped at the chip's core
        count; shard knobs collapse to 1/"distance" for networks
        without shardable stages.
    engine / workers:
        Where and how wide measurements run.
    """

    def __init__(self, network, config: ArchConfig | None = None, *,
                 objective: str = "latency", budget: int = 8,
                 top_k: int = 2,
                 rob_sizes: tuple = (1, 4, 8, 16, 32),
                 shard_counts: tuple = (1, 2, 4, 8),
                 placements: tuple = SHARD_PLACEMENTS,
                 engine: Engine | None = None, workers: int = 1):
        if objective not in OBJECTIVES:
            raise ValueError(
                f"objective must be one of {OBJECTIVES}, got {objective!r}")
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {top_k}")
        for placement in placements:
            if placement not in SHARD_PLACEMENTS:
                raise ValueError(
                    f"placements must be drawn from {SHARD_PLACEMENTS}, "
                    f"got {placement!r}")
        self.network = network
        self.config = config
        self.objective = objective
        self.budget = budget
        self.top_k = top_k
        self.rob_sizes = tuple(rob_sizes)
        self.shard_counts = tuple(shard_counts)
        self.placements = tuple(placements)
        self.engine = engine
        self.workers = workers
        self.cost_model = CostModel()

    # -- candidate generation ------------------------------------------------

    def candidates(self, base: ArchConfig, shardable: bool) -> list[Candidate]:
        """The deduplicated knob grid for this network/chip."""
        n_cores = base.chip.n_cores
        shard_counts = sorted({min(s, n_cores) for s in self.shard_counts
                               if s >= 1}) if shardable else [1]
        out: list[Candidate] = []
        seen: set = set()
        for mapping in MAPPINGS:
            for rob in self.rob_sizes:
                for shards in shard_counts:
                    placements = self.placements if shards > 1 \
                        else ("distance",)
                    for placement in placements:
                        cand = Candidate(mapping, rob, shards, placement)
                        if cand.key() not in seen:
                            seen.add(cand.key())
                            out.append(cand)
        return out

    # -- measurement helpers -------------------------------------------------

    def _measured_objective(self, measured: dict) -> float:
        if self.objective == "latency":
            return float(measured["cycles"])
        if self.objective == "energy":
            return measured["energy_pj"]
        return measured["cycles"] * measured["energy_pj"]

    @staticmethod
    def _measurement(report) -> dict:
        return {"cycles": report.cycles,
                "energy_pj": report.total_energy_pj,
                "fidelity": report.fidelity}

    def _measure(self, entries: list[TuneEntry], base: ArchConfig,
                 fidelity: str, engine: Engine, journal: _Journal,
                 seen: dict) -> int:
        """Fill ``entry.fast`` or ``entry.cycle`` for every entry,
        replaying journaled measurements and streaming fresh ones.
        Returns how many came from the journal."""
        slot = "fast" if fidelity == "fast" else "cycle"
        resumed = 0
        to_run: list[TuneEntry] = []
        for entry in entries:
            record = seen.get((entry.candidate.key(), fidelity))
            if record is None:
                to_run.append(entry)
                continue
            resumed += 1
            if "report" in record:
                setattr(entry, slot, record["report"])
            else:
                entry.error = record["error"]
        if to_run:
            specs = [e.candidate.spec(self.network, base, fidelity=fidelity)
                     for e in to_run]
            for index, outcome in engine.as_completed(
                    specs, workers=self.workers, errors="capture"):
                entry = to_run[index]
                record: dict = {"key": entry.candidate.key(),
                                "candidate": entry.candidate.to_dict(),
                                "fidelity": fidelity}
                if isinstance(outcome, JobFailed):
                    entry.error = f"{outcome.kind}: {outcome.message}"
                    record["error"] = entry.error
                else:
                    setattr(entry, slot, self._measurement(outcome))
                    record["report"] = getattr(entry, slot)
                journal.write(record)
        return resumed

    # -- the run -------------------------------------------------------------

    def tune(self, *, journal=None, resume: bool = False) -> TuneReport:
        """Run the search; returns the full :class:`TuneReport`.

        ``journal``: JSONL path streamed as measurements land.
        ``resume=True`` replays measurements already in the journal.
        """
        engine = resolve_engine(self.engine)
        base_compiled, base = engine.compile_for(
            JobSpec(self.network, config=self.config))
        network_name = base_compiled.program.meta.get(
            "network", self.network if isinstance(self.network, str)
            else getattr(self.network, "name", "graph"))
        shardable = any(stage.kind == "aux" and stage.shardable
                        for stage in base_compiled.pipeline)

        # 1-2. enumerate + score analytically (compile-only, cached).
        entries = []
        for cand in self.candidates(base, shardable):
            compiled, cfg = engine.compile_for(cand.spec(self.network, base))
            estimate = self.cost_model.estimate(compiled, cfg)
            entries.append(TuneEntry(
                candidate=cand, estimate=estimate.to_dict(),
                estimated_objective=estimate.objective(self.objective)))

        # 3. prune to budget, measure survivors at fast fidelity.
        entries.sort(key=lambda e: (e.estimated_objective, e.candidate.key()))
        survivors = entries[:self.budget]
        for entry in entries[self.budget:]:
            entry.pruned = True

        seen = _read_tune_journal(journal) if (resume and journal) else {}
        sink = _Journal(journal)
        resumed = self._measure(survivors, base, "fast", engine, sink, seen)

        # 4. cycle-verify the measured leaders.
        measured = [e for e in survivors if e.fast is not None
                    and e.error is None]
        measured.sort(key=lambda e: (self._measured_objective(e.fast),
                                     e.candidate.key()))
        top = measured[:self.top_k]
        resumed += self._measure(top, base, "cycle", engine, sink, seen)

        # Baselines: both built-in mappings at the base configuration.
        baselines: dict[str, dict] = {}
        for mapping in MAPPINGS:
            record = seen.get(("baseline", mapping))
            if record is not None:
                baselines[mapping] = record["report"]
                resumed += 1
                continue
            outcome = evaluate_jobs(
                [JobSpec(self.network, config=base, mapping=mapping,
                         fidelity="cycle", tag=f"baseline:{mapping}")],
                engine=engine, workers=1)[0]
            if isinstance(outcome, JobFailed):  # pragma: no cover - defensive
                continue
            baselines[mapping] = self._measurement(outcome)
            sink.write({"baseline": mapping, "report": baselines[mapping]})

        report = TuneReport(network=network_name, objective=self.objective,
                            budget=self.budget, entries=entries,
                            baselines=baselines, resumed=resumed)

        verified = [e for e in top if e.cycle is not None and e.error is None]
        if verified:
            winner = min(verified,
                         key=lambda e: (self._measured_objective(e.cycle),
                                        e.candidate.key()))
            report.winner = winner.candidate
            report.winner_measured = winner.cycle
            win_obj = self._measured_objective(winner.cycle)
            for mapping, meas in baselines.items():
                base_obj = self._measured_objective(meas)
                if win_obj > 0:
                    report.speedups[mapping] = base_obj / win_obj
            _, winner_cfg = engine.compile_for(
                winner.candidate.spec(self.network, base))
            report.config_delta = _config_delta(base, winner_cfg)

        sink.write({"summary": {
            "network": report.network, "objective": report.objective,
            "considered": report.considered, "pruned": report.pruned,
            "evaluated": report.evaluated, "resumed": report.resumed,
            "winner": report.winner.key() if report.winner else None,
        }})
        return report


def _config_delta(base: ArchConfig, tuned: ArchConfig) -> dict[str, dict]:
    """Leaves that differ between two configurations, as dotted paths.

    ``name`` and the ``sim`` section are skipped — they never change what
    gets built, mirroring the compile-cache fingerprint.
    """
    delta: dict[str, dict] = {}

    def walk(prefix: str, a, b) -> None:
        if isinstance(a, dict) and isinstance(b, dict):
            for key in a:
                walk(f"{prefix}.{key}" if prefix else key, a[key], b[key])
        elif a != b:
            delta[prefix] = {"base": a, "tuned": b}

    base_d, tuned_d = base.to_dict(), tuned.to_dict()
    for section in ("name", "sim"):
        base_d.pop(section, None)
        tuned_d.pop(section, None)
    walk("", base_d, tuned_d)
    return delta
