"""Network-description IR: graph, operators, builder, serialization."""

from .builder import GraphBuilder
from .execute import execute, random_weights
from .ir import Graph, GraphError, Node, Tensor
from .ops import (
    OPS,
    STATEFUL_OPS,
    TOKEN_SHARDABLE_OPS,
    conv_out_hw,
    infer_shape,
    is_elementwise,
    is_token_shardable,
    is_weight_op,
    weight_shape,
)
from .serialize import (
    graph_from_dict,
    graph_to_dict,
    kv_extent,
    load_graph,
    save_graph,
    with_kv_extent,
)

__all__ = [
    "Graph",
    "Node",
    "Tensor",
    "GraphError",
    "GraphBuilder",
    "execute",
    "random_weights",
    "OPS",
    "infer_shape",
    "weight_shape",
    "is_weight_op",
    "is_elementwise",
    "is_token_shardable",
    "TOKEN_SHARDABLE_OPS",
    "STATEFUL_OPS",
    "conv_out_hw",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "kv_extent",
    "with_kv_extent",
]
