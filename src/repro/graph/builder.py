"""Fluent builder for network descriptions.

:class:`GraphBuilder` keeps a "current" node so chain-style networks read
top-to-bottom, while still allowing explicit wiring for residual/inception
topologies::

    b = GraphBuilder("toy", input_shape=(3, 32, 32))
    b.conv(16, kernel=3, padding=1).relu().maxpool(2)
    trunk = b.current
    left = b.conv(16, kernel=1, after=trunk)
    right = b.conv(16, kernel=3, padding=1, after=trunk)
    b.add(left, right).relu().global_avgpool().flatten().fc(10)
    net = b.build()
"""

from __future__ import annotations

from typing import Any

from .ir import Graph, GraphError, Node

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Incrementally constructs a :class:`~repro.graph.ir.Graph`."""

    def __init__(self, name: str, input_shape: tuple[int, ...],
                 input_name: str = "input") -> None:
        self.graph = Graph(name)
        self._counts: dict[str, int] = {}
        self.current: str = input_name
        self.graph.add(Node(input_name, "input", attrs={"shape": tuple(input_shape)}))

    # -- plumbing -------------------------------------------------------------

    def _fresh_name(self, op: str, name: str | None) -> str:
        if name is not None:
            return name
        self._counts[op] = self._counts.get(op, 0) + 1
        return f"{op}{self._counts[op]}"

    def _resolve(self, after: str | None) -> str:
        return self.current if after is None else after

    def op(self, op: str, *, inputs: list[str], name: str | None = None,
           **attrs: Any) -> str:
        """Add an arbitrary node; returns its name and makes it current."""
        node_name = self._fresh_name(op, name)
        self.graph.add(Node(node_name, op, inputs=list(inputs), attrs=attrs))
        self.current = node_name
        return node_name

    # -- single-input layers ----------------------------------------------------

    def conv(self, out_channels: int, kernel: int, *, stride: int = 1,
             padding: int = 0, after: str | None = None,
             name: str | None = None) -> str:
        return self.op("conv", inputs=[self._resolve(after)], name=name,
                       out_channels=out_channels, kernel=kernel,
                       stride=stride, padding=padding)

    def fc(self, out_features: int, *, after: str | None = None,
           name: str | None = None) -> str:
        return self.op("fc", inputs=[self._resolve(after)], name=name,
                       out_features=out_features)

    def relu(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("relu", inputs=[self._resolve(after)], name=name)

    def maxpool(self, kernel: int, *, stride: int | None = None, padding: int = 0,
                ceil_mode: bool = False, after: str | None = None,
                name: str | None = None) -> str:
        return self.op("maxpool", inputs=[self._resolve(after)], name=name,
                       kernel=kernel, stride=stride or kernel, padding=padding,
                       ceil_mode=ceil_mode)

    def avgpool(self, kernel: int, *, stride: int | None = None, padding: int = 0,
                after: str | None = None, name: str | None = None) -> str:
        return self.op("avgpool", inputs=[self._resolve(after)], name=name,
                       kernel=kernel, stride=stride or kernel, padding=padding)

    def global_avgpool(self, *, after: str | None = None,
                       name: str | None = None) -> str:
        return self.op("global_avgpool", inputs=[self._resolve(after)], name=name)

    def flatten(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("flatten", inputs=[self._resolve(after)], name=name)

    def softmax(self, *, heads: int | None = None, after: str | None = None,
                name: str | None = None) -> str:
        """Softmax; ``heads`` marks attention scores (normalization per
        head over the key axis rather than over the whole tensor)."""
        attrs = {} if heads is None else {"heads": heads}
        return self.op("softmax", inputs=[self._resolve(after)], name=name,
                       **attrs)

    def lrn(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("lrn", inputs=[self._resolve(after)], name=name)

    def dropout(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("dropout", inputs=[self._resolve(after)], name=name)

    def batchnorm(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("batchnorm", inputs=[self._resolve(after)], name=name)

    def layernorm(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("layernorm", inputs=[self._resolve(after)], name=name)

    def gelu(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("gelu", inputs=[self._resolve(after)], name=name)

    def transpose(self, *, after: str | None = None, name: str | None = None) -> str:
        return self.op("transpose", inputs=[self._resolve(after)], name=name)

    def reshape(self, shape: tuple[int, ...], *, after: str | None = None,
                name: str | None = None) -> str:
        return self.op("reshape", inputs=[self._resolve(after)], name=name,
                       shape=tuple(shape))

    # -- multi-input layers -------------------------------------------------------

    def add(self, *branches: str, name: str | None = None) -> str:
        if len(branches) < 2:
            raise GraphError("add() needs at least two branch names")
        return self.op("add", inputs=list(branches), name=name)

    def matmul(self, a: str, b: str, *, transpose_b: bool = False,
               heads: int = 1, scale: float = 1.0,
               name: str | None = None) -> str:
        """Activation x activation product (attention scores / context).

        ``scale`` multiplies the result (the 1/sqrt(d_k) of scaled
        dot-product attention); it is free in the timing model (fused
        into the MAC stream) but matters for functional execution.
        """
        return self.op("matmul", inputs=[a, b], name=name,
                       transpose_b=transpose_b, heads=heads, scale=scale)

    def kv_cache(self, tokens: int, *, max_tokens: int | None = None,
                 after: str | None = None, name: str | None = None) -> str:
        """Append the current (one-token) projection to a growing K/V
        buffer and expose the whole buffer ``(dim, tokens, 1)`` downstream.

        ``tokens`` is the cache extent after this step's append;
        ``max_tokens`` (default ``tokens``) is the capacity the compiler
        provisions, so the same compiled program replays for any extent
        up to it (see :func:`repro.graph.serialize.with_kv_extent`).
        """
        attrs = {"tokens": tokens}
        if max_tokens is not None:
            attrs["max_tokens"] = max_tokens
        return self.op("kv_cache", inputs=[self._resolve(after)], name=name,
                       **attrs)

    def concat(self, *branches: str, name: str | None = None) -> str:
        if len(branches) < 2:
            raise GraphError("concat() needs at least two branch names")
        return self.op("concat", inputs=list(branches), name=name)

    # -- finish ---------------------------------------------------------------------

    def build(self) -> Graph:
        """Finalize (cycle check + shape inference) and return the graph."""
        return self.graph.finalize()
