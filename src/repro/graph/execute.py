"""Functional reference execution of network descriptions.

A numpy golden model for the graph IR: given an input tensor and a set of
weights, compute every node's value.  The cycle-accurate simulator is a
*timing/energy* model (like the paper's); this executor supplies the
*semantics* side — users can check a hand-built network computes what they
meant, and the test suite uses it to pin the IR's operator definitions
(shape inference and value semantics must agree).

Weights are a dict ``{node_name: array}``: conv weights shaped
``(out_channels, in_channels, k, k)``, fc weights ``(out_features,
in_features)``.  :func:`random_weights` fabricates a deterministic set.
"""

from __future__ import annotations

import numpy as np

from .ir import Graph, GraphError, Node

__all__ = ["execute", "random_weights"]


def random_weights(graph: Graph, *, seed: int = 0,
                   scale: float = 0.1) -> dict[str, np.ndarray]:
    """Deterministic random weights for every conv/fc node."""
    rng = np.random.default_rng(seed)
    weights: dict[str, np.ndarray] = {}
    for node in graph.topological_order():
        if node.op == "conv":
            k = node.attr("kernel")
            shape = (node.attr("out_channels"), node.attr("in_channels"), k, k)
            weights[node.name] = rng.normal(0.0, scale, shape)
        elif node.op == "fc":
            shape = (node.attr("out_features"), node.attr("in_features"))
            weights[node.name] = rng.normal(0.0, scale, shape)
    return weights


def _pool_windows(x: np.ndarray, kernel: int, stride: int, padding: int,
                  pad_value: float, ceil_mode: bool) -> np.ndarray:
    """(C, OH, OW, k, k) view of all pooling windows (copies, not strides)."""
    c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)),
                   constant_values=pad_value)
    from .ops import conv_out_hw
    oh, ow = conv_out_hw(h, w, kernel, stride, padding, ceil_mode)
    # ceil mode may read past the edge: pad on the far side as needed
    need_h = (oh - 1) * stride + kernel
    need_w = (ow - 1) * stride + kernel
    ph = max(0, need_h - x.shape[1])
    pw = max(0, need_w - x.shape[2])
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, ph), (0, pw)), constant_values=pad_value)
    out = np.empty((c, oh, ow, kernel, kernel), dtype=x.dtype)
    for i in range(oh):
        for j in range(ow):
            out[:, i, j] = x[:, i * stride:i * stride + kernel,
                             j * stride:j * stride + kernel]
    return out


def _conv(node: Node, x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    k = node.attr("kernel")
    stride = node.attr("stride", 1)
    padding = node.attr("padding", 0)
    out_ch = node.attr("out_channels")
    if weight.shape != (out_ch, x.shape[0], k, k):
        raise GraphError(
            f"node {node.name!r}: weight shape {weight.shape} does not "
            f"match ({out_ch}, {x.shape[0]}, {k}, {k})"
        )
    windows = _pool_windows(x, k, stride, padding, 0.0, False)
    # windows: (Cin, OH, OW, k, k); weight: (Cout, Cin, k, k)
    return np.einsum("cijkl,ockl->oij", windows, weight)


def execute(graph: Graph, input_value: np.ndarray,
            weights: dict[str, np.ndarray] | None = None,
            state: dict[str, np.ndarray] | None = None,
            ) -> dict[str, np.ndarray]:
    """Evaluate every node; returns ``{node_name: value}``.

    ``weights`` defaults to :func:`random_weights(graph)`.

    ``state`` carries decode state across steps: for each ``kv_cache``
    node it maps the node name to the cache contents *before* this step
    (``(dim, tokens-1, 1)``; absent entries default to zeros) and is
    updated in place with the post-append cache, so calling ``execute``
    in a loop with the same dict — advancing the graph's extent each
    step via :func:`~repro.graph.serialize.with_kv_extent` — is a
    functional autoregressive decode.
    """
    if weights is None:
        weights = random_weights(graph)
    if state is None:
        state = {}
    values: dict[str, np.ndarray] = {}
    for node in graph.topological_order():
        inputs = [values[name] for name in node.inputs]
        if node.op == "kv_cache":
            values[node.name] = _kv_cache(node, inputs[0], state)
        else:
            values[node.name] = _eval_node(node, inputs, weights, input_value)
        expected = node.output.shape
        if values[node.name].shape != expected:
            raise GraphError(
                f"node {node.name!r}: executor produced "
                f"{values[node.name].shape}, shape inference said {expected}"
            )
    return values


def _eval_node(node: Node, inputs: list[np.ndarray],
               weights: dict[str, np.ndarray],
               input_value: np.ndarray) -> np.ndarray:
    op = node.op
    if op == "input":
        value = np.asarray(input_value, dtype=float)
        if value.shape != node.output.shape:
            raise GraphError(
                f"input value shape {value.shape} does not match the "
                f"network's {node.output.shape}"
            )
        return value
    if op == "conv":
        if node.name not in weights:
            raise GraphError(f"no weights provided for {node.name!r}")
        return _conv(node, inputs[0], weights[node.name])
    if op == "fc":
        if node.name not in weights:
            raise GraphError(f"no weights provided for {node.name!r}")
        return weights[node.name] @ inputs[0]
    if op == "relu":
        return np.maximum(inputs[0], 0.0)
    if op == "maxpool":
        windows = _pool_windows(
            inputs[0], node.attr("kernel"),
            node.attr("stride", node.attr("kernel")),
            node.attr("padding", 0), -np.inf,
            bool(node.attr("ceil_mode", False)))
        return windows.max(axis=(3, 4))
    if op == "avgpool":
        windows = _pool_windows(
            inputs[0], node.attr("kernel"),
            node.attr("stride", node.attr("kernel")),
            node.attr("padding", 0), 0.0, False)
        return windows.mean(axis=(3, 4))
    if op == "global_avgpool":
        return inputs[0].mean(axis=(1, 2), keepdims=True)
    if op == "add":
        out = inputs[0]
        for other in inputs[1:]:
            out = out + other
        return out
    if op == "concat":
        return np.concatenate(inputs, axis=0)
    if op == "flatten":
        return inputs[0].reshape(-1)
    if op == "softmax":
        x = inputs[0]
        heads = node.attr("heads")
        if heads and x.ndim == 3:
            # attention scores (heads*keys, queries, 1): normalize over
            # the key axis independently per (head, query)
            n = x.shape[1] * x.shape[2]
            s = x.reshape(heads, -1, n)
            e = np.exp(s - s.max(axis=1, keepdims=True))
            return (e / e.sum(axis=1, keepdims=True)).reshape(x.shape)
        shifted = x - x.max()
        e = np.exp(shifted)
        return e / e.sum()
    if op == "lrn":
        # cross-channel normalization (AlexNet constants)
        x = inputs[0]
        square = x ** 2
        acc = np.zeros_like(x)
        n, alpha, beta, k = 5, 1e-4, 0.75, 2.0
        for c in range(x.shape[0]):
            lo, hi = max(0, c - n // 2), min(x.shape[0], c + n // 2 + 1)
            acc[c] = square[lo:hi].sum(axis=0)
        return x / (k + alpha * acc) ** beta
    if op in ("dropout", "batchnorm"):
        return inputs[0]  # identity at inference (bn assumed folded)
    if op == "matmul":
        return _matmul(node, inputs[0], inputs[1])
    if op == "layernorm":
        # normalize across the channel (feature) axis per token/pixel
        x = inputs[0]
        mean = x.mean(axis=0, keepdims=True)
        var = x.var(axis=0, keepdims=True)
        return (x - mean) / np.sqrt(var + 1e-5)
    if op == "gelu":
        x = inputs[0]
        return 0.5 * x * (1.0 + np.tanh(
            np.sqrt(2.0 / np.pi) * (x + 0.044715 * x ** 3)))
    if op == "transpose":
        c = inputs[0].shape[0]
        return inputs[0].reshape(c, -1).T.reshape(node.output.shape)
    if op == "reshape":
        return inputs[0].reshape(node.attr("shape"))
    raise GraphError(f"executor cannot evaluate op {op!r}")  # pragma: no cover


def _kv_cache(node: Node, current: np.ndarray,
              state: dict[str, np.ndarray]) -> np.ndarray:
    """Append this step's token to the cache held in ``state``."""
    tokens = node.attr("tokens")
    past = state.get(node.name)
    if past is None:
        past = np.zeros((current.shape[0], tokens - 1, 1))
    if past.shape != (current.shape[0], tokens - 1, 1):
        raise GraphError(
            f"node {node.name!r}: cache state shape {past.shape} does not "
            f"match ({current.shape[0]}, {tokens - 1}, 1) at extent {tokens}"
        )
    cache = np.concatenate([past, current.reshape(current.shape[0], 1, 1)],
                           axis=1)
    state[node.name] = cache
    return cache


def _matmul(node: Node, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Token-layout activation product (see ``ops._matmul_shape``)."""
    heads = node.attr("heads", 1)
    ca, cb = a.shape[0], b.shape[0]
    n = a.shape[1] * a.shape[2]
    m = b.shape[1] * b.shape[2]
    if node.attr("transpose_b", False):
        q = a.reshape(heads, ca // heads, n)
        k = b.reshape(heads, cb // heads, m)
        scores = np.einsum("hdn,hdm->hmn", q, k) * node.attr("scale", 1.0)
        return scores.reshape(heads * m, n, 1)
    s = a.reshape(heads, m, n)
    v = b.reshape(heads, cb // heads, m)
    ctx = np.einsum("hmn,hdm->hdn", s, v) * node.attr("scale", 1.0)
    return ctx.reshape(cb, n, 1)
