"""Operator registry: attribute validation and shape inference.

Every operator the compiler understands is declared here.  Each entry
provides a shape-inference function mapping input tensors (and node attrs)
to the output tensor; :func:`infer_shape` dispatches on ``node.op``.

Supported operators (the union of what alexnet / googlenet / resnet18 /
squeezenet / VGG need):

``input``, ``conv``, ``fc``, ``maxpool``, ``avgpool``, ``global_avgpool``,
``relu``, ``add``, ``concat``, ``flatten``, ``softmax``, ``lrn``,
``dropout``, ``batchnorm``.

Transformer / attention operators:

``matmul`` (two *activation* operands — dynamic, so it cannot live in
crossbars), ``layernorm``, ``gelu``, ``transpose``, ``reshape``.

Autoregressive decode:

``kv_cache`` — append one projected key (or value) token to a growing
per-layer buffer and present the whole buffer downstream.  The node's
``tokens`` attr is the *current* extent (cache length after the append)
and ``max_tokens`` the capacity the compiler provisions for, so a decode
step is the same graph with ``tokens`` advanced — see
:func:`repro.graph.serialize.with_kv_extent`.

Token tensors reuse the channel-first convention: a ``(tokens, dim)``
activation is carried as a ``(dim, tokens, 1)`` feature map, so per-token
linear projections are 1x1 convolutions (crossbar-mapped like any conv)
and the pixel axis enumerates tokens.  Multi-head layouts concatenate
heads on the channel axis (``heads * head_dim``).
"""

from __future__ import annotations

import math
from typing import Callable

from .ir import GraphError, Node, Tensor

__all__ = [
    "infer_shape",
    "weight_shape",
    "is_weight_op",
    "is_elementwise",
    "is_token_shardable",
    "TOKEN_SHARDABLE_OPS",
    "STATEFUL_OPS",
    "OPS",
    "conv_out_hw",
]

#: per-layer state buffers (today: ``kv_cache``) — ops whose output is a
#: runtime-growable tensor sized by an extent attr, not by their input.
STATEFUL_OPS = frozenset({"kv_cache"})

#: dynamic vector-unit ops whose output tokens (pixels) are mutually
#: independent, so the compiler may shard their token range across cores:
#: a ``matmul`` output token reads one A token plus all of B; per-head
#: ``softmax`` normalizes over the key (channel) axis per query token;
#: ``layernorm`` normalizes over channels per token; ``gelu`` is
#: element-wise.  Plain ``softmax`` (no ``heads``) normalizes over the
#: *whole* tensor and is excluded by :func:`is_token_shardable`.
TOKEN_SHARDABLE_OPS = frozenset({"matmul", "softmax", "layernorm", "gelu"})


def _require(cond: bool, node: Node, message: str) -> None:
    if not cond:
        raise GraphError(f"node {node.name!r} ({node.op}): {message}")


def _one_input(node: Node, inputs: list[Tensor]) -> Tensor:
    _require(len(inputs) == 1, node, f"expects 1 input, got {len(inputs)}")
    return inputs[0]


def _chw(node: Node, t: Tensor) -> tuple[int, int, int]:
    _require(t.rank == 3, node, f"expects a (C,H,W) input, got {t.shape}")
    return t.shape  # type: ignore[return-value]


def conv_out_hw(h: int, w: int, kernel: int, stride: int, padding: int,
                ceil_mode: bool = False) -> tuple[int, int]:
    """Output spatial size of a convolution/pooling window."""
    rounder = math.ceil if ceil_mode else math.floor
    oh = rounder((h + 2 * padding - kernel) / stride) + 1
    ow = rounder((w + 2 * padding - kernel) / stride) + 1
    return int(oh), int(ow)


# -- shape functions ----------------------------------------------------------

def _input_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    _require(not inputs, node, "input takes no inputs")
    shape = node.attr("shape")
    _require(shape is not None, node, "input requires a 'shape' attr")
    return Tensor(tuple(shape))


def _conv_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    c, h, w = _chw(node, _one_input(node, inputs))
    out_ch = node.attr("out_channels")
    kernel = node.attr("kernel")
    stride = node.attr("stride", 1)
    padding = node.attr("padding", 0)
    _require(out_ch and out_ch > 0, node, "requires positive 'out_channels'")
    _require(kernel and kernel > 0, node, "requires positive 'kernel'")
    _require(stride > 0, node, "stride must be positive")
    _require(padding >= 0, node, "padding must be >= 0")
    in_ch = node.attr("in_channels")
    if in_ch is not None:
        _require(in_ch == c, node, f"in_channels={in_ch} but input has {c} channels")
    else:
        node.attrs["in_channels"] = c  # recorded for weight_shape()
    oh, ow = conv_out_hw(h, w, kernel, stride, padding)
    _require(oh > 0 and ow > 0, node,
             f"window {kernel}/{stride}/{padding} collapses {h}x{w} input")
    return Tensor((out_ch, oh, ow))


def _fc_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    t = _one_input(node, inputs)
    out_features = node.attr("out_features")
    _require(out_features and out_features > 0, node, "requires positive 'out_features'")
    _require(t.rank == 1, node, f"fc expects a flat input, got {t.shape}; add a flatten")
    in_features = node.attr("in_features")
    if in_features is not None:
        _require(in_features == t.size, node,
                 f"in_features={in_features} but input has {t.size} elements")
    else:
        node.attrs["in_features"] = t.size  # recorded for weight_shape()
    return Tensor((out_features,))


def _pool_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    c, h, w = _chw(node, _one_input(node, inputs))
    kernel = node.attr("kernel")
    stride = node.attr("stride", kernel)
    padding = node.attr("padding", 0)
    _require(kernel and kernel > 0, node, "requires positive 'kernel'")
    oh, ow = conv_out_hw(h, w, kernel, stride, padding,
                         ceil_mode=bool(node.attr("ceil_mode", False)))
    _require(oh > 0 and ow > 0, node, f"pool window collapses {h}x{w} input")
    return Tensor((c, oh, ow))


def _global_pool_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    c, _h, _w = _chw(node, _one_input(node, inputs))
    return Tensor((c, 1, 1))


def _same_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    return _one_input(node, inputs)


def _softmax_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    """Softmax; a ``heads`` attr marks per-head attention normalization
    and must be consistent with the scores layout ``(heads*keys, N, 1)``."""
    t = _one_input(node, inputs)
    heads = node.attr("heads")
    if heads is not None:
        _require(heads >= 1, node, "heads must be >= 1")
        _require(t.rank == 3, node,
                 f"per-head softmax expects (heads*keys, N, 1) scores, "
                 f"got {t.shape}")
        _require(t.shape[0] % heads == 0, node,
                 f"channels {t.shape[0]} not divisible by heads={heads}")
    return t


def _add_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    _require(len(inputs) >= 2, node, f"expects >= 2 inputs, got {len(inputs)}")
    first = inputs[0]
    for other in inputs[1:]:
        _require(other.shape == first.shape, node,
                 f"mismatched add shapes {first.shape} vs {other.shape}")
    return first


def _concat_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    _require(len(inputs) >= 2, node, f"expects >= 2 inputs, got {len(inputs)}")
    shapes = [t.shape for t in inputs]
    _require(all(len(s) == 3 for s in shapes), node, "concat expects (C,H,W) inputs")
    hw = shapes[0][1:]
    _require(all(s[1:] == hw for s in shapes), node,
             f"concat inputs disagree on spatial size: {shapes}")
    return Tensor((sum(s[0] for s in shapes), *hw))


def _flatten_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    return Tensor((_one_input(node, inputs).size,))


def _tokens(node: Node, t: Tensor) -> tuple[int, int]:
    """Interpret a tensor as (channels, tokens); tokens = pixel count."""
    _require(t.rank == 3, node,
             f"expects a (C, tokens, 1)-style input, got {t.shape}")
    return t.shape[0], t.shape[1] * t.shape[2]


def _matmul_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    """Activation x activation product (attention scores / context).

    Both operands are runtime values, so the op executes on the vector
    unit, never in crossbars.  With ``transpose_b`` (scores): A carries
    queries ``(heads*dk, N, 1)``, B keys ``(heads*dk, M, 1)``; output is
    the per-head score maps ``(heads*M, N, 1)``.  Without (context): A
    carries scores ``(heads*M, N, 1)``, B values ``(heads*dv, M, 1)``;
    output ``(heads*dv, N, 1)``.  Records the total multiply-accumulate
    count in ``attrs['macs']`` for the compiler's latency/energy model.
    """
    _require(len(inputs) == 2, node, f"expects 2 inputs, got {len(inputs)}")
    heads = node.attr("heads", 1)
    _require(heads >= 1, node, "heads must be >= 1")
    ca, n = _tokens(node, inputs[0])
    cb, m = _tokens(node, inputs[1])
    if node.attr("transpose_b", False):
        _require(ca == cb, node,
                 f"contraction dims differ: A has {ca} channels, B has {cb}")
        _require(ca % heads == 0, node,
                 f"channels {ca} not divisible by heads={heads}")
        out = Tensor((heads * m, n, 1))
        macs = n * m * ca
    else:
        _require(ca == heads * m, node,
                 f"A channels {ca} != heads*B_tokens = {heads}*{m}")
        _require(cb % heads == 0, node,
                 f"B channels {cb} not divisible by heads={heads}")
        out = Tensor((cb, n, 1))
        macs = n * m * cb
    node.attrs["macs"] = macs
    # Per-token MAC count (exact: macs = n_tokens * macs_per_token), so a
    # token-sharded lowering can account each shard's work precisely.
    node.attrs["macs_per_token"] = macs // n
    return out


def _kv_cache_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    """Growable key/value buffer for autoregressive decode.

    Input is the *current* step's projected token ``(dim, 1, 1)``; output
    is the whole cache after the append, ``(dim, tokens, 1)``.  ``tokens``
    is the runtime extent of this step (number of cached tokens including
    the one appended now); ``max_tokens`` is the capacity the compiler
    sizes buffers for, so every extent ``1..max_tokens`` replays the same
    program structure.
    """
    t = _one_input(node, inputs)
    c, n = _tokens(node, t)
    _require(n == 1, node,
             f"kv_cache appends one token per step; input has {n} tokens")
    tokens = node.attr("tokens")
    _require(tokens is not None and tokens >= 1, node,
             "requires positive 'tokens' (current cache extent)")
    max_tokens = node.attr("max_tokens")
    if max_tokens is None:
        node.attrs["max_tokens"] = max_tokens = tokens
    _require(max_tokens >= tokens, node,
             f"tokens={tokens} exceeds max_tokens={max_tokens}")
    return Tensor((c, tokens, 1))


def _transpose_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    """Swap the channel and token axes: (C, N, 1) -> (N, C, 1)."""
    c, n = _tokens(node, _one_input(node, inputs))
    return Tensor((n, c, 1))


def _reshape_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    """Size-preserving relayout (pure metadata; folded by the compiler)."""
    t = _one_input(node, inputs)
    shape = node.attr("shape")
    _require(shape is not None, node, "reshape requires a 'shape' attr")
    out = Tensor(tuple(shape))
    _require(out.size == t.size, node,
             f"reshape {t.shape} -> {tuple(shape)} changes element count "
             f"({t.size} != {out.size})")
    return out


OPS: dict[str, Callable[[Node, list[Tensor]], Tensor]] = {
    "input": _input_shape,
    "conv": _conv_shape,
    "fc": _fc_shape,
    "maxpool": _pool_shape,
    "avgpool": _pool_shape,
    "global_avgpool": _global_pool_shape,
    "relu": _same_shape,
    "softmax": _softmax_shape,
    "lrn": _same_shape,
    "dropout": _same_shape,
    "batchnorm": _same_shape,
    "add": _add_shape,
    "concat": _concat_shape,
    "flatten": _flatten_shape,
    "matmul": _matmul_shape,
    "kv_cache": _kv_cache_shape,
    "layernorm": _same_shape,
    "gelu": _same_shape,
    "transpose": _transpose_shape,
    "reshape": _reshape_shape,
}


def infer_shape(node: Node, inputs: list[Tensor]) -> Tensor:
    """Validate ``node`` against its inputs and return its output tensor."""
    try:
        fn = OPS[node.op]
    except KeyError:
        raise GraphError(
            f"node {node.name!r} uses unknown op {node.op!r}; "
            f"known ops: {sorted(OPS)}"
        ) from None
    return fn(node, inputs)


def is_weight_op(node: Node) -> bool:
    """Whether this op owns a weight matrix mapped onto crossbars."""
    return node.op in ("conv", "fc")


def is_elementwise(node: Node) -> bool:
    """Ops the vector unit executes element-by-element."""
    return node.op in ("relu", "add", "softmax", "lrn", "batchnorm", "dropout",
                       "layernorm", "gelu")


def is_token_shardable(node: Node) -> bool:
    """Whether this op's output tokens are independent, so its token
    range may be computed on several cores (see TOKEN_SHARDABLE_OPS)."""
    if node.op not in TOKEN_SHARDABLE_OPS:
        return False
    if node.op == "softmax":
        # Only the per-head attention form is token-independent; global
        # softmax normalizes across every element.
        return node.attr("heads") is not None
    return True


def weight_shape(node: Node) -> tuple[int, int] | None:
    """The (rows, cols) of the op's weight matrix in crossbar terms.

    Convolution weights are im2col-unrolled: rows = K*K*C_in, cols = C_out.
    Returns ``None`` for ops without weights.
    """
    if node.op == "conv":
        out_ch = node.attr("out_channels")
        kernel = node.attr("kernel")
        in_ch = node.attr("in_channels")
        if in_ch is None:
            raise GraphError(
                f"node {node.name!r}: weight_shape needs 'in_channels' "
                f"(set during finalize or explicitly)"
            )
        return (kernel * kernel * in_ch, out_ch)
    if node.op == "fc":
        in_features = node.attr("in_features")
        if in_features is None:
            raise GraphError(f"node {node.name!r}: weight_shape needs 'in_features'")
        return (in_features, node.attr("out_features"))
    return None
