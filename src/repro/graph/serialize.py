"""JSON (de)serialization of network descriptions.

This is our stand-in for the paper's ONNX network-description file: the
same graph the compiler consumes, as a portable text file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .ir import Graph, GraphError, Node

__all__ = ["graph_to_dict", "graph_from_dict", "graph_digest",
           "save_graph", "load_graph"]

_FORMAT_VERSION = 1


def graph_to_dict(graph: Graph) -> dict:
    """Export a finalized (or raw) graph as a JSON-ready dict."""
    nodes = []
    # Preserve insertion order; it is a valid construction order on reload.
    for node in graph.nodes.values():
        entry: dict = {"name": node.name, "op": node.op}
        if node.inputs:
            entry["inputs"] = list(node.inputs)
        if node.attrs:
            entry["attrs"] = dict(node.attrs)
        nodes.append(entry)
    return {"format": _FORMAT_VERSION, "name": graph.name, "nodes": nodes}


def graph_from_dict(data: dict) -> Graph:
    """Rebuild and finalize a graph from :func:`graph_to_dict` output."""
    if not isinstance(data, dict) or "nodes" not in data:
        raise GraphError("network description must be an object with a 'nodes' list")
    version = data.get("format", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise GraphError(f"unsupported network description format {version}")
    graph = Graph(data.get("name", "network"))
    for entry in data["nodes"]:
        try:
            name, op = entry["name"], entry["op"]
        except (TypeError, KeyError):
            raise GraphError(f"malformed node entry: {entry!r}") from None
        attrs = dict(entry.get("attrs", {}))
        if "shape" in attrs and isinstance(attrs["shape"], list):
            attrs["shape"] = tuple(attrs["shape"])
        graph.add(Node(name, op, inputs=list(entry.get("inputs", [])), attrs=attrs))
    return graph.finalize()


def graph_digest(graph: Graph) -> str:
    """Content digest of a graph's serialized form (sha256 hex).

    Two graphs that serialize identically — e.g. the same embedded
    network description unpickled by two different jobs — share a
    digest, which is what lets :meth:`repro.engine.Engine.resolve_network`
    memoize graph *contents* instead of object identity and keep the
    compile cache warm across graph-object :class:`~repro.engine.JobSpec`
    batches.
    """
    payload = json.dumps(graph_to_dict(graph), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write the network description to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> Graph:
    """Load and finalize a network description from a JSON file."""
    return graph_from_dict(json.loads(Path(path).read_text()))
