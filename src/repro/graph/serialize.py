"""JSON (de)serialization of network descriptions.

This is our stand-in for the paper's ONNX network-description file: the
same graph the compiler consumes, as a portable text file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .ir import Graph, GraphError, Node

__all__ = ["graph_to_dict", "graph_from_dict", "graph_digest",
           "save_graph", "load_graph", "kv_extent", "with_kv_extent"]

_FORMAT_VERSION = 1


def graph_to_dict(graph: Graph) -> dict:
    """Export a finalized (or raw) graph as a JSON-ready dict."""
    nodes = []
    # Preserve insertion order; it is a valid construction order on reload.
    for node in graph.nodes.values():
        entry: dict = {"name": node.name, "op": node.op}
        if node.inputs:
            entry["inputs"] = list(node.inputs)
        if node.attrs:
            entry["attrs"] = dict(node.attrs)
        nodes.append(entry)
    return {"format": _FORMAT_VERSION, "name": graph.name, "nodes": nodes}


def graph_from_dict(data: dict) -> Graph:
    """Rebuild and finalize a graph from :func:`graph_to_dict` output."""
    if not isinstance(data, dict) or "nodes" not in data:
        raise GraphError("network description must be an object with a 'nodes' list")
    version = data.get("format", _FORMAT_VERSION)
    if version != _FORMAT_VERSION:
        raise GraphError(f"unsupported network description format {version}")
    graph = Graph(data.get("name", "network"))
    for entry in data["nodes"]:
        try:
            name, op = entry["name"], entry["op"]
        except (TypeError, KeyError):
            raise GraphError(f"malformed node entry: {entry!r}") from None
        attrs = dict(entry.get("attrs", {}))
        if "shape" in attrs and isinstance(attrs["shape"], list):
            attrs["shape"] = tuple(attrs["shape"])
        graph.add(Node(name, op, inputs=list(entry.get("inputs", [])), attrs=attrs))
    return graph.finalize()


def graph_digest(graph: Graph) -> str:
    """Content digest of a graph's serialized form (sha256 hex).

    Two graphs that serialize identically — e.g. the same embedded
    network description unpickled by two different jobs — share a
    digest, which is what lets :meth:`repro.engine.Engine.resolve_network`
    memoize graph *contents* instead of object identity and keep the
    compile cache warm across graph-object :class:`~repro.engine.JobSpec`
    batches.
    """
    payload = json.dumps(graph_to_dict(graph), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def kv_extent(graph: Graph) -> tuple[int, int] | None:
    """The decode extent ``(tokens, max_tokens)`` of a graph, or ``None``.

    A decode-shaped graph carries one or more ``kv_cache`` nodes; all of
    them must agree on their extent and capacity (the compiler enforces
    the same invariant), so the graph has *one* well-defined extent.
    """
    extents = {(node.attr("tokens"), node.attr("max_tokens", node.attr("tokens")))
               for node in graph.nodes.values() if node.op == "kv_cache"}
    if not extents:
        return None
    if len(extents) > 1:
        raise GraphError(
            f"kv_cache nodes disagree on (tokens, max_tokens): {sorted(extents)}")
    return extents.pop()


def with_kv_extent(graph: Graph, tokens: int) -> Graph:
    """The same decode graph with every ``kv_cache`` extent set to
    ``tokens`` — the graph of step ``tokens`` of an autoregressive decode.

    Rebuilds through the dict form (cheap at zoo scale), so the input
    graph is untouched and the result is finalized with re-inferred
    shapes.  Raises if the graph has no ``kv_cache`` node or ``tokens``
    exceeds any node's capacity.
    """
    extent = kv_extent(graph)
    if extent is None:
        raise GraphError(f"graph {graph.name!r} has no kv_cache node")
    _, max_tokens = extent
    if not 1 <= tokens <= max_tokens:
        raise GraphError(
            f"kv extent {tokens} outside 1..max_tokens={max_tokens}")
    data = graph_to_dict(graph)
    for entry in data["nodes"]:
        if entry["op"] == "kv_cache":
            attrs = entry.setdefault("attrs", {})
            attrs["tokens"] = tokens
            attrs.setdefault("max_tokens", max_tokens)
    return graph_from_dict(data)


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write the network description to a JSON file."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> Graph:
    """Load and finalize a network description from a JSON file."""
    return graph_from_dict(json.loads(Path(path).read_text()))
