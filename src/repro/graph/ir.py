"""Network-description intermediate representation.

The original framework consumes ONNX files; this IR carries the same
information the compiler needs — a DAG of operators with inferred tensor
shapes — without the ONNX container.  :mod:`repro.graph.serialize` provides
a JSON round-trip so networks can still live in description *files*.

Shapes are channel-first: feature maps are ``(channels, height, width)``;
flattened activations are ``(features,)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Tensor", "Node", "Graph", "GraphError"]


class GraphError(ValueError):
    """Malformed network description (bad wiring, shapes, or attributes)."""


@dataclass(frozen=True)
class Tensor:
    """A value flowing along a graph edge."""

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.shape or any(d <= 0 for d in self.shape):
            raise GraphError(f"invalid tensor shape {self.shape}")

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def rank(self) -> int:
        return len(self.shape)

    def __repr__(self) -> str:
        return f"Tensor{self.shape}"


@dataclass
class Node:
    """One operator instance.

    ``inputs`` are names of producer nodes (order matters for ops like
    ``add``/``concat``).  ``output`` is filled in by shape inference.
    """

    name: str
    op: str
    inputs: list[str] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)
    output: Tensor | None = None

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __repr__(self) -> str:
        shape = self.output.shape if self.output else "?"
        return f"<{self.op} {self.name} -> {shape}>"


class Graph:
    """A DAG of operators with single-output nodes.

    Construction is incremental (:meth:`add`); :meth:`finalize` runs cycle
    detection and shape inference and freezes the topological order.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self.nodes: dict[str, Node] = {}
        self._order: list[str] | None = None

    # -- construction --------------------------------------------------------

    def add(self, node: Node) -> Node:
        """Insert a node; inputs may be forward references until finalize."""
        if node.name in self.nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._order = None
        return node

    # -- structure -----------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise GraphError(f"no node named {name!r} in graph {self.name!r}") from None

    def consumers(self, name: str) -> list[Node]:
        """All nodes that read the output of ``name``."""
        return [n for n in self.nodes.values() if name in n.inputs]

    def producers(self, name: str) -> list[Node]:
        """The input nodes of ``name`` in declared order."""
        return [self.node(i) for i in self.node(name).inputs]

    @property
    def input_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.op == "input"]

    @property
    def output_nodes(self) -> list[Node]:
        """Nodes whose value nobody consumes (the network outputs)."""
        consumed = {i for n in self.nodes.values() for i in n.inputs}
        return [n for n in self.nodes.values() if n.name not in consumed]

    def topological_order(self) -> list[Node]:
        """Nodes in dependency order; inputs first.  Requires finalize()."""
        if self._order is None:
            raise GraphError(f"graph {self.name!r} not finalized")
        return [self.nodes[name] for name in self._order]

    def __iter__(self) -> Iterator[Node]:
        return iter(self.topological_order())

    def __len__(self) -> int:
        return len(self.nodes)

    # -- finalization ---------------------------------------------------------

    def finalize(self) -> "Graph":
        """Validate wiring, topologically sort, and infer all shapes."""
        from .ops import infer_shape  # late import: ops registry needs Tensor

        for node in self.nodes.values():
            for inp in node.inputs:
                if inp not in self.nodes:
                    raise GraphError(
                        f"node {node.name!r} reads undefined input {inp!r}"
                    )
            if node.op != "input" and not node.inputs:
                raise GraphError(f"non-input node {node.name!r} has no inputs")
            if node.op == "input" and node.inputs:
                raise GraphError(f"input node {node.name!r} must not have inputs")

        order = self._toposort()
        self._order = [n.name for n in order]
        for node in order:
            inputs = [self.nodes[i].output for i in node.inputs]
            if any(t is None for t in inputs):
                raise GraphError(f"shape inference reached {node.name!r} early")
            node.output = infer_shape(node, inputs)  # type: ignore[arg-type]
        if not self.input_nodes:
            raise GraphError(f"graph {self.name!r} has no input node")
        return self

    def _toposort(self) -> list[Node]:
        indegree = {name: len(node.inputs) for name, node in self.nodes.items()}
        # Stable order: seed with insertion order of zero-indegree nodes.
        ready = [name for name in self.nodes if indegree[name] == 0]
        order: list[Node] = []
        consumers: dict[str, list[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for inp in node.inputs:
                consumers[inp].append(node.name)
        while ready:
            name = ready.pop(0)
            order.append(self.nodes[name])
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.nodes):
            stuck = sorted(n for n, d in indegree.items() if d > 0)
            raise GraphError(
                f"graph {self.name!r} has a cycle involving: {', '.join(stuck[:8])}"
            )
        return order

    # -- reporting -------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable table of the network (op, shape, params)."""
        from .ops import weight_shape

        lines = [f"network {self.name!r}: {len(self.nodes)} nodes"]
        total_params = 0
        for node in self.topological_order():
            wshape = weight_shape(node)
            params = wshape[0] * wshape[1] if wshape else 0
            total_params += params
            extra = f" weights={wshape[0]}x{wshape[1]}" if wshape else ""
            lines.append(
                f"  {node.name:<24} {node.op:<12} -> {node.output.shape}{extra}"
            )
        lines.append(f"  total weight parameters: {total_params:,}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<Graph {self.name!r} nodes={len(self.nodes)}>"
