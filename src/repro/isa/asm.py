"""Textual assembly for instruction streams.

The format is deliberately regular — ``OPCODE key=value ...`` with an
optional ``; layer=<tag>`` comment — so programs dump and reload without a
grammar. Example::

    MVM group=3 src=1024 src_bytes=512 dst=8192 dst_bytes=128 count=4 ; layer=conv1
    VADD src1=8192 src2=8320 dst=8192 length=128 src_bytes=128 dst_bytes=128
    SEND peer=2 addr=8192 bytes=128 flow=5 seq=0
    HALT
"""

from __future__ import annotations

from .instructions import (
    SCALAR_OPS,
    TRANSFER_OPS,
    VECTOR_OPS,
    Instruction,
    MvmInst,
    ScalarInst,
    TransferInst,
    VectorInst,
)

__all__ = ["assemble_line", "disassemble_line", "assemble", "disassemble", "AsmError"]


class AsmError(ValueError):
    """Unparseable assembly text."""


_INT_FIELDS = {
    "MVM": ("group", "src", "src_bytes", "dst", "dst_bytes", "count"),
    "VECTOR": ("src1", "src2", "dst", "length", "src_bytes", "dst_bytes",
               "src2_bytes"),
    "TRANSFER": ("peer", "addr", "bytes", "flow", "seq"),
    "SCALAR": ("rd", "rs1", "rs2", "imm", "target"),
}


def disassemble_line(inst: Instruction) -> str:
    """Render one instruction as a canonical assembly line."""
    if isinstance(inst, MvmInst):
        op, names = "MVM", _INT_FIELDS["MVM"]
    elif isinstance(inst, VectorInst):
        op, names = inst.op, _INT_FIELDS["VECTOR"]
    elif isinstance(inst, TransferInst):
        op, names = inst.op, _INT_FIELDS["TRANSFER"]
    elif isinstance(inst, ScalarInst):
        op, names = inst.op, _INT_FIELDS["SCALAR"]
    else:
        raise AsmError(f"cannot disassemble {type(inst).__name__}")
    parts = [op] + [f"{n}={getattr(inst, n)}" for n in names if getattr(inst, n)]
    if inst.layer:
        parts.append(f"; layer={inst.layer}")
    return " ".join(parts)


def assemble_line(line: str) -> Instruction | None:
    """Parse one assembly line; returns None for blanks/comments."""
    text = line.strip()
    if not text or text.startswith("#") or text.startswith(";"):
        return None
    layer = ""
    if ";" in text:
        text, _, comment = text.partition(";")
        comment = comment.strip()
        if comment.startswith("layer="):
            layer = comment[len("layer="):]
        text = text.strip()
    tokens = text.split()
    op = tokens[0].upper()
    fields: dict[str, int] = {}
    for token in tokens[1:]:
        if "=" not in token:
            raise AsmError(f"bad token {token!r} in line {line!r}")
        key, _, value = token.partition("=")
        try:
            fields[key] = int(value)
        except ValueError:
            raise AsmError(f"non-integer value in {token!r}") from None
    try:
        if op == "MVM":
            return MvmInst(layer=layer, **fields)
        if op in VECTOR_OPS:
            return VectorInst(op=op, layer=layer, **fields)
        if op in TRANSFER_OPS:
            return TransferInst(op=op, layer=layer, **fields)
        if op in SCALAR_OPS:
            return ScalarInst(op=op, layer=layer, **fields)
    except TypeError as exc:
        raise AsmError(f"bad fields for {op}: {exc}") from None
    raise AsmError(f"unknown opcode {op!r} in line {line!r}")


def disassemble(instructions: list[Instruction]) -> str:
    """Render an instruction list as assembly text."""
    return "\n".join(disassemble_line(inst) for inst in instructions)


def assemble(text: str) -> list[Instruction]:
    """Parse assembly text into an instruction list."""
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            inst = assemble_line(line)
        except AsmError as exc:
            raise AsmError(f"line {lineno}: {exc}") from None
        if inst is not None:
            out.append(inst)
    return out
