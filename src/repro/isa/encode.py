"""Binary encoding of instructions.

Instructions encode to fixed-width 192-bit words (three 64-bit words, 24
bytes) — comfortable field widths without variable-length decode logic.
The layer tag and stream index are *not* encoded: like debug info in a
conventional toolchain, they travel in program metadata, not in the
instruction word.

Word layout (bit offsets from LSB of the 192-bit integer):

====== ======================================================
bits   field
====== ======================================================
0-1    instruction class (0=matrix, 1=vector, 2=transfer, 3=scalar)
2-7    opcode index within the class
8-191  class-specific fields, packed per the tables below
====== ======================================================
"""

from __future__ import annotations

from .instructions import (
    SCALAR_OPS,
    TRANSFER_OPS,
    VECTOR_OPS,
    Instruction,
    MvmInst,
    ScalarInst,
    TransferInst,
    VectorInst,
)

__all__ = ["encode", "decode", "encode_bytes", "decode_bytes", "WORD_BYTES", "EncodingError"]

WORD_BYTES = 24
_WORD_BITS = WORD_BYTES * 8

_CLASS_IDS = {"matrix": 0, "vector": 1, "transfer": 2, "scalar": 3}
_CLASS_NAMES = {v: k for k, v in _CLASS_IDS.items()}

_VECTOR_OP_LIST = sorted(VECTOR_OPS)
_VECTOR_OP_IDS = {op: i for i, op in enumerate(_VECTOR_OP_LIST)}
_TRANSFER_OP_IDS = {op: i for i, op in enumerate(TRANSFER_OPS)}
_SCALAR_OP_IDS = {op: i for i, op in enumerate(SCALAR_OPS)}

#: (field name, bit width) per class, packed LSB-first after the 8-bit header.
_FIELDS: dict[str, tuple[tuple[str, int], ...]] = {
    "matrix": (("group", 20), ("src", 26), ("src_bytes", 26),
               ("dst", 26), ("dst_bytes", 26), ("count", 20)),
    # length is 28 bits: VMATMUL counts multiply-accumulates, which grow
    # with tokens^2 x dim — 24 bits overflowed on mid-sized transformers.
    "vector": (("src1", 26), ("src2", 26), ("dst", 26),
               ("length", 28), ("src_bytes", 26), ("dst_bytes", 26),
               ("src2_bytes", 26)),
    "transfer": (("peer", 16), ("addr", 26), ("bytes", 26),
                 ("flow", 26), ("seq", 26)),
    "scalar": (("rd", 6), ("rs1", 6), ("rs2", 6),
               ("imm", 40), ("target", 26)),
}


class EncodingError(ValueError):
    """A field value does not fit its encoding width."""


def _opcode_of(inst: Instruction) -> int:
    if isinstance(inst, MvmInst):
        return 0
    if isinstance(inst, VectorInst):
        return _VECTOR_OP_IDS[inst.op]
    if isinstance(inst, TransferInst):
        return _TRANSFER_OP_IDS[inst.op]
    if isinstance(inst, ScalarInst):
        return _SCALAR_OP_IDS[inst.op]
    raise EncodingError(f"cannot encode {type(inst).__name__}")


def encode(inst: Instruction) -> int:
    """Pack an instruction into a 192-bit integer word."""
    class_id = _CLASS_IDS[inst.unit]
    word = class_id | (_opcode_of(inst) << 2)
    offset = 8
    for name, width in _FIELDS[inst.unit]:
        value = getattr(inst, name)
        if not 0 <= value < (1 << width):
            raise EncodingError(
                f"{type(inst).__name__}.{name}={value} does not fit "
                f"in {width} bits"
            )
        word |= value << offset
        offset += width
    assert offset <= _WORD_BITS
    return word


def decode(word: int) -> Instruction:
    """Unpack a 192-bit integer word back into an instruction."""
    if not 0 <= word < (1 << _WORD_BITS):
        raise EncodingError(f"word out of range: {word:#x}")
    class_id = word & 0b11
    opcode = (word >> 2) & 0b111111
    unit = _CLASS_NAMES[class_id]
    fields: dict[str, int] = {}
    offset = 8
    for name, width in _FIELDS[unit]:
        fields[name] = (word >> offset) & ((1 << width) - 1)
        offset += width
    if unit == "matrix":
        return MvmInst(**fields)
    if unit == "vector":
        try:
            op = _VECTOR_OP_LIST[opcode]
        except IndexError:
            raise EncodingError(f"bad vector opcode {opcode}") from None
        return VectorInst(op=op, **fields)
    if unit == "transfer":
        if opcode >= len(TRANSFER_OPS):
            raise EncodingError(f"bad transfer opcode {opcode}")
        return TransferInst(op=TRANSFER_OPS[opcode], **fields)
    if opcode >= len(SCALAR_OPS):
        raise EncodingError(f"bad scalar opcode {opcode}")
    return ScalarInst(op=SCALAR_OPS[opcode], **fields)


def encode_bytes(inst: Instruction) -> bytes:
    """Encode to the 24-byte little-endian machine word."""
    return encode(inst).to_bytes(WORD_BYTES, "little")


def decode_bytes(data: bytes) -> Instruction:
    """Decode a 24-byte little-endian machine word."""
    if len(data) != WORD_BYTES:
        raise EncodingError(f"expected {WORD_BYTES} bytes, got {len(data)}")
    return decode(int.from_bytes(data, "little"))
