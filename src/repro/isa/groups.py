"""Crossbar group tables.

The ISA's *group mechanism*: crossbars that hold tiles of the same weight
matrix and consume the same input slice form a group and fire in parallel
under one matrix instruction.  The compiler registers every group it
creates in a per-core :class:`GroupTable`; the simulator instantiates one
parallel crossbar cluster per group, and the energy model charges the
group's active cells per MVM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Group", "GroupTable", "GroupError"]


class GroupError(ValueError):
    """Inconsistent group definition or lookup."""


@dataclass(frozen=True)
class Group:
    """One crossbar group on one core.

    ``rows``/``cols`` are the *logical* extent of the weight slice this
    group holds (<= crossbar size x group width); ``n_crossbars`` is how
    many physical crossbars fire in parallel.  ``layer``/``copy``/
    ``row_block`` identify the slice for reporting.
    """

    group_id: int
    layer: str
    copy: int
    row_block: int
    n_crossbars: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.n_crossbars < 1:
            raise GroupError(f"group {self.group_id}: needs >= 1 crossbar")
        if self.rows < 1 or self.cols < 1:
            raise GroupError(f"group {self.group_id}: empty extent {self.rows}x{self.cols}")

    @property
    def active_cells(self) -> int:
        """Weight cells engaged by one MVM through this group."""
        return self.rows * self.cols


@dataclass
class GroupTable:
    """All crossbar groups of one core, indexed by group id."""

    core: int
    groups: dict[int, Group] = field(default_factory=dict)
    _crossbars_used: int = 0

    def define(self, layer: str, copy: int, row_block: int, n_crossbars: int,
               rows: int, cols: int) -> Group:
        """Register a new group; ids are dense per core."""
        group = Group(
            group_id=len(self.groups),
            layer=layer,
            copy=copy,
            row_block=row_block,
            n_crossbars=n_crossbars,
            rows=rows,
            cols=cols,
        )
        self.groups[group.group_id] = group
        self._crossbars_used += n_crossbars
        return group

    def get(self, group_id: int) -> Group:
        try:
            return self.groups[group_id]
        except KeyError:
            raise GroupError(
                f"core {self.core}: undefined group {group_id} "
                f"(defined: 0..{len(self.groups) - 1})"
            ) from None

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def crossbars_used(self) -> int:
        """Total physical crossbars claimed by all groups on this core."""
        return self._crossbars_used

    def by_layer(self) -> dict[str, list[Group]]:
        """Groups bucketed by the layer they implement."""
        out: dict[str, list[Group]] = {}
        for group in self.groups.values():
            out.setdefault(group.layer, []).append(group)
        return out

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self):
        return iter(self.groups.values())
