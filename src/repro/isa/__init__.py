"""The PIM instruction set: instructions, groups, programs, codecs."""

from .asm import AsmError, assemble, assemble_line, disassemble, disassemble_line
from .encode import (
    WORD_BYTES,
    EncodingError,
    decode,
    decode_bytes,
    encode,
    encode_bytes,
)
from .groups import Group, GroupError, GroupTable
from .instructions import (
    SCALAR_OPS,
    TRANSFER_OPS,
    VECTOR_OPS,
    VECTOR_SPECIAL_OPS,
    Instruction,
    MemRange,
    MvmInst,
    ScalarInst,
    TransferInst,
    VectorInst,
    ranges_overlap,
)
from .program import ChipProgram, FlowInfo, Program, ProgramError
from .verify import N_REGISTERS, VerificationError, verify_program

__all__ = [
    "Instruction",
    "MvmInst",
    "VectorInst",
    "TransferInst",
    "ScalarInst",
    "VECTOR_OPS",
    "VECTOR_SPECIAL_OPS",
    "TRANSFER_OPS",
    "SCALAR_OPS",
    "MemRange",
    "ranges_overlap",
    "Group",
    "GroupTable",
    "GroupError",
    "Program",
    "ChipProgram",
    "FlowInfo",
    "ProgramError",
    "encode",
    "decode",
    "encode_bytes",
    "decode_bytes",
    "WORD_BYTES",
    "EncodingError",
    "assemble",
    "disassemble",
    "assemble_line",
    "disassemble_line",
    "AsmError",
    "verify_program",
    "VerificationError",
    "N_REGISTERS",
]
