"""Instruction set: matrix / vector / transfer / scalar classes.

The ISA follows the abstract machine of the paper (and its companion ISA
report, arXiv:2308.06449): a chip of cores around a global memory, each
core owning crossbars, a local memory, a register file, and four execution
units — one per instruction class.

Every instruction exposes its *dependence footprint* — register and
local-memory ranges read/written plus structural resources (crossbar
groups) — which the dispatch stage uses for hazard detection, and the ROB
for in-order retirement.  Memory ranges are half-open byte intervals
``(start, end)`` in core-local address space.

Instruction classes:

* ``matrix`` — :class:`MvmInst`: drive one crossbar *group* through a
  matrix-vector multiplication over ``count`` consecutive input vectors.
* ``vector`` — :class:`VectorInst`: SIMD element-wise / reduction ops on
  local memory (``VADD``, ``VRELU``, ``VMAXPOOL`` …).
* ``transfer`` — :class:`TransferInst`: synchronized ``SEND``/``RECV``
  between cores, and ``LOAD``/``STORE`` against global memory.
* ``scalar`` — :class:`ScalarInst`: register arithmetic and control flow
  (``LI``, ``SADD``, ``SBNE`` …, ``HALT``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

__all__ = [
    "Instruction",
    "MvmInst",
    "VectorInst",
    "TransferInst",
    "ScalarInst",
    "VECTOR_OPS",
    "TRANSFER_OPS",
    "SCALAR_OPS",
    "MemRange",
    "ranges_overlap",
]

MemRange = tuple[int, int]


def ranges_overlap(a: MemRange, b: MemRange) -> bool:
    """Whether two half-open byte ranges intersect."""
    return a[0] < b[1] and b[0] < a[1]


@dataclass
class Instruction:
    """Base class; concrete classes define their dependence footprint."""

    #: class-level unit name: matrix / vector / transfer / scalar.
    unit: ClassVar[str] = "?"

    #: network layer this instruction belongs to (analysis/reporting tag).
    layer: str = field(default="", kw_only=True)
    #: position in the per-core stream; assigned by Program.seal().
    index: int = field(default=-1, kw_only=True)

    # -- dependence footprint (overridden per class) -------------------------

    def reads_mem(self) -> tuple[MemRange, ...]:
        return ()

    def writes_mem(self) -> tuple[MemRange, ...]:
        return ()

    def reads_regs(self) -> tuple[int, ...]:
        return ()

    def writes_regs(self) -> tuple[int, ...]:
        return ()

    def groups_used(self) -> tuple[int, ...]:
        """Crossbar groups this instruction occupies (structural hazard)."""
        return ()

    @property
    def is_control(self) -> bool:
        return False

    def _footprint(self) -> tuple:
        """Compute and cache the dependence footprint.

        Instructions are immutable once a program is sealed and each one is
        conflict-checked against many in-flight entries over a simulation,
        so the sets/ranges are materialized once per instruction instead of
        on every :meth:`conflicts_with` call.
        """
        fp = (frozenset(self.groups_used()),
              frozenset(self.reads_regs()),
              frozenset(self.writes_regs()),
              self.reads_mem(),
              self.writes_mem())
        self._fp = fp
        return fp

    def conflicts_with(self, older: "Instruction") -> bool:
        """True when this instruction must wait for ``older`` to finish.

        Covers RAW / WAR / WAW through registers and local memory, and
        structural conflicts on crossbar groups — the "structure hazard"
        the paper uses to explain the ROB-size plateau (Fig. 4).
        """
        try:
            mine = self._fp
        except AttributeError:
            mine = self._footprint()
        try:
            theirs = older._fp
        except AttributeError:
            theirs = older._footprint()
        my_groups, my_r, my_w, my_rm, my_wm = mine
        old_groups, old_r, old_w, old_rm, old_wm = theirs
        if my_groups and not my_groups.isdisjoint(old_groups):
            return True
        if old_w and not (old_w.isdisjoint(my_r) and old_w.isdisjoint(my_w)):
            return True
        if my_w and not my_w.isdisjoint(old_r):
            return True
        for lo, hi in my_rm:
            for olo, ohi in old_wm:
                if lo < ohi and olo < hi:
                    return True
        for lo, hi in my_wm:
            for olo, ohi in old_wm:
                if lo < ohi and olo < hi:
                    return True
            for olo, ohi in old_rm:
                if lo < ohi and olo < hi:
                    return True
        return False


@dataclass
class MvmInst(Instruction):
    """Matrix instruction: one group x ``count`` input vectors.

    The group's crossbars fire in parallel (the ISA's group mechanism);
    ``count`` input vectors are streamed back-to-back through the same
    group, so latency scales with ``count`` but the instruction occupies
    its group exclusively throughout.
    """

    unit: ClassVar[str] = "matrix"

    group: int = 0
    src: int = 0
    src_bytes: int = 0
    dst: int = 0
    dst_bytes: int = 0
    count: int = 1

    def reads_mem(self) -> tuple[MemRange, ...]:
        return ((self.src, self.src + self.src_bytes),)

    def writes_mem(self) -> tuple[MemRange, ...]:
        return ((self.dst, self.dst + self.dst_bytes),)

    def groups_used(self) -> tuple[int, ...]:
        return (self.group,)

    def __repr__(self) -> str:
        return (f"MVM g{self.group} x{self.count} "
                f"[{self.src}+{self.src_bytes}]->[{self.dst}+{self.dst_bytes}]")


#: vector opcodes -> number of source operands.
VECTOR_OPS: dict[str, int] = {
    "VADD": 2, "VSUB": 2, "VMUL": 2, "VMAX": 2,
    "VRELU": 1, "VMOV": 1, "VSCALE": 1,
    "VMAXPOOL": 1, "VAVGPOOL": 1,
    "VSOFTMAX": 1, "VLRN": 1,
    # attention / transformer extension: dynamic (activation x activation)
    # matrix product — `length` counts multiply-accumulates, not elements —
    # plus the transcendental-heavy normalizations and the token/channel
    # axis swap.
    "VMATMUL": 2, "VLAYERNORM": 1, "VGELU": 1, "VTRANS": 1,
}

#: vector opcodes whose per-element work is transcendental-heavy (exp /
#: rsqrt / erf pipelines); the vector unit applies
#: ``CoreConfig.vector_special_cycles_per_element`` and charges
#: ``EnergyConfig.vector_special_pj_per_element`` for these.
VECTOR_SPECIAL_OPS = frozenset({"VSOFTMAX", "VLAYERNORM", "VGELU"})


@dataclass
class VectorInst(Instruction):
    """Vector instruction: SIMD op over ``length`` elements in local memory.

    ``src2`` is only meaningful for two-operand ops; pooling ops read a
    window whose footprint is ``src_bytes`` (>= length elements) and write
    ``dst_bytes``.  ``src2_bytes`` sizes the second operand's footprint
    when it differs from the first (``VMATMUL`` reads a tile of A but all
    of B); 0 means "same as ``src_bytes``".  For ``VMATMUL``, ``length``
    is the multiply-accumulate count (the unit retires ``vector_lanes``
    MACs per cycle), not an element count.
    """

    unit: ClassVar[str] = "vector"

    op: str = "VMOV"
    src1: int = 0
    src2: int = 0
    dst: int = 0
    length: int = 0
    src_bytes: int = 0
    dst_bytes: int = 0
    src2_bytes: int = 0

    def __post_init__(self) -> None:
        if self.op not in VECTOR_OPS:
            raise ValueError(f"unknown vector op {self.op!r}; known: {sorted(VECTOR_OPS)}")

    @property
    def n_sources(self) -> int:
        return VECTOR_OPS[self.op]

    def reads_mem(self) -> tuple[MemRange, ...]:
        first = (self.src1, self.src1 + self.src_bytes)
        if self.n_sources == 2:
            second = self.src2_bytes or self.src_bytes
            return (first, (self.src2, self.src2 + second))
        return (first,)

    def writes_mem(self) -> tuple[MemRange, ...]:
        return ((self.dst, self.dst + self.dst_bytes),)

    def __repr__(self) -> str:
        srcs = f"[{self.src1}]" + (f",[{self.src2}]" if self.n_sources == 2 else "")
        return f"{self.op} {srcs}->[{self.dst}] len={self.length}"


TRANSFER_OPS = ("SEND", "RECV", "LOAD", "STORE")


@dataclass
class TransferInst(Instruction):
    """Transfer instruction: synchronized core-to-core or global-memory move.

    ``SEND``/``RECV`` pairs are matched by ``(flow, seq)``: the compiler
    assigns each producer->consumer edge a flow id and numbers the messages
    so the rendezvous is unambiguous.  ``LOAD``/``STORE`` address global
    memory (``peer`` is ignored; ``flow`` carries the global address).
    """

    unit: ClassVar[str] = "transfer"

    op: str = "SEND"
    peer: int = 0
    addr: int = 0
    bytes: int = 0
    flow: int = 0
    seq: int = 0

    def __post_init__(self) -> None:
        if self.op not in TRANSFER_OPS:
            raise ValueError(f"unknown transfer op {self.op!r}; known: {TRANSFER_OPS}")

    def reads_mem(self) -> tuple[MemRange, ...]:
        if self.op in ("SEND", "STORE"):
            return ((self.addr, self.addr + self.bytes),)
        return ()

    def writes_mem(self) -> tuple[MemRange, ...]:
        if self.op in ("RECV", "LOAD"):
            return ((self.addr, self.addr + self.bytes),)
        return ()

    def __repr__(self) -> str:
        return (f"{self.op} peer={self.peer} [{self.addr}+{self.bytes}] "
                f"flow={self.flow}#{self.seq}")


SCALAR_OPS = ("LI", "SADD", "SSUB", "SMUL", "SAND", "SOR",
              "SBEQ", "SBNE", "SJMP", "NOP", "HALT")

_BRANCH_OPS = ("SBEQ", "SBNE", "SJMP")


@dataclass
class ScalarInst(Instruction):
    """Scalar instruction: register ALU ops and control flow.

    ``target`` of a branch is an absolute instruction index in the core's
    stream (labels are resolved by the assembler).  ``HALT`` terminates the
    core's program.
    """

    unit: ClassVar[str] = "scalar"

    op: str = "NOP"
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0

    def __post_init__(self) -> None:
        if self.op not in SCALAR_OPS:
            raise ValueError(f"unknown scalar op {self.op!r}; known: {SCALAR_OPS}")

    @property
    def is_control(self) -> bool:
        return self.op in _BRANCH_OPS or self.op == "HALT"

    def reads_regs(self) -> tuple[int, ...]:
        if self.op == "LI":
            return ()
        if self.op in ("SADD", "SSUB", "SMUL", "SAND", "SOR"):
            return (self.rs1, self.rs2)
        if self.op in ("SBEQ", "SBNE"):
            return (self.rs1, self.rs2)
        return ()

    def writes_regs(self) -> tuple[int, ...]:
        if self.op in ("LI", "SADD", "SSUB", "SMUL", "SAND", "SOR"):
            return (self.rd,)
        return ()

    def __repr__(self) -> str:
        if self.op == "LI":
            return f"LI r{self.rd}, {self.imm}"
        if self.op in ("SADD", "SSUB", "SMUL", "SAND", "SOR"):
            return f"{self.op} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if self.op in ("SBEQ", "SBNE"):
            return f"{self.op} r{self.rs1}, r{self.rs2}, @{self.target}"
        if self.op == "SJMP":
            return f"SJMP @{self.target}"
        return self.op
