"""Per-core instruction streams and the whole-chip program.

A :class:`Program` is one core's instruction list plus its group table and
local-memory layout metadata.  A :class:`ChipProgram` bundles the per-core
programs with chip-wide flow metadata (which SEND matches which RECV) and
the compiler's layer placement summary — everything the simulator and the
static verifier need.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

from .groups import GroupTable
from .instructions import Instruction, ScalarInst, TransferInst

__all__ = ["Program", "ChipProgram", "FlowInfo", "ProgramError"]


class ProgramError(ValueError):
    """Malformed program (missing halt, dangling flow, bad group id …)."""


@dataclass
class Program:
    """Instruction stream of one core."""

    core: int
    instructions: list[Instruction] = field(default_factory=list)
    groups: GroupTable | None = None
    #: highest local-memory byte used (for capacity checks/report).
    local_memory_used: int = 0
    _sealed: bool = False

    def append(self, inst: Instruction) -> Instruction:
        if self._sealed:
            raise ProgramError(f"core {self.core}: program is sealed")
        self.instructions.append(inst)
        return inst

    def extend(self, insts: list[Instruction]) -> None:
        for inst in insts:
            self.append(inst)

    def seal(self) -> "Program":
        """Terminate with HALT (if absent), number instructions, freeze."""
        if not self.instructions or not (
            isinstance(self.instructions[-1], ScalarInst)
            and self.instructions[-1].op == "HALT"
        ):
            self.instructions.append(ScalarInst(op="HALT"))
        for index, inst in enumerate(self.instructions):
            inst.index = index
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def counts_by_unit(self) -> dict[str, int]:
        """Instruction histogram across the four execution units."""
        counts: dict[str, int] = {"matrix": 0, "vector": 0, "transfer": 0, "scalar": 0}
        for inst in self.instructions:
            counts[inst.unit] += 1
        return counts

    def run_segments(self) -> tuple[tuple[int, int], ...]:
        """Maximal straight-line compute runs as ``(start, stop)`` index
        pairs (``stop`` exclusive), split at transfer and control
        instructions.

        These are the spans the fast-fidelity executor (ROADMAP 3a)
        advances in one analytic step each; the compiler records their
        count and serialized latency per core so run shape is inspectable
        without simulating.  Cached after the first call (programs are
        sealed before anything consumes this).
        """
        cached = getattr(self, "_run_segments", None)
        if cached is not None:
            return cached
        segments: list[tuple[int, int]] = []
        start: int | None = None
        for index, inst in enumerate(self.instructions):
            boundary = inst.unit == "transfer" or (
                isinstance(inst, ScalarInst) and inst.is_control)
            if boundary:
                if start is not None:
                    segments.append((start, index))
                    start = None
            elif start is None:
                start = index
        if start is not None:
            segments.append((start, len(self.instructions)))
        self._run_segments = out = tuple(segments)
        return out

    def static_blockers(self, window: int) -> tuple | None:
        """Per-instruction static hazard predecessors under a ``window``-entry
        ROB, or ``None`` when the program branches.

        For a straight-line program (no branches — compiled programs are
        straight-line; a trailing ``HALT`` is fine) the ROB's in-flight set
        when instruction ``i`` dispatches is always a subset of the
        ``window - 1`` instructions before it in program order, so which
        older instructions can ever block ``i`` is a *static* property:
        ``result[i]`` is the ascending tuple of indices ``j`` with
        ``i - j < window`` whose dependence footprint conflicts with
        ``i``'s.  The simulator's hazard checks then reduce to done-flag
        tests on those entries (:class:`~repro.arch.rob.ReorderBuffer`
        consumes this), with no per-issue window scan.

        Computed by one program-order sweep over footprint-indexed
        last-access maps (the static twin of the ROB's runtime scoreboard)
        and cached per ``window``, so repeated simulations of one compiled
        program — ROB sweeps, batched runs, benchmark repetitions — pay
        the dependence analysis once.
        """
        cache = getattr(self, "_blocker_cache", None)
        if cache is None:
            cache = self._blocker_cache = {}
        try:
            return cache[window]
        except KeyError:
            pass
        table = _build_static_blockers(self.instructions, window)
        cache[window] = table
        return table

    def listing(self, limit: int | None = None) -> str:
        """Readable assembly-style dump (first ``limit`` instructions)."""
        lines = [f"core {self.core}: {len(self.instructions)} instructions"]
        shown = self.instructions if limit is None else self.instructions[:limit]
        for inst in shown:
            tag = f"  {inst.index:>6}  {inst!r}"
            if inst.layer:
                tag += f"    ; {inst.layer}"
            lines.append(tag)
        if limit is not None and len(self.instructions) > limit:
            lines.append(f"  ... {len(self.instructions) - limit} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class FlowInfo:
    """One producer->consumer message stream created by the compiler."""

    flow_id: int
    src_core: int
    dst_core: int
    layer: str
    n_messages: int
    bytes_per_message: int
    #: credit window (receiver ring depth); 0 = simulator default.
    window: int = 0
    #: what the stream carries: ``data`` (producer tiles to a consumer
    #: core), ``partial`` (split-weight partial sums to the home core) or
    #: ``shard`` (a token-shard's finished output tiles to the home core).
    kind: str = "data"


@dataclass
class ChipProgram:
    """All per-core programs plus chip-wide metadata."""

    network: str
    programs: dict[int, Program] = field(default_factory=dict)
    flows: dict[int, FlowInfo] = field(default_factory=dict)
    #: layer name -> list of core ids that hold (part of) its weights.
    layer_cores: dict[str, list[int]] = field(default_factory=dict)
    #: free-form compiler statistics for reports.
    meta: dict = field(default_factory=dict)

    def program(self, core: int) -> Program:
        try:
            return self.programs[core]
        except KeyError:
            raise ProgramError(f"no program for core {core}") from None

    @property
    def cores_used(self) -> list[int]:
        return sorted(self.programs)

    @property
    def total_instructions(self) -> int:
        return sum(len(p) for p in self.programs.values())

    def counts_by_unit(self) -> dict[str, int]:
        totals: dict[str, int] = {"matrix": 0, "vector": 0, "transfer": 0, "scalar": 0}
        for program in self.programs.values():
            for unit, count in program.counts_by_unit().items():
                totals[unit] += count
        return totals

    def sends_by_flow(self) -> dict[int, list[TransferInst]]:
        """All SEND instructions grouped by flow (verification helper)."""
        out: dict[int, list[TransferInst]] = {}
        for program in self.programs.values():
            for inst in program:
                if isinstance(inst, TransferInst) and inst.op == "SEND":
                    out.setdefault(inst.flow, []).append(inst)
        return out

    def recvs_by_flow(self) -> dict[int, list[TransferInst]]:
        """All RECV instructions grouped by flow (verification helper)."""
        out: dict[int, list[TransferInst]] = {}
        for program in self.programs.values():
            for inst in program:
                if isinstance(inst, TransferInst) and inst.op == "RECV":
                    out.setdefault(inst.flow, []).append(inst)
        return out

    def summary(self) -> str:
        counts = self.counts_by_unit()
        lines = [
            f"chip program for {self.network!r}:",
            f"  cores used      : {len(self.programs)}",
            f"  instructions    : {self.total_instructions:,}"
            f" (matrix={counts['matrix']:,} vector={counts['vector']:,}"
            f" transfer={counts['transfer']:,} scalar={counts['scalar']:,})",
            f"  flows           : {len(self.flows)}",
            f"  layers placed   : {len(self.layer_cores)}",
        ]
        return "\n".join(lines)


def _build_static_blockers(instructions: list[Instruction],
                           window: int) -> tuple | None:
    """One-sweep static dependence analysis for ``Program.static_blockers``.

    Maintains footprint-indexed maps of the last ``window - 1``
    instructions' register/group/memory accesses while walking the program
    in order; each instruction's conflicting predecessors are read
    straight out of the buckets its own footprint names.  Returns ``None``
    on the first branch (allocation order is no longer program order) —
    the runtime scoreboard handles those programs.
    """
    group_users: dict[int, list[int]] = {}
    reg_readers: dict[int, list[int]] = {}
    reg_writers: dict[int, list[int]] = {}
    mem_readers: deque = deque()  # (lo, hi, index), ascending index
    mem_writers: deque = deque()
    out: list[tuple[int, ...]] = []
    for i, inst in enumerate(instructions):
        if isinstance(inst, ScalarInst) and inst.is_control:
            if inst.op != "HALT":
                return None  # branchy: fall back to the runtime scoreboard
            out.append(())  # HALT is handled at dispatch, never allocated
            continue
        try:
            fp = inst._fp
        except AttributeError:
            fp = inst._footprint()
        groups, reads_r, writes_r, reads_m, writes_m = fp
        bound = i - window + 1
        conf: set[int] = set()
        for g in groups:
            for j in group_users.get(g, ()):
                if j >= bound:
                    conf.add(j)
        for r in reads_r:
            for j in reg_writers.get(r, ()):
                if j >= bound:
                    conf.add(j)
        for r in writes_r:
            for j in reg_writers.get(r, ()):
                if j >= bound:
                    conf.add(j)
            for j in reg_readers.get(r, ()):
                if j >= bound:
                    conf.add(j)
        if reads_m or writes_m:
            while mem_writers and mem_writers[0][2] < bound:
                mem_writers.popleft()
            for olo, ohi, j in mem_writers:
                for lo, hi in reads_m:
                    if lo < ohi and olo < hi:
                        conf.add(j)
                        break
                else:
                    for lo, hi in writes_m:
                        if lo < ohi and olo < hi:
                            conf.add(j)
                            break
        if writes_m:
            while mem_readers and mem_readers[0][2] < bound:
                mem_readers.popleft()
            for olo, ohi, j in mem_readers:
                for lo, hi in writes_m:
                    if lo < ohi and olo < hi:
                        conf.add(j)
                        break
        # Record this instruction's own accesses (prune lazily: the
        # per-element lists stay short because older indices age out of
        # the window and are dropped on the next touch).
        for g in groups:
            users = group_users.setdefault(g, [])
            if users and users[0] < bound:
                users[:] = [j for j in users if j >= bound]
            users.append(i)
        for r in reads_r:
            readers = reg_readers.setdefault(r, [])
            if readers and readers[0] < bound:
                readers[:] = [j for j in readers if j >= bound]
            readers.append(i)
        for r in writes_r:
            writers = reg_writers.setdefault(r, [])
            if writers and writers[0] < bound:
                writers[:] = [j for j in writers if j >= bound]
            writers.append(i)
        for lo, hi in reads_m:
            mem_readers.append((lo, hi, i))
        for lo, hi in writes_m:
            mem_writers.append((lo, hi, i))
        out.append(tuple(sorted(conf)))
    return tuple(out)
