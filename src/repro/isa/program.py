"""Per-core instruction streams and the whole-chip program.

A :class:`Program` is one core's instruction list plus its group table and
local-memory layout metadata.  A :class:`ChipProgram` bundles the per-core
programs with chip-wide flow metadata (which SEND matches which RECV) and
the compiler's layer placement summary — everything the simulator and the
static verifier need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .groups import GroupTable
from .instructions import Instruction, ScalarInst, TransferInst

__all__ = ["Program", "ChipProgram", "FlowInfo", "ProgramError"]


class ProgramError(ValueError):
    """Malformed program (missing halt, dangling flow, bad group id …)."""


@dataclass
class Program:
    """Instruction stream of one core."""

    core: int
    instructions: list[Instruction] = field(default_factory=list)
    groups: GroupTable | None = None
    #: highest local-memory byte used (for capacity checks/report).
    local_memory_used: int = 0
    _sealed: bool = False

    def append(self, inst: Instruction) -> Instruction:
        if self._sealed:
            raise ProgramError(f"core {self.core}: program is sealed")
        self.instructions.append(inst)
        return inst

    def extend(self, insts: list[Instruction]) -> None:
        for inst in insts:
            self.append(inst)

    def seal(self) -> "Program":
        """Terminate with HALT (if absent), number instructions, freeze."""
        if not self.instructions or not (
            isinstance(self.instructions[-1], ScalarInst)
            and self.instructions[-1].op == "HALT"
        ):
            self.instructions.append(ScalarInst(op="HALT"))
        for index, inst in enumerate(self.instructions):
            inst.index = index
        self._sealed = True
        return self

    @property
    def sealed(self) -> bool:
        return self._sealed

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def counts_by_unit(self) -> dict[str, int]:
        """Instruction histogram across the four execution units."""
        counts: dict[str, int] = {"matrix": 0, "vector": 0, "transfer": 0, "scalar": 0}
        for inst in self.instructions:
            counts[inst.unit] += 1
        return counts

    def listing(self, limit: int | None = None) -> str:
        """Readable assembly-style dump (first ``limit`` instructions)."""
        lines = [f"core {self.core}: {len(self.instructions)} instructions"]
        shown = self.instructions if limit is None else self.instructions[:limit]
        for inst in shown:
            tag = f"  {inst.index:>6}  {inst!r}"
            if inst.layer:
                tag += f"    ; {inst.layer}"
            lines.append(tag)
        if limit is not None and len(self.instructions) > limit:
            lines.append(f"  ... {len(self.instructions) - limit} more")
        return "\n".join(lines)


@dataclass(frozen=True)
class FlowInfo:
    """One producer->consumer message stream created by the compiler."""

    flow_id: int
    src_core: int
    dst_core: int
    layer: str
    n_messages: int
    bytes_per_message: int
    #: credit window (receiver ring depth); 0 = simulator default.
    window: int = 0


@dataclass
class ChipProgram:
    """All per-core programs plus chip-wide metadata."""

    network: str
    programs: dict[int, Program] = field(default_factory=dict)
    flows: dict[int, FlowInfo] = field(default_factory=dict)
    #: layer name -> list of core ids that hold (part of) its weights.
    layer_cores: dict[str, list[int]] = field(default_factory=dict)
    #: free-form compiler statistics for reports.
    meta: dict = field(default_factory=dict)

    def program(self, core: int) -> Program:
        try:
            return self.programs[core]
        except KeyError:
            raise ProgramError(f"no program for core {core}") from None

    @property
    def cores_used(self) -> list[int]:
        return sorted(self.programs)

    @property
    def total_instructions(self) -> int:
        return sum(len(p) for p in self.programs.values())

    def counts_by_unit(self) -> dict[str, int]:
        totals: dict[str, int] = {"matrix": 0, "vector": 0, "transfer": 0, "scalar": 0}
        for program in self.programs.values():
            for unit, count in program.counts_by_unit().items():
                totals[unit] += count
        return totals

    def sends_by_flow(self) -> dict[int, list[TransferInst]]:
        """All SEND instructions grouped by flow (verification helper)."""
        out: dict[int, list[TransferInst]] = {}
        for program in self.programs.values():
            for inst in program:
                if isinstance(inst, TransferInst) and inst.op == "SEND":
                    out.setdefault(inst.flow, []).append(inst)
        return out

    def recvs_by_flow(self) -> dict[int, list[TransferInst]]:
        """All RECV instructions grouped by flow (verification helper)."""
        out: dict[int, list[TransferInst]] = {}
        for program in self.programs.values():
            for inst in program:
                if isinstance(inst, TransferInst) and inst.op == "RECV":
                    out.setdefault(inst.flow, []).append(inst)
        return out

    def summary(self) -> str:
        counts = self.counts_by_unit()
        lines = [
            f"chip program for {self.network!r}:",
            f"  cores used      : {len(self.programs)}",
            f"  instructions    : {self.total_instructions:,}"
            f" (matrix={counts['matrix']:,} vector={counts['vector']:,}"
            f" transfer={counts['transfer']:,} scalar={counts['scalar']:,})",
            f"  flows           : {len(self.flows)}",
            f"  layers placed   : {len(self.layer_cores)}",
        ]
        return "\n".join(lines)
