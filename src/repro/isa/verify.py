"""Static verification of chip programs.

Run after compilation and before simulation: catches malformed programs
(dangling flows, unknown groups, out-of-range addresses) with source-level
messages instead of mid-simulation deadlocks.
"""

from __future__ import annotations

from ..config import ArchConfig
from .instructions import MvmInst, ScalarInst, TransferInst, VectorInst
from .program import ChipProgram, ProgramError

__all__ = ["verify_program", "VerificationError"]

N_REGISTERS = 32


class VerificationError(ProgramError):
    """One or more static checks failed; message lists all of them."""


def verify_program(chip: ChipProgram, config: ArchConfig) -> ChipProgram:
    """Run all static checks; returns the program on success."""
    errors: list[str] = []
    n_cores = config.chip.n_cores
    mem_limit = config.core.local_memory_bytes

    for core_id, program in sorted(chip.programs.items()):
        prefix = f"core {core_id}"
        if not 0 <= core_id < n_cores:
            errors.append(f"{prefix}: id outside the {n_cores}-core chip")
            continue
        if not program.sealed:
            errors.append(f"{prefix}: program not sealed")
            continue
        _check_stream(errors, prefix, program, chip, mem_limit, n_cores)

    _check_flows(errors, chip)

    if errors:
        raise VerificationError(
            f"program for {chip.network!r} failed verification "
            f"({len(errors)} error(s)):\n  - " + "\n  - ".join(errors[:40])
            + ("\n  - …" if len(errors) > 40 else "")
        )
    return chip


def _check_stream(errors: list[str], prefix: str, program, chip: ChipProgram,
                  mem_limit: int, n_cores: int) -> None:
    n = len(program.instructions)
    halts = [i for i, inst in enumerate(program)
             if isinstance(inst, ScalarInst) and inst.op == "HALT"]
    if not halts:
        errors.append(f"{prefix}: no HALT")
    elif halts[0] != n - 1:
        errors.append(f"{prefix}: HALT at {halts[0]} is not the last instruction")

    groups = program.groups
    for inst in program:
        where = f"{prefix} inst {inst.index}"
        for start, end in (*inst.reads_mem(), *inst.writes_mem()):
            if start < 0 or end > mem_limit:
                errors.append(
                    f"{where}: local-memory range [{start},{end}) outside "
                    f"0..{mem_limit}"
                )
            if start >= end:
                errors.append(f"{where}: empty/negative memory range [{start},{end})")
        if isinstance(inst, MvmInst):
            if groups is None:
                errors.append(f"{where}: MVM but core has no group table")
            else:
                try:
                    groups.get(inst.group)
                except Exception:
                    errors.append(f"{where}: undefined group {inst.group}")
            if inst.count < 1:
                errors.append(f"{where}: MVM count must be >= 1, got {inst.count}")
        elif isinstance(inst, VectorInst):
            if inst.length < 1:
                errors.append(f"{where}: vector length must be >= 1")
            if inst.n_sources == 2 and inst.src2_bytes < 0:
                errors.append(f"{where}: negative src2_bytes")
            if inst.n_sources < 2 and inst.src2_bytes:
                errors.append(
                    f"{where}: src2_bytes set on one-operand {inst.op}")
        elif isinstance(inst, TransferInst):
            if inst.op in ("SEND", "RECV") and not 0 <= inst.peer < n_cores:
                errors.append(f"{where}: peer {inst.peer} outside the chip")
            if inst.bytes < 1:
                errors.append(f"{where}: transfer of {inst.bytes} bytes")
            if inst.op in ("SEND", "RECV") and inst.flow not in chip.flows:
                errors.append(f"{where}: undeclared flow {inst.flow}")
        elif isinstance(inst, ScalarInst):
            regs = (*inst.reads_regs(), *inst.writes_regs())
            if any(not 0 <= r < N_REGISTERS for r in regs):
                errors.append(f"{where}: register out of range in {inst!r}")
            if inst.is_control and inst.op != "HALT" and not 0 <= inst.target < n:
                errors.append(f"{where}: branch target {inst.target} outside stream")


def _check_flows(errors: list[str], chip: ChipProgram) -> None:
    sends = chip.sends_by_flow()
    recvs = chip.recvs_by_flow()
    for flow_id, info in sorted(chip.flows.items()):
        flow_sends = sends.get(flow_id, [])
        flow_recvs = recvs.get(flow_id, [])
        if len(flow_sends) != len(flow_recvs):
            errors.append(
                f"flow {flow_id} ({info.layer}): {len(flow_sends)} sends vs "
                f"{len(flow_recvs)} recvs"
            )
            continue
        if len(flow_sends) != info.n_messages:
            errors.append(
                f"flow {flow_id} ({info.layer}): declared {info.n_messages} "
                f"messages, found {len(flow_sends)}"
            )
        send_seqs = sorted(s.seq for s in flow_sends)
        recv_seqs = sorted(r.seq for r in flow_recvs)
        if send_seqs != list(range(len(flow_sends))):
            errors.append(f"flow {flow_id}: send seqs not dense: {send_seqs[:8]}…")
        if recv_seqs != list(range(len(flow_recvs))):
            errors.append(f"flow {flow_id}: recv seqs not dense: {recv_seqs[:8]}…")
        for send in flow_sends:
            if send.peer != info.dst_core:
                errors.append(
                    f"flow {flow_id}: SEND peer {send.peer} != declared dst "
                    f"{info.dst_core}"
                )
                break
        for recv in flow_recvs:
            if recv.peer != info.src_core:
                errors.append(
                    f"flow {flow_id}: RECV peer {recv.peer} != declared src "
                    f"{info.src_core}"
                )
                break
    undeclared = (set(sends) | set(recvs)) - set(chip.flows)
    for flow_id in sorted(undeclared):
        errors.append(f"flow {flow_id}: used by transfers but never declared")
