"""Parameter sweeps: the evaluation loops behind Figs. 3, 4 and 5.

All sweeps run through one executor, :func:`run_sweep`, which takes a list
of :class:`SweepJob` points and simulates them either serially (``workers
<= 1``) or on a process pool.  Results are returned in job order and are
identical either way (each simulation is a deterministic pure function of
its job).  Every worker process carries its own compile cache, so
repeated-configuration points — e.g. the ROB sweep, whose compiled program
is independent of ROB capacity — skip recompilation.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..baseline import run_baseline
from ..config import ArchConfig, mnsim_like_chip, paper_chip
from ..graph import Graph
from .api import resolve_network, simulate
from .results import SimReport

__all__ = [
    "SweepJob",
    "run_sweep",
    "sweep",
    "MappingComparison",
    "RobSweep",
    "BaselineComparison",
    "compare_mappings",
    "sweep_rob",
    "compare_with_baseline",
]


@dataclass
class SweepJob:
    """One point of a sweep: a network plus per-point overrides.

    Mirrors the keyword surface of :func:`repro.runner.api.simulate`;
    ``tag`` is carried through untouched so callers can label points.
    """

    network: str | Graph
    config: ArchConfig | None = None
    mapping: str | None = None
    rob_size: int | None = None
    imagenet: bool = False
    batch: int = 1
    max_cycles: int | None = None
    tag: Any = None


def _run_job(job: SweepJob) -> SimReport:
    report = simulate(job.network, job.config, mapping=job.mapping,
                      rob_size=job.rob_size, imagenet=job.imagenet,
                      batch=job.batch, max_cycles=job.max_cycles)
    if job.tag is not None:
        report.meta["sweep_tag"] = job.tag
    return report


def run_sweep(jobs: Sequence[SweepJob] | Iterable[SweepJob], *,
              workers: int | None = 1,
              chunksize: int = 1) -> list[SimReport]:
    """Simulate every job, returning reports in job order.

    ``workers > 1`` fans the points out over a process pool
    (``workers=None`` uses all CPUs); results are bit-identical to the
    serial path.  Graph-object networks are shipped to workers by pickling.
    """
    jobs = list(jobs)
    if workers is None:
        workers = os.cpu_count() or 1
    workers = min(workers, len(jobs))
    if workers <= 1:
        return [_run_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_job, jobs, chunksize=chunksize))


def sweep(configs: ArchConfig | Sequence[ArchConfig],
          networks: str | Graph | Sequence[str | Graph], *,
          workers: int | None = 1, **overrides: Any) -> list[SimReport]:
    """Cross-product sweep: every configuration on every network.

    Returns reports ordered configuration-major (``configs[0]`` over all
    networks first).  Extra keyword arguments become per-job overrides
    (``mapping=``, ``rob_size=``, ``batch=`` ...).
    """
    if isinstance(configs, ArchConfig):
        configs = [configs]
    if isinstance(networks, (str, Graph)):
        networks = [networks]
    jobs = [SweepJob(network, config, **overrides)
            for config in configs for network in networks]
    return run_sweep(jobs, workers=workers)


@dataclass
class MappingComparison:
    """Fig. 3 data: one network, both mapping policies."""

    network: str
    utilization: SimReport
    performance: SimReport

    @property
    def latency_ratio(self) -> float:
        """performance-first latency / utilization-first latency."""
        return self.performance.cycles / self.utilization.cycles

    @property
    def energy_ratio(self) -> float:
        return (self.performance.total_energy_pj
                / self.utilization.total_energy_pj)


def compare_mappings(network: str | Graph, config: ArchConfig | None = None, *,
                     rob_size: int = 1,
                     workers: int | None = 1) -> MappingComparison:
    """Run both mapping policies (paper setting: ROB size 1)."""
    config = (config or paper_chip()).with_rob_size(rob_size)
    utilization, performance = run_sweep(
        [SweepJob(network, config, mapping="utilization_first"),
         SweepJob(network, config, mapping="performance_first")],
        workers=workers)
    return MappingComparison(
        network=network if isinstance(network, str) else network.name,
        utilization=utilization,
        performance=performance,
    )


@dataclass
class RobSweep:
    """Fig. 4 data: one network across ROB capacities."""

    network: str
    reports: dict[int, SimReport] = field(default_factory=dict)

    def normalized_latency(self) -> dict[int, float]:
        """Latency normalized to the smallest ROB size."""
        base = self.reports[min(self.reports)].cycles
        return {size: r.cycles / base for size, r in sorted(self.reports.items())}


def sweep_rob(network: str | Graph, config: ArchConfig | None = None, *,
              sizes: tuple[int, ...] = (1, 4, 8, 12, 16),
              workers: int | None = 1) -> RobSweep:
    """Simulate across ROB sizes (performance-first, as in Fig. 4).

    The compiled program is independent of ROB capacity, so with the
    compile cache on (the default) the network is compiled once and only
    re-simulated per size.
    """
    config = config or paper_chip()
    result = RobSweep(network if isinstance(network, str) else network.name)
    reports = run_sweep(
        [SweepJob(network, config, rob_size=size) for size in sizes],
        workers=workers)
    for size, report in zip(sizes, reports):
        result.reports[size] = report
    return result


@dataclass
class BaselineComparison:
    """Fig. 5 data: cycle-accurate vs MNSIM2.0-style on one network."""

    network: str
    ours: SimReport
    baseline_cycles: int
    baseline_comm_ratio: dict[str, float]

    @property
    def latency_vs_baseline(self) -> float:
        """Our latency normalized to the baseline's (paper's Fig. 5 axis)."""
        return self.ours.cycles / self.baseline_cycles


def compare_with_baseline(network: str | Graph,
                          config: ArchConfig | None = None, *,
                          workers: int | None = 1) -> BaselineComparison:
    """Run our simulator and the behaviour-level baseline on one network."""
    config = config or mnsim_like_chip()
    graph = resolve_network(network)
    ours = run_sweep([SweepJob(graph, config)], workers=workers)[0]
    base = run_baseline(graph, config)
    return BaselineComparison(
        network=graph.name,
        ours=ours,
        baseline_cycles=base.cycles,
        baseline_comm_ratio={layer: base.comm_ratio(layer)
                             for layer in base.layer_compute},
    )
