"""Parameter sweeps: the evaluation loops behind Figs. 3, 4 and 5.

All sweeps run through one executor, :func:`run_sweep`, which takes a list
of :class:`SweepJob` points and hands them to an
:class:`~repro.engine.Engine` — either the process-wide default engine or
one passed by the caller.  Results are returned in job order and are
identical whether they run serially or on the engine's persistent worker
pool (each simulation is a deterministic pure function of its job).
Every worker carries its own compile cache that survives *across* sweeps,
so repeated-configuration points — e.g. the ROB sweep, whose compiled
program is independent of ROB capacity — skip recompilation even between
back-to-back calls.

:class:`SweepJob` is a deprecation-era alias of
:class:`repro.engine.JobSpec`; new code should build specs directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..baseline import run_baseline
from ..config import ArchConfig, mnsim_like_chip, paper_chip
from ..engine.spec import JobSpec
from ..graph import Graph
from .results import SimReport

__all__ = [
    "SweepJob",
    "run_sweep",
    "sweep",
    "MappingComparison",
    "RobSweep",
    "BaselineComparison",
    "compare_mappings",
    "sweep_rob",
    "compare_with_baseline",
]


class SweepJob(JobSpec):
    """One point of a sweep: a network plus per-point overrides.

    Deprecated alias of :class:`repro.engine.JobSpec` (same fields, same
    construction); kept so existing sweep code and pickled jobs keep
    working unchanged.
    """


def _engine(engine=None):
    from ..engine import resolve_engine  # lazy: circular-import safe
    return resolve_engine(engine)


def run_sweep(jobs: Sequence[JobSpec] | Iterable[JobSpec], *,
              workers: int | None = 1,
              chunksize: int = 1,
              engine=None) -> list[SimReport]:
    """Simulate every job, returning reports in job order.

    ``workers > 1`` fans the points out over the engine's persistent
    worker pool (``workers=None`` uses the engine's default width — all
    CPUs for the default engine); results are bit-identical to the serial
    path.  Graph-object networks are shipped to workers by pickling.
    ``chunksize`` is accepted for backward compatibility and ignored —
    the pool deals jobs individually and deterministically.

    Unlike the pre-engine executor, the worker pool *persists* after the
    call (that is what makes back-to-back sweeps skip pool spin-up and
    recompilation); call ``repro.engine.default_engine().close()`` to
    release the default engine's workers early — otherwise they are torn
    down at interpreter exit.
    """
    del chunksize
    return _engine(engine).map(list(jobs), workers=workers)


def sweep(configs: ArchConfig | Sequence[ArchConfig],
          networks: str | Graph | Sequence[str | Graph], *,
          workers: int | None = 1, engine=None,
          **overrides: Any) -> list[SimReport]:
    """Cross-product sweep: every configuration on every network.

    Returns reports ordered configuration-major (``configs[0]`` over all
    networks first).  Extra keyword arguments become per-job overrides
    (``mapping=``, ``rob_size=``, ``batch=``, ``attention_shards=`` ...).
    """
    if isinstance(configs, ArchConfig):
        configs = [configs]
    if isinstance(networks, (str, Graph)):
        networks = [networks]
    jobs = [JobSpec(network, config, **overrides)
            for config in configs for network in networks]
    return run_sweep(jobs, workers=workers, engine=engine)


@dataclass
class MappingComparison:
    """Fig. 3 data: one network, both mapping policies."""

    network: str
    utilization: SimReport
    performance: SimReport

    @property
    def latency_ratio(self) -> float:
        """performance-first latency / utilization-first latency."""
        return self.performance.cycles / self.utilization.cycles

    @property
    def energy_ratio(self) -> float:
        return (self.performance.total_energy_pj
                / self.utilization.total_energy_pj)


def compare_mappings(network: str | Graph, config: ArchConfig | None = None, *,
                     rob_size: int = 1,
                     workers: int | None = 1,
                     fidelity: str | None = None,
                     engine=None) -> MappingComparison:
    """Run both mapping policies (paper setting: ROB size 1).

    ``fidelity`` overrides the execution fidelity of both runs
    (``"cycle"`` or ``"fast"``; ``None`` keeps the engine/config
    default) — the comparison itself is mapping-to-mapping either way.
    """
    config = (config or paper_chip()).with_rob_size(rob_size)
    utilization, performance = run_sweep(
        [JobSpec(network, config, mapping="utilization_first",
                 fidelity=fidelity),
         JobSpec(network, config, mapping="performance_first",
                 fidelity=fidelity)],
        workers=workers, engine=engine)
    return MappingComparison(
        network=network if isinstance(network, str) else network.name,
        utilization=utilization,
        performance=performance,
    )


@dataclass
class RobSweep:
    """Fig. 4 data: one network across ROB capacities."""

    network: str
    reports: dict[int, SimReport] = field(default_factory=dict)

    def normalized_latency(self) -> dict[int, float]:
        """Latency normalized to the smallest ROB size."""
        base = self.reports[min(self.reports)].cycles
        return {size: r.cycles / base for size, r in sorted(self.reports.items())}


def sweep_rob(network: str | Graph, config: ArchConfig | None = None, *,
              sizes: tuple[int, ...] = (1, 4, 8, 12, 16),
              workers: int | None = 1,
              fidelity: str | None = None,
              engine=None) -> RobSweep:
    """Simulate across ROB sizes (performance-first, as in Fig. 4).

    The compiled program is independent of ROB capacity, so with the
    compile cache on (the default) the network is compiled once and only
    re-simulated per size.  ``fidelity`` overrides the execution
    fidelity of every point (``None``: engine/config default).
    """
    config = config or paper_chip()
    result = RobSweep(network if isinstance(network, str) else network.name)
    reports = run_sweep(
        [JobSpec(network, config, rob_size=size, fidelity=fidelity)
         for size in sizes],
        workers=workers, engine=engine)
    for size, report in zip(sizes, reports):
        result.reports[size] = report
    return result


@dataclass
class BaselineComparison:
    """Fig. 5 data: cycle-accurate vs MNSIM2.0-style on one network."""

    network: str
    ours: SimReport
    baseline_cycles: int
    baseline_comm_ratio: dict[str, float]

    @property
    def latency_vs_baseline(self) -> float:
        """Our latency normalized to the baseline's (paper's Fig. 5 axis)."""
        return self.ours.cycles / self.baseline_cycles


def compare_with_baseline(network: str | Graph,
                          config: ArchConfig | None = None, *,
                          workers: int | None = 1,
                          engine=None) -> BaselineComparison:
    """Run our simulator and the behaviour-level baseline on one network."""
    config = config or mnsim_like_chip()
    graph = _engine(engine).resolve_network(network)
    ours = run_sweep([JobSpec(graph, config)], workers=workers,
                     engine=engine)[0]
    base = run_baseline(graph, config)
    return BaselineComparison(
        network=graph.name,
        ours=ours,
        baseline_cycles=base.cycles,
        baseline_comm_ratio={layer: base.comm_ratio(layer)
                             for layer in base.layer_compute},
    )
