"""Parameter sweeps: the evaluation loops behind Figs. 3, 4 and 5."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baseline import run_baseline
from ..config import ArchConfig, mnsim_like_chip, paper_chip
from .api import resolve_network, simulate
from .results import SimReport

__all__ = [
    "MappingComparison",
    "RobSweep",
    "BaselineComparison",
    "compare_mappings",
    "sweep_rob",
    "compare_with_baseline",
]


@dataclass
class MappingComparison:
    """Fig. 3 data: one network, both mapping policies."""

    network: str
    utilization: SimReport
    performance: SimReport

    @property
    def latency_ratio(self) -> float:
        """performance-first latency / utilization-first latency."""
        return self.performance.cycles / self.utilization.cycles

    @property
    def energy_ratio(self) -> float:
        return (self.performance.total_energy_pj
                / self.utilization.total_energy_pj)


def compare_mappings(network: str, config: ArchConfig | None = None, *,
                     rob_size: int = 1) -> MappingComparison:
    """Run both mapping policies (paper setting: ROB size 1)."""
    config = (config or paper_chip()).with_rob_size(rob_size)
    return MappingComparison(
        network=network if isinstance(network, str) else network.name,
        utilization=simulate(network, config, mapping="utilization_first"),
        performance=simulate(network, config, mapping="performance_first"),
    )


@dataclass
class RobSweep:
    """Fig. 4 data: one network across ROB capacities."""

    network: str
    reports: dict[int, SimReport] = field(default_factory=dict)

    def normalized_latency(self) -> dict[int, float]:
        """Latency normalized to the smallest ROB size."""
        base = self.reports[min(self.reports)].cycles
        return {size: r.cycles / base for size, r in sorted(self.reports.items())}


def sweep_rob(network: str, config: ArchConfig | None = None, *,
              sizes: tuple[int, ...] = (1, 4, 8, 12, 16)) -> RobSweep:
    """Simulate across ROB sizes (performance-first, as in Fig. 4)."""
    config = config or paper_chip()
    sweep = RobSweep(network if isinstance(network, str) else network.name)
    for size in sizes:
        sweep.reports[size] = simulate(network, config, rob_size=size)
    return sweep


@dataclass
class BaselineComparison:
    """Fig. 5 data: cycle-accurate vs MNSIM2.0-style on one network."""

    network: str
    ours: SimReport
    baseline_cycles: int
    baseline_comm_ratio: dict[str, float]

    @property
    def latency_vs_baseline(self) -> float:
        """Our latency normalized to the baseline's (paper's Fig. 5 axis)."""
        return self.ours.cycles / self.baseline_cycles


def compare_with_baseline(network: str,
                          config: ArchConfig | None = None) -> BaselineComparison:
    """Run our simulator and the behaviour-level baseline on one network."""
    config = config or mnsim_like_chip()
    graph = resolve_network(network)
    ours = simulate(graph, config)
    base = run_baseline(graph, config)
    return BaselineComparison(
        network=graph.name,
        ours=ours,
        baseline_cycles=base.cycles,
        baseline_comm_ratio={layer: base.comm_ratio(layer)
                             for layer in base.layer_compute},
    )
