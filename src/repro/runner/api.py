"""One-call public API: compile and simulate a network.

>>> from repro import simulate, paper_chip
>>> report = simulate("alexnet", paper_chip())
>>> report.cycles > 0
True
"""

from __future__ import annotations

from ..arch import run_program
from ..compiler import CompilationResult, compile_cache, compile_network
from ..config import ArchConfig, paper_chip
from ..graph import Graph
from ..models import build_model
from .results import SimReport

__all__ = ["simulate", "compile_model", "resolve_network"]

#: memoized zoo builds: (name, imagenet) -> Graph.  Returning the same
#: graph object for repeated names is what keys the compile cache.
_model_cache: dict[tuple[str, bool], Graph] = {}


def resolve_network(network: str | Graph, *, imagenet: bool = False) -> Graph:
    """Accept either a zoo model name or an already-built graph.

    Zoo builds are memoized per ``(name, imagenet)`` so repeated calls
    share one graph object (zoo builds are deterministic and the compiler
    never mutates its input graph).
    """
    if isinstance(network, Graph):
        return network
    key = (network, imagenet)
    graph = _model_cache.get(key)
    if graph is None:
        graph = _model_cache[key] = build_model(network, imagenet=imagenet)
    return graph


def compile_model(network: str | Graph, config: ArchConfig | None = None, *,
                  mapping: str | None = None,
                  imagenet: bool = False,
                  cache: bool = True) -> CompilationResult:
    """Compile a network for an architecture (default: the paper chip).

    With ``cache`` (default), identical ``(graph, architecture, mapping)``
    points are compiled once per process (see
    :class:`repro.compiler.CompileCache`).
    """
    graph = resolve_network(network, imagenet=imagenet)
    config = config or paper_chip()
    if mapping is not None:
        config = config.with_mapping(mapping)
    if cache:
        return compile_cache.get_or_compile(graph, config)
    return compile_network(graph, config)


def simulate(network: str | Graph, config: ArchConfig | None = None, *,
             mapping: str | None = None, rob_size: int | None = None,
             imagenet: bool = False, batch: int = 1,
             max_cycles: int | None = None,
             compile_cache: bool = True) -> SimReport:
    """Compile and cycle-accurately simulate a network; returns the report.

    ``mapping`` / ``rob_size`` override the corresponding configuration
    fields — the two knobs the paper's evaluation sweeps (Figs. 3 and 4).
    ``batch > 1`` unrolls the program for a stream of images (pipelined
    throughput mode); the report's cycles cover the whole stream and its
    metadata records the batch for throughput math.

    ``compile_cache`` (default on) reuses compilations for repeated
    ``(network, architecture, mapping)`` points; the process-wide hit/miss
    counters are exposed as ``report.compile_cache_hits`` /
    ``report.compile_cache_misses`` (``meta["compile_cache_*"]``) so sweeps
    can assert they are not recompiling.
    """
    config = config or paper_chip()
    if mapping is not None:
        config = config.with_mapping(mapping)
    if rob_size is not None:
        config = config.with_rob_size(rob_size)
    compiled = compile_model(network, config, imagenet=imagenet,
                             cache=compile_cache)
    program = compiled.program
    if batch > 1:
        from ..compiler.batching import repeat_chip_program
        program = repeat_chip_program(program, batch)
    raw = run_program(program, config, max_cycles=max_cycles)
    report = SimReport.from_raw(raw, config, program.total_instructions)
    if compile_cache:
        from ..compiler import compile_cache as cache
        report.meta["compile_cache_hits"] = cache.hits
        report.meta["compile_cache_misses"] = cache.misses
    return report
