"""One-call public API: compile and simulate a network.

>>> from repro import simulate, paper_chip
>>> report = simulate("alexnet", paper_chip())
>>> report.cycles > 0
True
"""

from __future__ import annotations

from ..arch import run_program
from ..compiler import CompilationResult, compile_network
from ..config import ArchConfig, paper_chip
from ..graph import Graph
from ..models import build_model
from .results import SimReport

__all__ = ["simulate", "compile_model", "resolve_network"]


def resolve_network(network: str | Graph, *, imagenet: bool = False) -> Graph:
    """Accept either a zoo model name or an already-built graph."""
    if isinstance(network, Graph):
        return network
    return build_model(network, imagenet=imagenet)


def compile_model(network: str | Graph, config: ArchConfig | None = None, *,
                  mapping: str | None = None,
                  imagenet: bool = False) -> CompilationResult:
    """Compile a network for an architecture (default: the paper chip)."""
    graph = resolve_network(network, imagenet=imagenet)
    config = config or paper_chip()
    if mapping is not None:
        config = config.with_mapping(mapping)
    return compile_network(graph, config)


def simulate(network: str | Graph, config: ArchConfig | None = None, *,
             mapping: str | None = None, rob_size: int | None = None,
             imagenet: bool = False, batch: int = 1,
             max_cycles: int | None = None) -> SimReport:
    """Compile and cycle-accurately simulate a network; returns the report.

    ``mapping`` / ``rob_size`` override the corresponding configuration
    fields — the two knobs the paper's evaluation sweeps (Figs. 3 and 4).
    ``batch > 1`` unrolls the program for a stream of images (pipelined
    throughput mode); the report's cycles cover the whole stream and its
    metadata records the batch for throughput math.
    """
    config = config or paper_chip()
    if mapping is not None:
        config = config.with_mapping(mapping)
    if rob_size is not None:
        config = config.with_rob_size(rob_size)
    compiled = compile_model(network, config, imagenet=imagenet)
    program = compiled.program
    if batch > 1:
        from ..compiler.batching import repeat_chip_program
        program = repeat_chip_program(program, batch)
    raw = run_program(program, config, max_cycles=max_cycles)
    return SimReport.from_raw(raw, config, program.total_instructions)
