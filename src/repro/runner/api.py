"""One-call public API: compile and simulate a network.

>>> from repro import simulate, paper_chip
>>> report = simulate("alexnet", paper_chip())
>>> report.cycles > 0
True

Every function here is a thin shim over the process-wide
:func:`repro.engine.default_engine` — persistent sessions, job files and
parallel streaming live on :class:`repro.engine.Engine`; this module keeps
the historical one-shot surface (and its global caches) bit-identical.
"""

from __future__ import annotations

from ..compiler import CompilationResult
from ..config import ArchConfig
from ..graph import Graph
from .results import SimReport

__all__ = ["simulate", "compile_model", "resolve_network"]

#: memoized zoo builds: (name, imagenet) -> Graph.  Deprecated as a public
#: touchpoint: this dict is now owned by ``repro.engine.default_engine()``
#: (it stays importable so existing callers keep the exact same cache).
_model_cache: dict[tuple[str, bool], Graph] = {}


def _engine():
    from ..engine import resolve_engine  # lazy: circular-import safe
    return resolve_engine()


def resolve_network(network: str | Graph, *, imagenet: bool = False) -> Graph:
    """Accept either a zoo model name or an already-built graph.

    Zoo builds are memoized per ``(name, imagenet)`` so repeated calls
    share one graph object (zoo builds are deterministic and the compiler
    never mutates its input graph).  Delegates to the default engine's
    resolver; prefer :meth:`repro.engine.Engine.resolve_network` for
    session-scoped caching.
    """
    return _engine().resolve_network(network, imagenet=imagenet)


def compile_model(network: str | Graph, config: ArchConfig | None = None, *,
                  mapping: str | None = None,
                  imagenet: bool = False,
                  attention_shards: int | None = None,
                  cache: bool = True) -> CompilationResult:
    """Compile a network for an architecture (default: the paper chip).

    With ``cache`` (default), identical ``(graph, architecture, mapping)``
    points are compiled once per process (see
    :class:`repro.compiler.CompileCache`).  Delegates to the default
    engine; prefer :meth:`repro.engine.Engine.compile` for a private cache.
    """
    return _engine().compile(network, config, mapping=mapping,
                             imagenet=imagenet,
                             attention_shards=attention_shards, cache=cache)


def simulate(network: str | Graph, config: ArchConfig | None = None, *,
             mapping: str | None = None, rob_size: int | None = None,
             imagenet: bool = False, batch: int = 1,
             max_cycles: int | None = None,
             attention_shards: int | None = None,
             fidelity: str | None = None,
             compile_cache: bool = True) -> SimReport:
    """Compile and simulate a network; returns the report.

    ``mapping`` / ``rob_size`` override the corresponding configuration
    fields — the two knobs the paper's evaluation sweeps (Figs. 3 and 4);
    ``attention_shards`` overrides the token-sharded dynamic-attention
    width the same way.  ``fidelity`` selects the execution mode:
    ``"cycle"`` (default) is bit-exact event-driven simulation, ``"fast"``
    the batched analytic executor (bounded-error cycles, same report
    shape; see the Fidelity section of :mod:`repro.engine`).  ``batch > 1`` unrolls the program for a stream of
    images (pipelined throughput mode); the report's cycles cover the
    whole stream and its metadata records the batch for throughput math.

    ``compile_cache`` (default on) reuses compilations for repeated
    ``(network, architecture, mapping)`` points; the process-wide hit/miss
    counters are exposed as ``report.compile_cache_hits`` /
    ``report.compile_cache_misses`` (``meta["compile_cache_*"]``) so sweeps
    can assert they are not recompiling.

    Delegates to the default engine — prefer
    :meth:`repro.engine.Engine.simulate` when running many jobs: a
    session-scoped engine keeps its caches and worker pool warm.
    """
    return _engine().simulate(network, config, mapping=mapping,
                              rob_size=rob_size, imagenet=imagenet,
                              batch=batch, max_cycles=max_cycles,
                              attention_shards=attention_shards,
                              fidelity=fidelity,
                              compile_cache=compile_cache)
