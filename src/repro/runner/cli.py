"""Command-line interface: ``pimsim``.

Subcommands mirror the framework workflow (Fig. 1) and the paper's
experiments::

    pimsim run --model resnet18 --preset paper --mapping performance_first
    pimsim compile --model vgg8 --listing 40
    pimsim mappings --model alexnet            # Fig. 3 point
    pimsim rob --model googlenet               # Fig. 4 series
    pimsim mnsim --model resnet18              # Fig. 5 point
    pimsim batch jobs.json --workers 4         # spec file -> JSONL reports
    pimsim batch jobs.json --workers 4 --output run.jsonl --resume
    pimsim serve --store jobs.store.jsonl      # durable HTTP job service
    pimsim decode --model gpt_tiny --steps 32  # compile-once decode
    pimsim decode --mix mix.json --workers 4   # continuous-batching mix
    pimsim tune vit_tiny --budget 8            # cost-model-guided autotune
    pimsim models
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path

from ..analysis import ascii_bars, comm_ratios, step_latency_stats
from ..config import FIDELITIES, PRESETS, ArchConfig, get_preset, validate
from ..engine import Engine, JobFailed, JobSpec, PoolUnavailable, load_specs
from ..models import DECODE_MODELS, MODELS
from .api import compile_model, simulate
from .sweep import compare_mappings, compare_with_baseline, sweep_rob

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", required=True,
                        help=f"network name ({', '.join(sorted(MODELS))})")
    parser.add_argument("--preset", default="paper",
                        help=f"architecture preset ({', '.join(sorted(PRESETS))})")
    parser.add_argument("--config", default=None,
                        help="architecture configuration JSON file "
                             "(overrides --preset)")
    parser.add_argument("--imagenet", action="store_true",
                        help="use 224x224 inputs instead of 32x32")


def _load_config(args: argparse.Namespace) -> ArchConfig:
    if args.config:
        return ArchConfig.load(args.config)
    return get_preset(args.preset)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pimsim",
        description="PIMSIM-NN reproduction: ISA-based PIM simulation framework")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile + simulate one network")
    _add_common(run)
    run.add_argument("--mapping", choices=["utilization_first",
                                           "performance_first"])
    run.add_argument("--rob", type=int, default=None, help="ROB size override")
    run.add_argument("--batch", type=int, default=1,
                     help="pipelined image stream length (throughput mode)")
    run.add_argument("--shards", type=int, default=None,
                     help="compiler.attention_shards override (token-sharded "
                          "dynamic attention)")
    run.add_argument("--fidelity", choices=list(FIDELITIES), default=None,
                     help="execution mode: cycle (bit-exact, default) or "
                          "fast (batched analytic, bounded-error)")
    run.add_argument("--json", default=None, help="write the report as JSON")
    run.add_argument("--comm-ratios", action="store_true",
                     help="print per-layer communication ratios")
    run.add_argument("--full-report", action="store_true",
                     help="print the complete per-layer/per-core report")

    comp = sub.add_parser("compile", help="compile only; print program stats")
    _add_common(comp)
    comp.add_argument("--mapping", choices=["utilization_first",
                                            "performance_first"])
    comp.add_argument("--listing", type=int, default=0, metavar="N",
                      help="print the first N instructions of each core")
    comp.add_argument("--shards", type=int, default=None,
                      help="compiler.attention_shards override")

    mappings = sub.add_parser("mappings",
                              help="compare both mapping policies (Fig. 3)")
    _add_common(mappings)
    mappings.add_argument("--rob", type=int, default=1)
    mappings.add_argument("--workers", type=int, default=1,
                          help="simulate sweep points on N worker processes")
    mappings.add_argument("--fidelity", choices=list(FIDELITIES), default=None,
                          help="execution mode for both runs: cycle "
                               "(bit-exact, default) or fast (batched "
                               "analytic, bounded-error)")

    rob = sub.add_parser("rob", help="sweep ROB sizes (Fig. 4)")
    _add_common(rob)
    rob.add_argument("--workers", type=int, default=1,
                      help="simulate sweep points on N worker processes")
    rob.add_argument("--sizes", default="1,4,8,12,16",
                     help="comma-separated ROB sizes")
    rob.add_argument("--fidelity", choices=list(FIDELITIES), default=None,
                     help="execution mode for every point: cycle "
                          "(bit-exact, default) or fast (batched "
                          "analytic, bounded-error)")

    mnsim = sub.add_parser("mnsim",
                           help="compare with the MNSIM2.0-style baseline "
                                "(Fig. 5)")
    _add_common(mnsim)

    batch = sub.add_parser(
        "batch",
        help="run a JSON job-spec file on a persistent engine, emit JSONL")
    batch.add_argument("specfile", help="JSON file: one spec, a list, or "
                                        "{'jobs': [...]} (see repro.engine)")
    batch.add_argument("--workers", type=int, default=1,
                       help="persistent worker processes (default: serial)")
    batch.add_argument("--preset", default="paper",
                       help="default preset for jobs without a config "
                            f"({', '.join(sorted(PRESETS))})")
    batch.add_argument("--output", default=None, metavar="PATH",
                       help="write JSONL here instead of stdout (doubles "
                            "as the --resume journal)")
    batch.add_argument("--resume", action="store_true",
                       help="append to --output, skipping every index it "
                            "already covers (requires --output)")
    batch.add_argument("--max-retries", type=int, default=1, metavar="N",
                       help="resubmissions allowed per job after a worker "
                            "crash before it is quarantined as poisoned "
                            "(pooled runs; default 1)")
    batch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-job wall-clock timeout enforced by the "
                            "pool watchdog; overridden by a spec's own "
                            "timeout (pooled runs; default: none)")
    batch.add_argument("--fidelity", choices=list(FIDELITIES), default=None,
                       help="default execution mode for jobs that do not "
                            "set their own (cycle: bit-exact; fast: "
                            "batched analytic, bounded-error)")
    batch.add_argument("--progress", action="store_true",
                       help="print per-job completions to stderr")

    serve = sub.add_parser(
        "serve",
        help="durable HTTP job service over the engine (crash-safe store, "
             "admission control, graceful drain)")
    serve.add_argument("--store", required=True, metavar="PATH",
                       help="crash-safe job journal (JSONL); restarting "
                            "against the same store resumes interrupted "
                            "jobs and serves settled results forever")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787,
                       help="listen port (0: ephemeral; the resolved port "
                            "is printed to stderr before serving)")
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes per engine session "
                            "(default: all CPUs)")
    serve.add_argument("--preset", default="paper",
                       help="default preset for jobs without a config "
                            f"({', '.join(sorted(PRESETS))})")
    serve.add_argument("--max-retries", type=int, default=1, metavar="N",
                       help="worker-crash retries per job before poison "
                            "quarantine (default 1)")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job wall-clock timeout (a spec's "
                            "own timeout overrides it)")
    serve.add_argument("--max-backlog", type=int, default=None, metavar="N",
                       help="admission high-water mark: unsettled jobs "
                            "beyond this are refused with 503 + "
                            "Retry-After (default: 8 per worker, min 16)")
    serve.add_argument("--max-sessions", type=int, default=4, metavar="N",
                       help="LRU bound on per-configuration engine "
                            "sessions (default 4)")
    serve.add_argument("--max-restarts", type=int, default=1, metavar="N",
                       help="server crashes a job may be caught running "
                            "through before the store quarantines it as "
                            "poisoned (default 1)")
    serve.add_argument("--fidelity", choices=list(FIDELITIES), default=None,
                       help="default execution mode for jobs that do not "
                            "set their own (applied to the preset "
                            "configuration; a job's fidelity field wins)")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, seconds to let running "
                            "jobs finish before aborting them back to "
                            "the queue (default 30)")

    decode = sub.add_parser(
        "decode",
        help="autoregressive decode: compile-once KV-cache stepping, or a "
             "continuous-batching serving mix (--mix)")
    decode.add_argument("--model", default=None,
                        help="decode network "
                             f"({', '.join(sorted(DECODE_MODELS))})")
    decode.add_argument("--steps", type=int, default=32, metavar="N",
                        help="decode steps to run (default 32)")
    decode.add_argument("--kv-tokens", type=int, default=None, metavar="T",
                        help="KV extent at the first step (default: the "
                             "token count the model was built with)")
    decode.add_argument("--mix", default=None, metavar="SPECFILE",
                        help="serving mix instead of a single request: "
                             "JSON job specs (decode requests set "
                             "decode_steps/kv_tokens; others are prefill)")
    decode.add_argument("--workers", type=int, default=1,
                        help="worker processes for --mix (default: serial)")
    decode.add_argument("--preset", default="paper",
                        help="architecture preset "
                             f"({', '.join(sorted(PRESETS))})")
    decode.add_argument("--config", default=None,
                        help="architecture configuration JSON file "
                             "(overrides --preset)")
    decode.add_argument("--fidelity", choices=list(FIDELITIES), default=None,
                        help="execution mode: cycle (bit-exact, default) "
                             "or fast (batched analytic, bounded-error)")
    decode.add_argument("--json", default=None, metavar="PATH",
                        help="write the report JSON here")

    tune = sub.add_parser(
        "tune",
        help="cost-model-guided autotune over mapping / ROB / shard knobs")
    tune.add_argument("network",
                      help=f"network name ({', '.join(sorted(MODELS))})")
    tune.add_argument("--preset", default="paper",
                      help=f"base preset ({', '.join(sorted(PRESETS))})")
    tune.add_argument("--config", default=None,
                      help="base architecture configuration JSON file "
                           "(overrides --preset)")
    tune.add_argument("--budget", type=int, default=8, metavar="N",
                      help="candidates measured at fast fidelity after "
                           "cost-model pruning (default 8)")
    tune.add_argument("--objective", choices=["latency", "energy", "edp"],
                      default="latency",
                      help="what the tuner minimizes (default latency)")
    tune.add_argument("--top-k", type=int, default=2, metavar="K",
                      help="measured leaders re-verified at cycle "
                           "fidelity (default 2)")
    tune.add_argument("--workers", type=int, default=1,
                      help="measure candidates on N worker processes")
    tune.add_argument("--output", default=None, metavar="PATH",
                      help="stream measurements to this JSONL journal "
                           "(doubles as the --resume journal)")
    tune.add_argument("--resume", action="store_true",
                      help="replay measurements already in --output "
                           "instead of re-running them")
    tune.add_argument("--report", default=None, metavar="PATH",
                      help="write the full TuneReport JSON here")

    sub.add_parser("models", help="list zoo networks")
    sub.add_parser("presets", help="list architecture presets")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    config = _load_config(args)
    report = simulate(args.model, config, mapping=args.mapping,
                      rob_size=args.rob, imagenet=args.imagenet,
                      batch=args.batch, attention_shards=args.shards,
                      fidelity=args.fidelity)
    if args.full_report:
        from ..analysis import full_report
        print(full_report(report))
    else:
        print(report.summary())
    if args.batch > 1:
        throughput = args.batch / report.seconds
        print(f"  throughput: {throughput:,.0f} images/s over the "
              f"{args.batch}-image stream")
    if args.comm_ratios:
        print(ascii_bars(comm_ratios(report), fmt="{:.2f}",
                         title="communication-latency ratio per layer:"))
    if args.json:
        report.save(args.json)
        print(f"report written to {args.json}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    config = _load_config(args)
    result = compile_model(args.model, config, mapping=args.mapping,
                           imagenet=args.imagenet,
                           attention_shards=args.shards)
    print(result.summary())
    if args.listing:
        for core in result.program.cores_used:
            print(result.program.program(core).listing(limit=args.listing))
    return 0


def _cmd_mappings(args: argparse.Namespace) -> int:
    config = _load_config(args)
    cmp = compare_mappings(args.model, config, rob_size=args.rob,
                           workers=args.workers, fidelity=args.fidelity)
    print(f"{args.model}: utilization-first {cmp.utilization.cycles:,} cycles, "
          f"performance-first {cmp.performance.cycles:,} cycles")
    print(ascii_bars({
        "utilization-first latency": 1.0,
        "performance-first latency": cmp.latency_ratio,
        "utilization-first energy": 1.0,
        "performance-first energy": cmp.energy_ratio,
    }, title="normalized to utilization-first (Fig. 3 style):"))
    return 0


def _cmd_rob(args: argparse.Namespace) -> int:
    config = _load_config(args)
    sizes = tuple(int(s) for s in args.sizes.split(","))
    sweep = sweep_rob(args.model, config, sizes=sizes,
                      workers=args.workers, fidelity=args.fidelity)
    print(ascii_bars(
        {f"ROB {size:>2}": value
         for size, value in sweep.normalized_latency().items()},
        title=f"{args.model}: latency normalized to ROB {min(sizes)} "
              f"(Fig. 4 style):"))
    return 0


def _cmd_mnsim(args: argparse.Namespace) -> int:
    config = _load_config(args) if (args.config or args.preset != "paper") \
        else get_preset("mnsim")
    cmp = compare_with_baseline(args.model, config)
    print(f"{args.model}: ours {cmp.ours.cycles:,} cycles, "
          f"MNSIM2.0-style baseline {cmp.baseline_cycles:,} cycles")
    print(ascii_bars({
        "MNSIM2.0-style": 1.0,
        "ours": cmp.latency_vs_baseline,
    }, title="latency normalized to the baseline (Fig. 5 style):"))
    return 0


#: ``pimsim batch`` exit-code contract (pinned by tests/test_cli_commands.py):
#: 0 = every job succeeded, 1 = one or more jobs failed (captured in their
#: JSONL error records), 2 = the run itself could not proceed (bad
#: arguments, unrecoverable worker pool).
BATCH_EXIT_OK = 0
BATCH_EXIT_JOB_FAILURES = 1
BATCH_EXIT_FATAL = 2


def _read_journal(path: str) -> tuple[set, int]:
    """Indices already settled in a batch journal, and how many errored.

    Torn trailing lines (a previous run died mid-write) and foreign lines
    are skipped — only well-formed ``{"index", "report"|"error"}`` records
    count as completed.  The per-run ``{"summary": ...}`` trailer lines a
    journaling run appends carry no index and are skipped the same way.
    """
    done: set = set()
    errors = 0
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return done, errors
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict) or "index" not in record:
            continue
        if ("report" in record or "error" in record) \
                and record["index"] not in done:
            done.add(record["index"])
            if "error" in record:
                errors += 1
    return done, errors


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run a job-spec file; emit one JSON record per job (JSONL).

    Each line is ``{"index": i, "spec": {...}, "report": {...}}`` (or
    ``"error"`` instead of ``"report"``), so a single line fully describes
    and reproduces its experiment — specs that relied on the engine's
    ``--preset`` default are emitted with that preset made explicit.
    Lines stream in completion order; ``index`` maps each back to its
    position in the spec file.

    The output file doubles as a journal: every completion is flushed as
    it lands, so ``--resume`` after a crash (or a Ctrl-C) replays only
    the indices the journal does not already cover and appends to it —
    the union of runs is equivalent to one uninterrupted run.

    A run that executed at least one job appends a final ``{"summary":
    ...}`` line (ok/failed/resumed counts plus the pool's retry /
    poisoned / timeout telemetry); it carries no ``index``, so
    ``--resume`` never mistakes it for a completed job.
    """
    specs = load_specs(args.specfile)
    done: set = set()
    failures = 0
    if args.resume:
        if not args.output:
            print("batch: --resume requires --output (the journal file)",
                  file=sys.stderr)
            return BATCH_EXIT_FATAL
        done, failures = _read_journal(args.output)
        done &= set(range(len(specs)))
        # A run that died mid-write leaves a torn final line with no
        # newline; terminate it so the first appended record does not
        # concatenate onto it (losing both lines).
        journal = Path(args.output)
        if journal.exists():
            tail = journal.read_bytes()[-1:]
            if tail and tail != b"\n":
                with journal.open("ab") as fh:
                    fh.write(b"\n")
    pending = [(index, spec) for index, spec in enumerate(specs)
               if index not in done]
    out = open(args.output, "a" if args.resume else "w") \
        if args.output else sys.stdout
    pool_stats: dict = {}
    try:
        with Engine(get_preset(args.preset), max_retries=args.max_retries,
                    job_timeout=args.timeout,
                    fidelity=args.fidelity) as engine:
            for position, outcome in engine.as_completed(
                    [spec for _index, spec in pending],
                    workers=args.workers, errors="capture"):
                index = pending[position][0]
                spec_dict = specs[index].to_dict()
                spec_dict.setdefault("config", args.preset)
                if args.fidelity is not None:
                    # like the preset: make the engine-level default
                    # explicit so the JSONL line reproduces standalone
                    spec_dict.setdefault("fidelity", args.fidelity)
                record: dict = {"index": index, "spec": spec_dict}
                if isinstance(outcome, JobFailed):
                    failures += 1
                    record["error"] = {"kind": outcome.kind,
                                       "message": outcome.message}
                    if outcome.details:
                        record["error"]["details"] = outcome.details
                else:
                    record["report"] = outcome.to_dict()
                print(json.dumps(record), file=out, flush=True)
                if args.progress:
                    label = (f"failed: {outcome.message}"
                             if isinstance(outcome, JobFailed)
                             else f"{outcome.cycles:,} cycles")
                    print(f"[{index}] {label}", file=sys.stderr)
            # Read the pool counters before the with-block tears the
            # pool down (a closed engine reports zeros).
            pool_stats = engine.pool_stats()
        if pending or not args.resume:
            summary = {"jobs": len(specs), "ok": len(specs) - failures,
                       "failed": failures, "resumed": len(done),
                       "retried": pool_stats.get("retries", 0),
                       "poisoned": pool_stats.get("poisoned", 0),
                       "timeouts": pool_stats.get("timeouts", 0)}
            print(json.dumps({"summary": summary}), file=out, flush=True)
    except PoolUnavailable as exc:
        print(f"batch: worker pool unrecoverable: {exc}", file=sys.stderr)
        return BATCH_EXIT_FATAL
    finally:
        if out is not sys.stdout:
            out.close()
    resumed = f" ({len(done)} resumed from the journal)" if args.resume else ""
    print(f"{len(specs)} jobs{resumed}, {failures} failed", file=sys.stderr)
    return BATCH_EXIT_JOB_FAILURES if failures else BATCH_EXIT_OK


#: ``pimsim serve`` exit-code contract (pinned by tests/test_serve.py):
#: 0 = clean drain (every running job settled before the deadline),
#: 2 = the server could not start (bad arguments, unbindable port,
#: unreadable store), 3 = the drain deadline expired and the remaining
#: in-flight jobs were aborted back to the queue (the next start against
#: the same store resumes them).  Job *failures* are journaled results,
#: not exit codes — a serve process that drained cleanly exits 0 even if
#: some jobs failed.
SERVE_EXIT_OK = 0
SERVE_EXIT_FATAL = 2
SERVE_EXIT_DRAIN_EXPIRED = 3


def _cmd_serve(args: argparse.Namespace) -> int:
    """Long-lived HTTP job service with a crash-safe store.

    SIGTERM/SIGINT triggers the graceful drain: admissions stop
    (``POST /jobs`` answers 503, ``/readyz`` flips unready), running
    jobs get up to ``--drain-timeout`` seconds to settle, anything
    still in flight after that is aborted and re-journaled ``queued``.
    Every outcome is fsync'd into the store before the process exits.
    """
    from ..serve import JobStore, ServeService, serve_http

    try:
        store = JobStore(args.store, max_restarts=args.max_restarts)
    except (OSError, ValueError) as exc:
        print(f"serve: cannot open store {args.store}: {exc}",
              file=sys.stderr)
        return SERVE_EXIT_FATAL
    config = get_preset(args.preset)
    if args.fidelity is not None:
        config = validate(config.with_fidelity(args.fidelity))
    service = ServeService(store, config=config,
                           workers=args.workers,
                           max_retries=args.max_retries,
                           job_timeout=args.timeout,
                           max_backlog=args.max_backlog,
                           max_sessions=args.max_sessions)
    try:
        server = serve_http(service, args.host, args.port)
    except OSError as exc:
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        service.close()
        return SERVE_EXIT_FATAL
    service.start()
    host, port = server.server_address[:2]
    recovered = store.counts()["queued"]
    print(f"pimsim serve: listening on http://{host}:{port} "
          f"(store {args.store}, {len(store)} jobs journaled, "
          f"{recovered} resumed)", file=sys.stderr, flush=True)

    stop = threading.Event()

    def _request_drain(signum, frame):
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _request_drain)
    server_thread = threading.Thread(target=server.serve_forever,
                                     daemon=True, name="repro-serve-http")
    server_thread.start()
    # Poll rather than block: the kernel may deliver the signal to any
    # of the server's threads, but the Python-level handler only ever
    # runs on the main thread — an untimed Event.wait() here can sleep
    # through a SIGTERM forever.  The timed wait guarantees the main
    # thread executes bytecode (and any pending handler) twice a second.
    while not stop.wait(0.5):
        pass

    # Drain: stop admissions first (readyz flips unready while the HTTP
    # server keeps answering polls), then wait for in-flight jobs.
    print("pimsim serve: draining "
          f"(deadline {args.drain_timeout:g}s)", file=sys.stderr, flush=True)
    service.begin_drain()
    drained = service.wait_drained(args.drain_timeout)
    aborted = 0 if drained else service.terminate()
    server.shutdown()
    server.server_close()
    service.close()
    counts = {state: n for state, n in store.counts().items() if n}
    if drained:
        print(f"pimsim serve: drained cleanly ({counts})", file=sys.stderr)
        return SERVE_EXIT_OK
    print(f"pimsim serve: drain deadline expired; {aborted} running "
          f"jobs requeued for the next start ({counts})", file=sys.stderr)
    return SERVE_EXIT_DRAIN_EXPIRED


def _cmd_decode(args: argparse.Namespace) -> int:
    if bool(args.mix) == bool(args.model):
        print("pimsim decode: pass exactly one of --model or --mix",
              file=sys.stderr)
        return 2
    config = _load_config(args)
    with Engine(config, fidelity=args.fidelity) as engine:
        if args.mix:
            mix = engine.serve_mix(load_specs(args.mix),
                                   workers=args.workers)
            print(mix.summary())
            if args.json:
                Path(args.json).write_text(mix.to_json())
                print(f"mix report written to {args.json}")
            return 0
        report = engine.run(JobSpec(args.model, decode_steps=args.steps,
                                    kv_tokens=args.kv_tokens))
        print(report.summary())
        stats = step_latency_stats(report)
        print(f"  decode  : {stats['steps']} steps, per-step "
              f"p50={stats['p50_step_ms']:.4f} ms "
              f"p99={stats['p99_step_ms']:.4f} ms "
              f"tpot={stats['tpot_ms']:.4f} ms")
        misses = engine.compile_stats()["template_misses"]
        print(f"  compile : {misses} template compile(s); "
              "steps 2..N replay the warm template")
        if args.json:
            report.save(args.json)
            print(f"report written to {args.json}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Search the design space; print the winner and its speedups.

    Measurements stream to ``--output`` as JSONL while the search runs;
    ``--resume`` against the same journal replays what a previous
    (interrupted) run already measured, exactly like ``pimsim batch``.
    """
    from ..tune import Tuner

    if args.resume and not args.output:
        print("tune: --resume requires --output (the journal file)",
              file=sys.stderr)
        return BATCH_EXIT_FATAL
    config = _load_config(args)
    try:
        with Engine(config) as engine:
            tuner = Tuner(args.network, config, objective=args.objective,
                          budget=args.budget, top_k=args.top_k,
                          engine=engine, workers=args.workers)
            report = tuner.tune(journal=args.output, resume=args.resume)
    except PoolUnavailable as exc:
        print(f"tune: worker pool unrecoverable: {exc}", file=sys.stderr)
        return BATCH_EXIT_FATAL
    print(report.summary())
    if args.report:
        report.save(args.report)
        print(f"tune report written to {args.report}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "models":
        for name in sorted(MODELS):
            print(name)
        return 0
    if args.command == "presets":
        for name in sorted(PRESETS):
            print(name)
        return 0
    handler = {
        "run": _cmd_run,
        "compile": _cmd_compile,
        "mappings": _cmd_mappings,
        "rob": _cmd_rob,
        "mnsim": _cmd_mnsim,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "decode": _cmd_decode,
        "tune": _cmd_tune,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
