"""Top-level runner: simulate(), sweeps, reports, CLI."""

from .api import compile_model, resolve_network, simulate
from .results import MixReport, SimReport
from .sweep import (
    BaselineComparison,
    MappingComparison,
    RobSweep,
    SweepJob,
    compare_mappings,
    compare_with_baseline,
    run_sweep,
    sweep,
    sweep_rob,
)

__all__ = [
    "simulate",
    "compile_model",
    "resolve_network",
    "SimReport",
    "MixReport",
    "SweepJob",
    "run_sweep",
    "sweep",
    "compare_mappings",
    "sweep_rob",
    "compare_with_baseline",
    "MappingComparison",
    "RobSweep",
    "BaselineComparison",
]
