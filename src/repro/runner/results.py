"""Simulation reports: the latency / power / energy outputs of Fig. 1."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..arch import RawResult
from ..config import ArchConfig

__all__ = ["SimReport", "MixReport", "nearest_rank"]


def nearest_rank(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on no samples.

    The classic ceil(q/100 * n)-th order statistic — every reported
    percentile is a latency that actually occurred, which is the right
    convention for the small step counts a serving mix produces.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass
class SimReport:
    """User-facing results of one simulation run."""

    network: str
    config_name: str
    mapping: str
    cycles: int
    seconds: float
    #: picojoules per category (xbar, adc, dac, vector, local_mem, noc, ...).
    energy_pj: dict[str, float]
    #: layer -> unit -> busy cycles (transfer busy includes sync waits).
    layer_busy: dict[str, dict[str, int]]
    per_core: dict[int, dict]
    noc: dict[str, int]
    instructions: int
    cores_used: int
    meta: dict = field(default_factory=dict)
    #: core -> layer -> vector-unit busy cycles (un-merged view of
    #: ``layer_busy``'s vector column; see
    #: :func:`repro.analysis.attention_shard_balance`).
    vector_layer_cycles: dict[int, dict[str, int]] = field(default_factory=dict)
    #: execution fidelity the run used: ``"cycle"`` (bit-exact event
    #: simulation) or ``"fast"`` (batched analytic executor; cycle counts
    #: within the ``tools/check_fidelity.py`` bound).
    fidelity: str = "cycle"

    # -- derived metrics ------------------------------------------------------

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())

    @property
    def energy_uj(self) -> float:
        return self.total_energy_pj / 1e6

    @property
    def latency_ms(self) -> float:
        return self.seconds * 1e3

    @property
    def avg_power_mw(self) -> float:
        """Average power over the run (energy / time)."""
        if self.seconds <= 0:
            return 0.0
        return self.total_energy_pj * 1e-12 / self.seconds * 1e3

    @property
    def compile_cache_hits(self) -> int:
        """Process-wide compile-cache hits at the time of this run."""
        return int(self.meta.get("compile_cache_hits", 0))

    @property
    def compile_cache_misses(self) -> int:
        """Process-wide compile-cache misses at the time of this run."""
        return int(self.meta.get("compile_cache_misses", 0))

    @property
    def analytic_runs(self) -> int:
        """Straight-line runs advanced analytically (fast mode; 0 in cycle)."""
        return int(self.meta.get("analytic_runs", 0))

    @property
    def fallback_events(self) -> int:
        """Instructions the fast mode executed through the event kernel
        (transfer boundaries + cycle-accurate fallback cores; 0 in cycle
        mode)."""
        return int(self.meta.get("fallback_events", 0))

    def comm_ratio(self, layer: str) -> float:
        """Communication share of one layer's activity.

        Transfer-unit busy time (which includes synchronization waits —
        the quantity Section IV-B reports) over the layer's total busy
        time across all units.
        """
        busy = self.layer_busy.get(layer, {})
        comm = busy.get("transfer", 0)
        total = sum(busy.values())
        return comm / total if total else 0.0

    def layer_names(self) -> list[str]:
        return sorted(self.layer_busy)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "config": self.config_name,
            "mapping": self.mapping,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "latency_ms": self.latency_ms,
            "energy_pj": self.energy_pj,
            "total_energy_pj": self.total_energy_pj,
            "avg_power_mw": self.avg_power_mw,
            "layer_busy": self.layer_busy,
            "noc": self.noc,
            "instructions": self.instructions,
            "cores_used": self.cores_used,
            "fidelity": self.fidelity,
            "vector_layer_cycles": {str(cid): dict(layers) for cid, layers
                                    in self.vector_layer_cycles.items()},
            "meta": {k: v for k, v in self.meta.items()
                     if isinstance(v, (str, int, float, bool, list, dict))},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    def summary(self) -> str:
        """Human-readable result block (latency, energy, power)."""
        lines = [
            f"simulation of {self.network!r} on {self.config_name!r} "
            f"({self.mapping}):",
            f"  latency : {self.cycles:,} cycles = {self.latency_ms:.4f} ms",
            f"  energy  : {self.energy_uj:.2f} uJ",
            f"  power   : {self.avg_power_mw:.1f} mW (average)",
            f"  cores   : {self.cores_used} used, "
            f"{self.instructions:,} instructions executed",
            f"  noc     : {self.noc.get('messages', 0):,} messages, "
            f"{self.noc.get('bytes', 0):,} bytes",
        ]
        top = sorted(self.energy_pj.items(), key=lambda kv: -kv[1])[:4]
        lines.append("  energy by component: " + ", ".join(
            f"{k}={v / 1e6:.2f}uJ" for k, v in top))
        return "\n".join(lines)

    @classmethod
    def from_raw(cls, raw: RawResult, config: ArchConfig,
                 instructions: int) -> "SimReport":
        return cls(
            network=raw.meta.get("network", "?"),
            config_name=config.name,
            mapping=raw.meta.get("policy", config.compiler.mapping),
            cycles=raw.cycles,
            seconds=raw.cycles * config.sim.cycle_seconds,
            energy_pj=raw.energy_pj,
            layer_busy=raw.layer_busy,
            per_core=raw.per_core,
            noc=raw.noc,
            instructions=instructions,
            cores_used=len(raw.per_core),
            meta=raw.meta,
            vector_layer_cycles=raw.vector_layer_cycles,
            fidelity=raw.meta.get("fidelity", "cycle"),
        )


@dataclass
class MixReport:
    """Outcome of a continuous-batching serving mix
    (:meth:`Engine.serve_mix <repro.engine.Engine.serve_mix>`).

    One entry per request in ``reports`` (a :class:`SimReport`, or a
    captured failure under ``errors="capture"``), plus the flat per-step
    decode latency samples the serving percentiles are computed from.
    """

    #: per-request outcome, in request order (decode requests aggregated).
    reports: list
    #: every decode step's latency in seconds, grouped by request.
    step_seconds: list[float] = field(default_factory=list)
    #: every prefill request's latency in seconds.
    prefill_seconds: list[float] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.reports)

    @property
    def total_steps(self) -> int:
        return len(self.step_seconds)

    def step_percentile_ms(self, q: float) -> float:
        """Nearest-rank percentile of per-step decode latency, in ms."""
        return nearest_rank(self.step_seconds, q) * 1e3

    @property
    def p50_step_ms(self) -> float:
        return self.step_percentile_ms(50)

    @property
    def p99_step_ms(self) -> float:
        return self.step_percentile_ms(99)

    @property
    def tpot_ms(self) -> float:
        """Mean time-per-output-token across all decode steps, in ms."""
        if not self.step_seconds:
            return 0.0
        return sum(self.step_seconds) / len(self.step_seconds) * 1e3

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "total_steps": self.total_steps,
            "p50_step_ms": self.p50_step_ms,
            "p99_step_ms": self.p99_step_ms,
            "tpot_ms": self.tpot_ms,
            "prefill_seconds": self.prefill_seconds,
            "step_seconds": self.step_seconds,
            "reports": [rep.to_dict() if isinstance(rep, SimReport)
                        else {"failed": str(rep)} for rep in self.reports],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """Human-readable serving-mix block (requests, p50/p99, TPOT)."""
        ok = sum(1 for rep in self.reports if isinstance(rep, SimReport))
        lines = [
            f"serving mix: {self.n_requests} requests "
            f"({ok} ok, {self.n_requests - ok} failed), "
            f"{len(self.prefill_seconds)} prefill, "
            f"{self.total_steps} decode steps",
        ]
        if self.step_seconds:
            lines.append(
                f"  per-step latency: p50={self.p50_step_ms:.4f} ms "
                f"p99={self.p99_step_ms:.4f} ms tpot={self.tpot_ms:.4f} ms")
        if self.prefill_seconds:
            mean_prefill = (sum(self.prefill_seconds)
                            / len(self.prefill_seconds) * 1e3)
            lines.append(f"  prefill latency : mean={mean_prefill:.4f} ms")
        return "\n".join(lines)
