"""Simulation reports: the latency / power / energy outputs of Fig. 1."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..arch import RawResult
from ..config import ArchConfig

__all__ = ["SimReport"]


@dataclass
class SimReport:
    """User-facing results of one simulation run."""

    network: str
    config_name: str
    mapping: str
    cycles: int
    seconds: float
    #: picojoules per category (xbar, adc, dac, vector, local_mem, noc, ...).
    energy_pj: dict[str, float]
    #: layer -> unit -> busy cycles (transfer busy includes sync waits).
    layer_busy: dict[str, dict[str, int]]
    per_core: dict[int, dict]
    noc: dict[str, int]
    instructions: int
    cores_used: int
    meta: dict = field(default_factory=dict)
    #: core -> layer -> vector-unit busy cycles (un-merged view of
    #: ``layer_busy``'s vector column; see
    #: :func:`repro.analysis.attention_shard_balance`).
    vector_layer_cycles: dict[int, dict[str, int]] = field(default_factory=dict)

    # -- derived metrics ------------------------------------------------------

    @property
    def total_energy_pj(self) -> float:
        return sum(self.energy_pj.values())

    @property
    def energy_uj(self) -> float:
        return self.total_energy_pj / 1e6

    @property
    def latency_ms(self) -> float:
        return self.seconds * 1e3

    @property
    def avg_power_mw(self) -> float:
        """Average power over the run (energy / time)."""
        if self.seconds <= 0:
            return 0.0
        return self.total_energy_pj * 1e-12 / self.seconds * 1e3

    @property
    def compile_cache_hits(self) -> int:
        """Process-wide compile-cache hits at the time of this run."""
        return int(self.meta.get("compile_cache_hits", 0))

    @property
    def compile_cache_misses(self) -> int:
        """Process-wide compile-cache misses at the time of this run."""
        return int(self.meta.get("compile_cache_misses", 0))

    def comm_ratio(self, layer: str) -> float:
        """Communication share of one layer's activity.

        Transfer-unit busy time (which includes synchronization waits —
        the quantity Section IV-B reports) over the layer's total busy
        time across all units.
        """
        busy = self.layer_busy.get(layer, {})
        comm = busy.get("transfer", 0)
        total = sum(busy.values())
        return comm / total if total else 0.0

    def layer_names(self) -> list[str]:
        return sorted(self.layer_busy)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "config": self.config_name,
            "mapping": self.mapping,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "latency_ms": self.latency_ms,
            "energy_pj": self.energy_pj,
            "total_energy_pj": self.total_energy_pj,
            "avg_power_mw": self.avg_power_mw,
            "layer_busy": self.layer_busy,
            "noc": self.noc,
            "instructions": self.instructions,
            "cores_used": self.cores_used,
            "vector_layer_cycles": {str(cid): dict(layers) for cid, layers
                                    in self.vector_layer_cycles.items()},
            "meta": {k: v for k, v in self.meta.items()
                     if isinstance(v, (str, int, float, bool, list, dict))},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    def summary(self) -> str:
        """Human-readable result block (latency, energy, power)."""
        lines = [
            f"simulation of {self.network!r} on {self.config_name!r} "
            f"({self.mapping}):",
            f"  latency : {self.cycles:,} cycles = {self.latency_ms:.4f} ms",
            f"  energy  : {self.energy_uj:.2f} uJ",
            f"  power   : {self.avg_power_mw:.1f} mW (average)",
            f"  cores   : {self.cores_used} used, "
            f"{self.instructions:,} instructions executed",
            f"  noc     : {self.noc.get('messages', 0):,} messages, "
            f"{self.noc.get('bytes', 0):,} bytes",
        ]
        top = sorted(self.energy_pj.items(), key=lambda kv: -kv[1])[:4]
        lines.append("  energy by component: " + ", ".join(
            f"{k}={v / 1e6:.2f}uJ" for k, v in top))
        return "\n".join(lines)

    @classmethod
    def from_raw(cls, raw: RawResult, config: ArchConfig,
                 instructions: int) -> "SimReport":
        return cls(
            network=raw.meta.get("network", "?"),
            config_name=config.name,
            mapping=raw.meta.get("policy", config.compiler.mapping),
            cycles=raw.cycles,
            seconds=raw.cycles * config.sim.cycle_seconds,
            energy_pj=raw.energy_pj,
            layer_busy=raw.layer_busy,
            per_core=raw.per_core,
            noc=raw.noc,
            instructions=instructions,
            cores_used=len(raw.per_core),
            meta=raw.meta,
            vector_layer_cycles=raw.vector_layer_cycles,
        )
