"""PIMSIM-NN reproduction: an ISA-based simulation framework for
processing-in-memory neural-network accelerators.

The framework has three pillars, mirroring the paper (DATE'24):

* :mod:`repro.isa` — the PIM instruction set (matrix / vector / transfer /
  scalar classes, crossbar groups, programs, binary + text codecs);
* :mod:`repro.compiler` — the PIMCOMP-style compiler (operator fusion,
  utilization-first / performance-first weight mapping, scheduling, code
  generation);
* :mod:`repro.arch` on :mod:`repro.sim` — the cycle-accurate, event-driven
  simulator (cores with ROB + four execution units, mesh NoC, global
  memory, energy model).

Supporting casts: :mod:`repro.graph` + :mod:`repro.models` (network
descriptions), :mod:`repro.config` (architecture configuration files),
:mod:`repro.baseline` (MNSIM2.0-style comparator), :mod:`repro.runner`
(public API + CLI), :mod:`repro.analysis` (result breakdowns).

Quickstart (one-shot)::

    from repro import simulate, paper_chip
    report = simulate("resnet18", paper_chip(), mapping="performance_first")
    print(report.summary())

Quickstart (session) — an :class:`~repro.engine.Engine` keeps the model
cache, the compile cache and a persistent worker pool warm across
requests, so back-to-back sweeps pay neither pool spin-up nor
recompilation::

    from repro import Engine, JobSpec, small_chip
    with Engine(small_chip()) as engine:
        report = engine.simulate("resnet18")
        sweep = engine.map([JobSpec("resnet18", rob_size=r, tag=r)
                            for r in (1, 4, 8, 16)], workers=4)
        for index, report in engine.as_completed(
                [JobSpec("vgg8"), JobSpec("vit_tiny")], workers=2):
            print(index, report.cycles)

Specs serialize to JSON (an experiment is a file): ``pimsim batch
jobs.json`` replays a spec file and emits one report per line.
"""

from .config import (
    ArchConfig,
    get_preset,
    mnsim_like_chip,
    paper_chip,
    small_chip,
    tiny_chip,
)
from .engine import Engine, JobSpec, default_engine
from .models import MODELS, build_model
from .runner import (
    SimReport,
    SweepJob,
    compare_mappings,
    compare_with_baseline,
    compile_model,
    run_sweep,
    simulate,
    sweep,
    sweep_rob,
)

__version__ = "0.2.0"

__all__ = [
    "Engine",
    "JobSpec",
    "default_engine",
    "simulate",
    "compile_model",
    "SimReport",
    "SweepJob",
    "run_sweep",
    "sweep",
    "compare_mappings",
    "sweep_rob",
    "compare_with_baseline",
    "ArchConfig",
    "paper_chip",
    "small_chip",
    "tiny_chip",
    "mnsim_like_chip",
    "get_preset",
    "build_model",
    "MODELS",
    "__version__",
]
