"""Deterministic fault injection for the supervised worker pool.

Every recovery path of :class:`~repro.engine.pool.WorkerPool` — respawn,
retry, poison quarantine, timeout kill, undecodable-result condemnation —
must be pinned by tests that *provoke the failure on purpose*, not by
waiting for luck.  A chaos directive is a plain JSON-able dict embedded
in a :class:`~repro.engine.JobSpec`::

    JobSpec("mlp", faults={"mode": "crash", "attempts": [0]})

and trips **only inside a pool worker process** (``_worker_main`` asks
:func:`directive_for` / :func:`trip`); in-process execution via
:meth:`Engine.run <repro.engine.Engine.run>` never evaluates directives,
so a chaos spec can never take down the caller.

Directive fields
----------------

``mode``
    ``"crash"``   — SIGKILL the worker before it produces a result (hard
    death: no cleanup, no exit handler — exactly what a segfault or an
    OOM kill looks like to the parent).

    ``"exit"``    — ``os._exit(code)`` (default 3): a worker that dies
    with a nonzero status but without a signal.

    ``"hang"``    — sleep ``seconds`` (default 3600) before running the
    job, to exercise the timeout watchdog.  Pair it with a job timeout.

    ``"raise"``   — raise :class:`FaultError` *inside the job*.  This is
    the control case: a job-raised exception is a result, shipped back
    and **never retried**.

    ``"garbage"`` — run the job, then write undecodable bytes to the
    result pipe instead of the report (a corrupted transport).

``attempts``
    Optional list of attempt numbers (0-based; the pool threads the
    attempt counter through to the worker) the directive applies to.
    ``{"mode": "crash", "attempts": [0]}`` kills the worker exactly once
    — the retried attempt runs clean, which is what makes recovery tests
    deterministic.  Omitted: the directive trips on every attempt (a
    poison job).
"""

from __future__ import annotations

import os
import signal
import time

__all__ = ["FAULT_MODES", "FaultError", "GARBAGE_BYTES", "directive_for",
           "trip"]

#: every directive mode the worker loop understands.
FAULT_MODES = ("crash", "exit", "hang", "raise", "garbage")

#: bytes that are not a pickle — ``Connection.recv`` parent-side raises,
#: driving the pool's undecodable-result condemnation path.
GARBAGE_BYTES = b"\x00repro-fault-garbage"


class FaultError(RuntimeError):
    """The injected job-level failure (``mode="raise"``)."""


def directive_for(spec, attempt: int) -> dict | None:
    """The chaos directive applying to this attempt of ``spec``, if any.

    Raises ``ValueError`` on malformed directives so a typo'd chaos test
    fails loudly instead of silently running fault-free.
    """
    directive = getattr(spec, "faults", None)
    if not directive:
        return None
    if not isinstance(directive, dict):
        raise ValueError(f"faults directive must be a dict, "
                         f"got {type(directive).__name__}")
    mode = directive.get("mode")
    if mode not in FAULT_MODES:
        raise ValueError(f"unknown fault mode {mode!r} "
                         f"(expected one of {', '.join(FAULT_MODES)})")
    attempts = directive.get("attempts")
    if attempts is not None and attempt not in attempts:
        return None
    return directive


def trip(directive: dict | None) -> None:
    """Execute a directive's failure (``garbage`` is handled at send time).

    Called by the worker loop between the start heartbeat and the job
    body, so a crash here is blamed on the running job — the same way a
    real mid-job segfault would be.
    """
    if directive is None:
        return
    mode = directive["mode"]
    if mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "exit":
        os._exit(int(directive.get("code", 3)))
    elif mode == "hang":
        time.sleep(float(directive.get("seconds", 3600.0)))
    elif mode == "raise":
        raise FaultError(directive.get("message", "injected job failure"))
    # "garbage": nothing to do here — the worker corrupts the result send.
