"""Job specifications: one simulation request as a value (and as a file).

A :class:`JobSpec` is the unit of work the :class:`~repro.engine.Engine`
consumes: a network (zoo name or in-memory graph) plus the per-job
overrides every sweep in the paper turns (mapping policy, ROB capacity,
batch length, input resolution, cycle limit, attention shard count) and a
caller-owned ``tag`` carried through to the report.

Specs serialize to JSON (:meth:`JobSpec.to_dict` / :meth:`JobSpec.from_dict`),
so an experiment is a file: ``pimsim batch experiment.json`` replays a list
of specs and emits one report per line.  Graph networks embed their full
network description (:mod:`repro.graph.serialize`); configurations embed
the architecture configuration tree, or reference a preset by name.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

from ..config import ArchConfig, get_preset
from ..graph import Graph
from ..graph.serialize import graph_from_dict, graph_to_dict

__all__ = ["JobSpec", "load_specs", "save_specs"]


@dataclass
class JobSpec:
    """One simulation job: a network plus per-job overrides.

    Subsumes the legacy ``SweepJob`` (same leading fields, so positional
    construction is unchanged) and the keyword surface of
    :func:`repro.runner.api.simulate`.  ``tag`` is carried through to
    ``report.meta["sweep_tag"]`` untouched so callers can label points.
    """

    network: str | Graph
    config: ArchConfig | None = None
    mapping: str | None = None
    rob_size: int | None = None
    imagenet: bool = False
    batch: int = 1
    max_cycles: int | None = None
    tag: Any = None
    #: override for ``compiler.attention_shards`` (token-sharded dynamic
    #: attention, PR 4); ``None`` keeps the configuration's value.
    attention_shards: int | None = None
    #: wall-clock seconds a pooled worker may spend on this job before
    #: the watchdog kills it and the job fails with
    #: :class:`~repro.engine.JobTimeout` (``None``: the pool's
    #: ``default_timeout``; enforced on pooled runs only).
    timeout: float | None = None
    #: chaos directive for the fault-injection harness
    #: (:mod:`repro.engine.faults`); trips only inside pool workers,
    #: never in-process.
    faults: dict | None = None
    #: autoregressive decode: run this many steps over a growing KV
    #: cache (network must contain ``kv_cache`` nodes).  The program is
    #: compiled once as an extent-parameterized template and replayed
    #: per step; the report aggregates all steps and carries the
    #: per-step cycle counts in ``meta["decode"]``.
    decode_steps: int | None = None
    #: KV extent (tokens in the cache) at the *first* decode step;
    #: ``None``: the token count the network was built with.
    kv_tokens: int | None = None
    #: execution fidelity override: ``"cycle"`` (bit-exact) or ``"fast"``
    #: (batched analytic executor, bounded-error); ``None`` falls back to
    #: the engine default, then the configuration's ``sim.fidelity``
    #: (same precedence as ``timeout``).  Appended last so job ids of
    #: specs that never set it are unchanged.
    fidelity: str | None = None

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready dict; default-valued overrides are omitted."""
        data: dict[str, Any] = {}
        if isinstance(self.network, Graph):
            data["network"] = {"graph": graph_to_dict(self.network)}
        else:
            data["network"] = self.network
        if self.config is not None:
            data["config"] = self.config.to_dict()
        for f in fields(self):
            if f.name in ("network", "config"):
                continue
            value = getattr(self, f.name)
            if value != f.default:
                data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        ``network`` may be a zoo name or an embedded graph description;
        ``config`` may be a full configuration dict or a preset name.
        """
        if not isinstance(data, dict) or "network" not in data:
            raise ValueError("job spec must be an object with a 'network'")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"job spec: unknown keys {sorted(unknown)}")
        kwargs = dict(data)
        network = kwargs["network"]
        if isinstance(network, dict):
            kwargs["network"] = graph_from_dict(network.get("graph", network))
        config = kwargs.get("config")
        if isinstance(config, str):
            kwargs["config"] = get_preset(config)
        elif isinstance(config, dict):
            kwargs["config"] = ArchConfig.from_dict(config)
        return cls(**kwargs)

    def job_id(self) -> str:
        """Stable, content-addressed identity of this job.

        The digest of the canonical (sorted-key) JSON of
        :meth:`to_dict`, so the id survives process restarts and
        serialization round-trips — the property ``pimsim serve``'s
        crash-safe store builds its idempotency on: the same spec
        submitted twice is the same job, and a journaled result is
        never recomputed.  Embedded graphs hash by their serialized
        contents; distinguish intentional re-runs with ``tag``.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True, default=str)
        return "j" + hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_dict(json.loads(text))


def load_specs(path: str | Path) -> list[JobSpec]:
    """Load a job-spec file: one spec object, a list, or ``{"jobs": [...]}``."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict) and "jobs" in data:
        data = data["jobs"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ValueError(f"{path}: expected a spec object, list, or "
                         "{'jobs': [...]} document")
    return [JobSpec.from_dict(entry) for entry in data]


def save_specs(specs: list[JobSpec], path: str | Path) -> None:
    """Write specs as a ``{"jobs": [...]}`` document (see :func:`load_specs`)."""
    doc = {"jobs": [spec.to_dict() for spec in specs]}
    Path(path).write_text(json.dumps(doc, indent=2))
