"""The Engine: a persistent, job-oriented service layer over the simulator.

One :class:`Engine` owns everything that used to live in process-global
mutable state — the zoo-model cache, the compilation cache and (new) a
persistent pool of simulation workers — so warm artifacts survive across
requests and two engines with different configurations can never poison
each other's caches.

    >>> from repro.engine import Engine, JobSpec
    >>> with Engine(small_chip()) as engine:
    ...     report = engine.simulate("vgg8")                 # one-shot
    ...     reports = engine.map([JobSpec("vgg8", rob_size=r)  # warm sweep
    ...                           for r in (1, 4, 8)], workers=2)

The legacy one-shot functions (:func:`repro.runner.api.simulate`,
``run_sweep`` and the figure sweeps built on it) are thin shims over a
process-wide :func:`~repro.engine.default_engine` wired to the historical
global caches — bit-identical to the pre-engine surface.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import Future
from concurrent.futures import as_completed as _futures_as_completed
from dataclasses import fields as dataclass_fields
from threading import Lock
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..arch import run_program
from ..compiler import (
    CompilationResult,
    CompileCache,
    StepTemplate,
    compile_network,
    compile_step_template,
    config_fingerprint,
)
from ..config import FIDELITIES, ArchConfig, ConfigError, paper_chip, validate
from ..graph import Graph, kv_extent, with_kv_extent
from ..graph.serialize import graph_digest
from ..models import build_model
from ..runner.results import MixReport, SimReport
from .decode import DecodeSession, aggregate_step_reports
from .pool import (
    JobFailed,
    PoolUnavailable,
    WorkerPool,
    job_failure,
)
from .spec import JobSpec

__all__ = ["Engine"]

#: callback signature for :meth:`Engine.as_completed`:
#: ``progress(done, total, outcome)`` after each completion (``outcome``
#: is a :class:`JobFailed` for failed jobs under ``errors="capture"``).
ProgressFn = Callable[[int, int, "SimReport | JobFailed"], None]


class Engine:
    """A reusable simulation service: warm caches + persistent workers.

    Parameters
    ----------
    config:
        Default architecture configuration for jobs that do not carry
        their own (``None``: the paper chip, matching the legacy
        functions).
    workers:
        Default parallelism for :meth:`submit` / :meth:`map` /
        :meth:`as_completed` when the call does not pass its own
        (``None``: all CPUs).
    max_retries:
        How often a single job may crash its worker before it is
        quarantined as :class:`~repro.engine.JobPoisoned` instead of
        retried (default 1; pooled runs only).  Exceptions *raised by* a
        job are results, never retried.
    job_timeout:
        Default wall-clock seconds per pooled job; a job running longer
        is killed (worker respawned in place) and fails with
        :class:`~repro.engine.JobTimeout`.  ``JobSpec.timeout``
        overrides it per job.  ``None`` (default): no timeout.
    retry_backoff:
        Scale (seconds) of the jittered delay before a blamed job is
        resubmitted after a worker crash.
    fidelity:
        Default execution fidelity for jobs that do not carry their own
        (``"cycle"`` or ``"fast"``).  ``JobSpec.fidelity`` overrides it
        per job, exactly like ``timeout``; ``None`` (default) defers to
        the configuration's ``sim.fidelity``.
    compile_cache / model_cache:
        Share existing caches (the process-wide default engine is wired
        to the historical globals this way).  Omit both to give the
        engine private caches.
    """

    def __init__(self, config: ArchConfig | None = None, *,
                 workers: int | None = None,
                 max_retries: int = 1,
                 job_timeout: float | None = None,
                 retry_backoff: float = 0.05,
                 fidelity: str | None = None,
                 compile_cache: CompileCache | None = None,
                 model_cache: dict[tuple[str, bool], Graph] | None = None):
        if fidelity is not None and fidelity not in FIDELITIES:
            raise ConfigError(
                f"fidelity must be one of {FIDELITIES}, got {fidelity!r}")
        self._config = config
        self._fidelity = fidelity
        self._default_workers = workers
        self._max_retries = max_retries
        self._job_timeout = job_timeout
        self._retry_backoff = retry_backoff
        self._compile_cache = compile_cache if compile_cache is not None \
            else CompileCache()
        self._model_cache = model_cache if model_cache is not None else {}
        #: content digest -> first graph seen with it (see
        #: :meth:`resolve_network`); insertion-ordered, FIFO-bounded.
        self._graph_memo: dict[str, Graph] = {}
        self._graph_memo_cap = 64
        #: (extent-normalized graph digest, config fingerprint) ->
        #: compiled decode template (see :meth:`step_template`).
        self._template_cache: dict[tuple[str, str], StepTemplate] = {}
        self._template_hits = 0
        self._template_misses = 0
        self._pool: WorkerPool | None = None
        self._last_pool_width: int | None = None
        self._lock = Lock()

    @property
    def config(self) -> ArchConfig | None:
        """The engine's default configuration, fixed at construction.

        Read-only on purpose: pooled workers snapshot it when the pool is
        created, so a mutable default would let serial and pooled runs of
        the same spec silently diverge.  Build a new Engine (or put the
        configuration in the spec) to simulate against a different
        default.
        """
        return self._config

    # -- resolution ----------------------------------------------------------

    def resolve_network(self, network: str | Graph, *,
                        imagenet: bool = False) -> Graph:
        """Zoo name -> memoized graph; graph objects -> content memo.

        Memoization per ``(name, imagenet)`` is what keys the compile
        cache: repeated jobs share one graph object.  Graph *objects*
        are memoized by content digest (:func:`~repro.graph.serialize.
        graph_digest`): two jobs embedding the same network description
        — e.g. a batch of graph-object specs unpickled one per job in a
        pool worker — resolve to one canonical graph and therefore hit
        the identity-keyed compile cache instead of recompiling each
        time.
        """
        if isinstance(network, Graph):
            digest = graph_digest(network)
            canonical = self._graph_memo.get(digest)
            if canonical is None:
                self._graph_memo[digest] = canonical = network
                while len(self._graph_memo) > self._graph_memo_cap:
                    self._graph_memo.pop(next(iter(self._graph_memo)))
            return canonical
        key = (network, imagenet)
        graph = self._model_cache.get(key)
        if graph is None:
            graph = self._model_cache[key] = build_model(network,
                                                         imagenet=imagenet)
        return graph

    def _job_config(self, spec: JobSpec) -> ArchConfig:
        config = spec.config or self.config or paper_chip()
        if spec.mapping is not None:
            config = config.with_mapping(spec.mapping)
        if spec.rob_size is not None:
            config = config.with_rob_size(spec.rob_size)
        if spec.attention_shards is not None:
            config = validate(
                config.with_attention_shards(spec.attention_shards))
        fidelity = spec.fidelity if spec.fidelity is not None \
            else self._fidelity
        if fidelity is not None and fidelity != config.sim.fidelity:
            config = validate(config.with_fidelity(fidelity))
        return config

    def _stamp_fidelity(self, spec: JobSpec) -> JobSpec:
        """Materialize the engine-level fidelity default into a spec.

        Pooled workers rebuild an ``Engine(config)`` from the
        configuration alone, so an engine-level default must ride the
        spec across the process boundary (the pool's ``default_timeout``
        plays the same role for ``timeout``).
        """
        if self._fidelity is None or spec.fidelity is not None:
            return spec
        from dataclasses import replace as _replace
        return _replace(spec, fidelity=self._fidelity)

    # -- one job -------------------------------------------------------------

    def compile(self, network: str | Graph, config: ArchConfig | None = None,
                *, mapping: str | None = None, imagenet: bool = False,
                attention_shards: int | None = None,
                cache: bool = True) -> CompilationResult:
        """Compile a network against this engine's caches."""
        spec = JobSpec(network, config, mapping=mapping, imagenet=imagenet,
                       attention_shards=attention_shards)
        graph = self.resolve_network(network, imagenet=imagenet)
        job_config = self._job_config(spec)
        if cache:
            return self._compile_cache.get_or_compile(graph, job_config)
        return compile_network(graph, job_config)

    def compile_for(self, spec: JobSpec, *, cache: bool = True,
                    ) -> tuple[CompilationResult, ArchConfig]:
        """Resolve a spec exactly like :meth:`run` and compile it — only.

        Returns the :class:`~repro.compiler.CompilationResult` together
        with the fully resolved configuration (spec overrides applied in
        the same precedence as :meth:`run`), without simulating.  This is
        the per-candidate compile metadata the ``repro.tune`` cost model
        scores from: crossbar loads, flow tables, per-core run shapes —
        everything the compiler records — at compile-cache cost, so a
        design-space search can rank thousands of candidates before the
        first simulation.
        """
        graph = self.resolve_network(spec.network, imagenet=spec.imagenet)
        config = self._job_config(spec)
        if cache:
            return self._compile_cache.get_or_compile(graph, config), config
        return compile_network(graph, config), config

    def step_template(self, network: str | Graph,
                      config: ArchConfig | None = None, *,
                      mapping: str | None = None, imagenet: bool = False,
                      attention_shards: int | None = None) -> StepTemplate:
        """The extent-parameterized decode template for a KV-cache network.

        Compiled once per ``(network contents, compiler-visible
        configuration)`` — the key normalizes the graph to extent 1, so
        sessions starting at different KV depths share one template —
        then served from the engine's template cache.  The
        ``template_hits`` / ``template_misses`` counters in
        :meth:`compile_stats` pin the compile-once property: a decode of
        N steps moves them by exactly one miss, never N.
        """
        graph = self.resolve_network(network, imagenet=imagenet)
        spec = JobSpec(network, config, mapping=mapping, imagenet=imagenet,
                       attention_shards=attention_shards)
        job_config = self._job_config(spec)
        key = (graph_digest(with_kv_extent(graph, 1)),
               config_fingerprint(job_config))
        template = self._template_cache.get(key)
        if template is not None:
            self._template_hits += 1
            return template
        self._template_misses += 1
        template = compile_step_template(graph, job_config)
        self._template_cache[key] = template
        return template

    def decode_session(self, network: str | Graph,
                       config: ArchConfig | None = None, *,
                       kv_tokens: int | None = None,
                       mapping: str | None = None,
                       rob_size: int | None = None,
                       imagenet: bool = False,
                       attention_shards: int | None = None) -> DecodeSession:
        """Open a :class:`~repro.engine.DecodeSession` on this engine."""
        return DecodeSession(self, network, config, kv_tokens=kv_tokens,
                             mapping=mapping, rob_size=rob_size,
                             imagenet=imagenet,
                             attention_shards=attention_shards)

    def _run_decode(self, spec: JobSpec, graph: Graph,
                    config: ArchConfig) -> SimReport:
        """Decode-step driver behind :meth:`run` for decode specs."""
        if spec.batch > 1:
            raise ValueError("decode specs cannot also set batch > 1")
        ext = kv_extent(graph)
        if ext is None:
            raise ValueError(
                f"spec sets decode_steps but network {spec.network!r} "
                "has no kv_cache nodes")
        template = self.step_template(
            graph, spec.config or self.config, mapping=spec.mapping,
            imagenet=spec.imagenet, attention_shards=spec.attention_shards)
        start = spec.kv_tokens if spec.kv_tokens is not None else ext[0]
        reports = []
        for i in range(spec.decode_steps):
            chip = template.resolve(start + i)
            raw = run_program(chip, config, max_cycles=spec.max_cycles)
            reports.append(SimReport.from_raw(raw, config,
                                              chip.total_instructions))
        return aggregate_step_reports(reports, kv_tokens=start)

    def run(self, spec: JobSpec, *, compile_cache: bool = True) -> SimReport:
        """Execute one spec in-process and return its report.

        The report's metadata carries this engine's compile-cache counters
        (``compile_cache_hits`` / ``compile_cache_misses``) and the spec's
        ``tag`` (as ``sweep_tag``), exactly like the legacy surface.
        Decode specs (``decode_steps`` set) run the compile-once decode
        driver and return one aggregated report (``meta["decode"]``).
        """
        graph = self.resolve_network(spec.network, imagenet=spec.imagenet)
        config = self._job_config(spec)
        if spec.decode_steps is not None:
            report = self._run_decode(spec, graph, config)
            if compile_cache:
                report.meta["compile_cache_hits"] = self._compile_cache.hits
                report.meta["compile_cache_misses"] = self._compile_cache.misses
            if spec.tag is not None:
                report.meta["sweep_tag"] = spec.tag
            return report
        if compile_cache:
            compiled = self._compile_cache.get_or_compile(graph, config)
        else:
            compiled = compile_network(graph, config)
        program = compiled.program
        if spec.batch > 1:
            from ..compiler.batching import repeat_chip_program
            program = repeat_chip_program(program, spec.batch)
        raw = run_program(program, config, max_cycles=spec.max_cycles)
        report = SimReport.from_raw(raw, config, program.total_instructions)
        if compile_cache:
            report.meta["compile_cache_hits"] = self._compile_cache.hits
            report.meta["compile_cache_misses"] = self._compile_cache.misses
        if spec.tag is not None:
            report.meta["sweep_tag"] = spec.tag
        return report

    def simulate(self, network: str | Graph | JobSpec,
                 config: ArchConfig | None = None, *,
                 mapping: str | None = None, rob_size: int | None = None,
                 imagenet: bool = False, batch: int = 1,
                 max_cycles: int | None = None,
                 attention_shards: int | None = None,
                 fidelity: str | None = None,
                 tag: Any = None,
                 compile_cache: bool = True) -> SimReport:
        """Compile + simulate one job in-process (accepts a spec directly)."""
        if isinstance(network, JobSpec):
            overrides = {"config": config, "mapping": mapping,
                         "rob_size": rob_size, "imagenet": imagenet,
                         "batch": batch, "max_cycles": max_cycles,
                         "attention_shards": attention_shards,
                         "fidelity": fidelity, "tag": tag}
            defaults = {f.name: f.default for f in dataclass_fields(JobSpec)}
            stray = [key for key, value in overrides.items()
                     if value != defaults[key]]
            if stray:
                raise TypeError(f"pass overrides inside the JobSpec, not "
                                f"alongside it (got {sorted(stray)})")
            spec = network
        else:
            spec = JobSpec(network, config, mapping=mapping,
                           rob_size=rob_size, imagenet=imagenet, batch=batch,
                           max_cycles=max_cycles, tag=tag,
                           attention_shards=attention_shards,
                           fidelity=fidelity)
        return self.run(spec, compile_cache=compile_cache)

    # -- many jobs -----------------------------------------------------------

    def _resolve_workers(self, workers: int | None,
                         n_jobs: int | None = None) -> int:
        if workers is None:
            workers = self._default_workers
        if workers is None:
            workers = os.cpu_count() or 1
        if n_jobs is not None:
            workers = min(workers, n_jobs)
        return max(1, workers)

    def _ensure_pool(self, workers: int) -> WorkerPool:
        while True:
            stale = None
            with self._lock:
                pool = self._pool
                if pool is not None and pool.broken:
                    # Cold restart — only for the unrecoverable case (a
                    # worker could not be respawned).  Plain worker death
                    # heals in place inside the pool itself.
                    stale, self._pool = pool, None
                    pool = None
                elif pool is not None and pool.size < workers:
                    # Warm growth: spawn only the delta, keeping every
                    # existing worker's compile cache.
                    try:
                        pool.grow(workers)
                        self._last_pool_width = pool.size
                    except PoolUnavailable:  # raced a close/breakage
                        stale, self._pool = pool, None
                        pool = None
                if pool is None and stale is None:
                    pool = self._pool = WorkerPool(
                        workers, self.config,
                        max_retries=self._max_retries,
                        default_timeout=self._job_timeout,
                        retry_backoff=self._retry_backoff)
                    self._last_pool_width = workers
                    # An Engine dropped without close() must not pin idle
                    # workers for the rest of the process.
                    weakref.finalize(self, pool.close_if_idle)
                if pool is not None:
                    return pool
            # Drain the replaced pool outside the engine lock — its
            # in-flight jobs may run for minutes, and other engine
            # operations must not stall behind them.
            stale.close()

    def submit(self, spec: JobSpec) -> Future:
        """Queue one spec on the persistent pool; returns its Future.

        Reuses whatever live pool the engine already holds (so a submit
        after ``map(..., workers=2)`` keeps those two warm workers); with
        no pool yet, one is created at the engine's default worker count
        (its ``workers`` argument; the last pool's width after a
        ``close()``; all CPUs otherwise).
        """
        spec = self._stamp_fidelity(spec)
        # A concurrent map() may replace the pool between our read and
        # the pool-level submit; retry against the replacement rather
        # than surfacing a spurious "pool is closed" on a healthy engine.
        for _attempt in range(3):
            with self._lock:
                pool = self._pool
                width = (self._default_workers or self._last_pool_width
                         or os.cpu_count() or 1)
            if pool is None or pool.broken:
                pool = self._ensure_pool(width)
            try:
                return pool.submit(spec)
            except PoolUnavailable:
                with self._lock:
                    if self._pool is pool:  # genuinely broken/closed
                        self._pool = None
                pool.close()  # release its surviving workers
        raise RuntimeError("worker pool kept failing across retries")

    def _dispatch(self, specs: Sequence[JobSpec], workers: int | None,
                  errors: str = "raise") -> list["Future | JobFailed"]:
        """Deal a batch over the warm pool (job ``i`` -> worker ``i % N``).

        Identical batches land on identical workers, which is what lets
        their warm compile caches hit.  Under ``errors="capture"`` a pool
        that breaks mid-dealing (a worker died) yields
        :class:`JobFailed` placeholders for the jobs that could not be
        queued instead of aborting the batch.
        """
        lanes = self._resolve_workers(workers, len(specs))
        pool = self._ensure_pool(lanes)
        lanes = min(lanes, pool.size)
        entries: list[Future | JobFailed] = []
        specs = [self._stamp_fidelity(spec) for spec in specs]
        for i, spec in enumerate(specs):
            try:
                entries.append(pool.submit(spec, worker=i % lanes))
            except Exception as exc:
                # broken pool, or a spec that cannot cross the boundary
                # (e.g. an unpicklable tag)
                if errors == "raise":
                    raise
                entries.append(job_failure(exc))
        return entries

    def map(self, specs: Iterable[JobSpec], *, workers: int | None = None,
            errors: str = "raise") -> list[SimReport | JobFailed]:
        """Run every spec, returning reports in spec order.

        ``workers <= 1`` runs in-process against this engine's caches;
        otherwise the batch is dealt deterministically over the persistent
        worker pool (job ``i`` -> worker ``i % workers``), so a second
        ``map`` over the same specs hits every worker's warm compile
        cache.  ``errors="capture"`` returns :class:`JobFailed` entries in
        place of reports instead of raising.
        """
        if errors not in ("raise", "capture"):
            raise ValueError(f"errors must be 'raise' or 'capture', "
                             f"got {errors!r}")
        specs = list(specs)
        if not specs:
            return []
        if self._resolve_workers(workers, len(specs)) <= 1:
            results: list[SimReport | JobFailed] = []
            for spec in specs:
                try:
                    results.append(self.run(spec))
                except Exception as exc:
                    if errors == "raise":
                        raise
                    results.append(job_failure(exc))
            return results
        entries = self._dispatch(specs, workers, errors)
        results = []
        for entry in entries:
            if isinstance(entry, JobFailed):  # pool broke while dealing
                results.append(entry)
                continue
            try:
                results.append(entry.result())
            except JobFailed as failure:
                if errors == "raise":
                    raise
                results.append(failure)
            except Exception as exc:
                if errors == "raise":
                    raise
                results.append(job_failure(exc))
        return results

    def as_completed(self, specs: Iterable[JobSpec], *,
                     workers: int | None = None,
                     progress: ProgressFn | None = None,
                     errors: str = "raise",
                     ) -> Iterator[tuple[int, SimReport | JobFailed]]:
        """Yield ``(index, report)`` pairs as jobs finish.

        ``index`` is the job's position in ``specs``; ``progress(done,
        total, report)`` fires after every completion.  With ``workers <=
        1`` jobs run in-process and complete in order.
        ``errors="capture"`` yields :class:`JobFailed` entries in place of
        reports instead of raising.

        Validation and (for the pooled path) job dispatch happen eagerly
        at the call, matching :meth:`map`; only result consumption is
        lazy in the returned iterator.
        """
        if errors not in ("raise", "capture"):
            raise ValueError(f"errors must be 'raise' or 'capture', "
                             f"got {errors!r}")
        specs = list(specs)
        total = len(specs)

        def _one(run_job, index, done):
            try:
                outcome = run_job()
            except JobFailed as failure:
                if errors == "raise":
                    raise
                outcome = failure
            except Exception as exc:
                if errors == "raise":
                    raise
                outcome = job_failure(exc)
            if progress is not None:
                progress(done, total, outcome)
            return index, outcome

        if self._resolve_workers(workers, total) <= 1:
            def _serial() -> Iterator[tuple[int, SimReport | JobFailed]]:
                for i, spec in enumerate(specs):
                    yield _one(lambda: self.run(spec), i, i + 1)
            return _serial()

        entries = self._dispatch(specs, workers, errors)  # submits now

        def _stream() -> Iterator[tuple[int, SimReport | JobFailed]]:
            done = 0
            index_of: dict[Future, int] = {}
            for i, entry in enumerate(entries):
                if isinstance(entry, JobFailed):  # failed at dispatch
                    done += 1
                    if progress is not None:
                        progress(done, total, entry)
                    yield i, entry
                else:
                    index_of[entry] = i
            for future in _futures_as_completed(index_of):
                done += 1
                yield _one(future.result, index_of[future], done)
        return _stream()

    def serve_mix(self, specs: Iterable[JobSpec], *,
                  workers: int | None = None,
                  errors: str = "raise") -> "MixReport":
        """Continuous-batching serving mix: prefill and decode together.

        Each decode spec (``decode_steps`` set) expands into one unit job
        per step at its growing KV extent; prefill specs stay whole.  The
        units are interleaved round-robin across requests — every
        scheduling round advances each live request by one step, the
        continuous-batching order — and dealt over the engine
        (:meth:`map`: in-process under ``workers <= 1``, else the warm
        worker pool).  Per-request outcomes fold back into one
        aggregated report each; the returned
        :class:`~repro.runner.results.MixReport` carries the per-step
        latency samples and their p50/p99/TPOT distribution.
        """
        from dataclasses import replace as _replace
        specs = list(specs)
        units_per_request: list[list[JobSpec]] = []
        is_decode: list[bool] = []
        starts: list[int] = []
        for spec in specs:
            if spec.decode_steps is None:
                units_per_request.append([spec])
                is_decode.append(False)
                starts.append(0)
                continue
            graph = self.resolve_network(spec.network,
                                         imagenet=spec.imagenet)
            ext = kv_extent(graph)
            if ext is None:
                raise ValueError(
                    f"spec sets decode_steps but network {spec.network!r} "
                    "has no kv_cache nodes")
            start = spec.kv_tokens if spec.kv_tokens is not None else ext[0]
            units_per_request.append([
                _replace(spec, network=with_kv_extent(graph, start + i),
                         decode_steps=None, kv_tokens=None)
                for i in range(spec.decode_steps)])
            is_decode.append(True)
            starts.append(start)

        # Round-robin over requests: the continuous-batching schedule.
        schedule: list[tuple[int, int]] = []  # (request, unit index)
        cursor = [0] * len(specs)
        live = True
        while live:
            live = False
            for r, units in enumerate(units_per_request):
                if cursor[r] < len(units):
                    schedule.append((r, cursor[r]))
                    cursor[r] += 1
                    live = True
        flat = [units_per_request[r][u] for r, u in schedule]
        outcomes = self.map(flat, workers=workers, errors=errors)

        per_request: list[list[SimReport | JobFailed]] = [
            [None] * len(units) for units in units_per_request]
        for (r, u), outcome in zip(schedule, outcomes):
            per_request[r][u] = outcome

        reports: list[SimReport | JobFailed] = []
        step_seconds: list[float] = []
        prefill_seconds: list[float] = []
        for r, outcomes_r in enumerate(per_request):
            failed = next((o for o in outcomes_r
                           if isinstance(o, JobFailed)), None)
            if failed is not None:
                reports.append(failed)
                continue
            if is_decode[r]:
                step_seconds.extend(rep.seconds for rep in outcomes_r)
                reports.append(aggregate_step_reports(
                    list(outcomes_r), kv_tokens=starts[r]))
            else:
                prefill_seconds.append(outcomes_r[0].seconds)
                reports.append(outcomes_r[0])
        return MixReport(reports=reports, step_seconds=step_seconds,
                         prefill_seconds=prefill_seconds)

    # -- introspection / lifecycle -------------------------------------------

    def compile_stats(self) -> dict:
        """This engine's compile-cache counters (hits/misses/entries),
        plus the decode-template counters (``template_hits`` /
        ``template_misses`` / ``template_entries``)."""
        stats = dict(self._compile_cache.stats())
        stats["template_hits"] = self._template_hits
        stats["template_misses"] = self._template_misses
        stats["template_entries"] = len(self._template_cache)
        return stats

    def pool_stats(self) -> dict:
        """The live pool's supervision telemetry (compile_stats' sibling).

        ``respawns`` counts workers replaced in place after a crash or
        timeout kill, ``retries`` the jobs resubmitted across those
        respawns, ``timeouts``/``poisoned`` the jobs settled as
        :class:`~repro.engine.JobTimeout`/:class:`~repro.engine.JobPoisoned`.
        ``queue_depth``/``in_flight`` split the outstanding jobs into
        not-yet-started vs running, and ``ewma_service_s`` is a moving
        average of observed job service times — together the occupancy
        signal ``pimsim serve`` derives its admission control and
        ``Retry-After`` from.  All zeros until the first parallel call
        creates a pool.
        """
        pool = self._pool
        if pool is None:
            return {"size": 0, "respawns": 0, "retries": 0,
                    "timeouts": 0, "poisoned": 0, "broken": False,
                    "queue_depth": 0, "in_flight": 0,
                    "ewma_service_s": 0.0}
        return pool.stats()

    @property
    def pool_size(self) -> int:
        """Live worker processes (0 until the first parallel call)."""
        pool = self._pool
        return pool.size if pool is not None else 0

    def clear_caches(self) -> None:
        """Drop compiled programs, decode templates and memoized graphs."""
        self._compile_cache.clear()
        self._model_cache.clear()
        self._graph_memo.clear()
        self._template_cache.clear()
        self._template_hits = 0
        self._template_misses = 0

    def terminate(self) -> None:
        """Abort the worker pool without draining; engine stays usable.

        :meth:`close`'s drop-everything sibling: queued and in-flight
        jobs fail with :class:`~repro.engine.PoolUnavailable` instead of
        being waited on.  ``pimsim serve`` uses it when the graceful
        drain deadline expires — a wedged job must not be able to hold
        the process past its deadline.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.abort("worker pool terminated")

    def close(self) -> None:
        """Shut the worker pool down; the engine stays usable in-process.

        A later parallel call re-creates a pool (``submit`` at the
        closed pool's width); call :meth:`close` again afterwards if the
        workers should not outlive that call either.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
