"""Persistent simulation worker pool with deterministic job dealing.

The legacy sweep executor spun up a throwaway ``ProcessPoolExecutor``
inside every call, so back-to-back sweeps paid pool start-up *and* lost
every worker's compile cache.  :class:`WorkerPool` keeps its worker
processes alive across calls: each worker owns a private
:class:`~repro.engine.Engine` (model cache + compile cache) that survives
between jobs, so the second sweep over the same points recompiles nothing.

Jobs are dealt deterministically — :meth:`Engine._dispatch
<repro.engine.Engine>` assigns job ``i`` of a batch to worker ``i %
lanes`` via :meth:`WorkerPool.submit`'s ``worker=`` pin — so two
identical batches land on the same workers and the warm caches actually
hit (a shared work queue would reshuffle the assignment run to run).

Transport is a pair of one-way pipes per worker (no locks shared between
processes — a killed worker can never strand a queue lock).  A collector
thread multiplexes the result pipes and resolves
:class:`concurrent.futures.Future` objects; a worker's death surfaces as
EOF on its pipe, which fails exactly that worker's outstanding futures
with :class:`JobFailed` and marks the pool broken instead of hanging
callers.  Worker exceptions are pickled and re-raised parent-side with
their original type (matching the in-process path), falling back to a
:class:`JobFailed` carrying (kind, message, traceback) strings when the
exception itself cannot cross the process boundary.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import multiprocessing.connection
import pickle
import threading
import traceback
from concurrent.futures import Future, InvalidStateError

__all__ = ["WorkerPool", "JobFailed", "PoolUnavailable", "job_failure"]


class PoolUnavailable(RuntimeError):
    """The pool cannot accept jobs: closed, or a worker died (broken).

    Distinct from arbitrary ``RuntimeError``s so callers (and
    :meth:`repro.engine.Engine.submit`'s retry) never mistake a job-side
    error for a pool-lifecycle one.
    """


class JobFailed(RuntimeError):
    """A job raised inside the engine (possibly in a worker process).

    ``kind`` is the original exception type name, ``message`` its first
    line (empty messages fall back to the type name, matching
    ``repro.explore``'s failure records), ``details`` the full traceback
    text when the failure crossed a process boundary.
    """

    def __init__(self, kind: str, message: str, details: str | None = None):
        super().__init__(f"{kind}: {message}" if message != kind else message)
        self.kind = kind
        self.message = message
        self.details = details


def _first_line(text: str, fallback: str) -> str:
    """First line of a message, falling back for empty messages.

    The single definition of failure-record truncation — the engine paths
    and ``repro.explore``'s grid records must stay in sync.
    """
    return text.splitlines()[0] if text else fallback


def job_failure(exc: BaseException, details: str | None = None) -> JobFailed:
    """Wrap an exception as a :class:`JobFailed` (first-line message).

    Exceptions that crossed a worker boundary carry the remote traceback
    (``_job_traceback``, attached by the pool); it becomes ``details``
    unless the caller supplies its own.
    """
    if details is None:
        details = getattr(exc, "_job_traceback", None)
    return JobFailed(type(exc).__name__,
                     _first_line(str(exc), type(exc).__name__), details)


def _settle(future: Future, *, result=None,
            exception: BaseException | None = None) -> None:
    """Resolve a future, tolerating caller-side cancellation.

    The collector must never die on a future the caller already
    cancelled (or a duplicate settle): a dead collector would hang every
    other job on the pool.
    """
    try:
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass  # cancelled (or already settled); the result is discarded


def _rebuild_exception(error) -> BaseException:
    """Reconstruct a worker-side failure parent-side.

    Prefers the original exception object (pickled by the worker) so the
    pool path raises the same type as the in-process path; falls back to
    :class:`JobFailed` when the exception cannot cross the boundary.
    """
    payload, kind, message, details = error
    if payload is not None:
        try:
            exc = pickle.loads(payload)
        except Exception:
            pass
        else:
            try:
                # Carry the worker-side traceback text along so capture
                # paths (job_failure) and `pimsim batch` error records can
                # still show where the failure happened remotely.
                exc._job_traceback = details
            except Exception:
                pass
            return exc
    return JobFailed(kind, _first_line(message, kind), details)


def _worker_main(task_conn, result_conn, config) -> None:
    """Worker loop: one private Engine, jobs until sentinel or EOF."""
    from .core import Engine

    engine = Engine(config)
    while True:
        try:
            item = task_conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if item is None:
            return
        job_id, spec = item
        try:
            report = engine.run(spec)
        except (KeyboardInterrupt, SystemExit):
            # Ctrl-C reaches the whole process group: die promptly so the
            # parent's close() drain does not grind through the rest of
            # the queued batch (pending futures are failed at close).
            return
        except BaseException as exc:  # ship, don't kill the worker
            try:
                payload = pickle.dumps(exc)
            except Exception:
                payload = None
            outcome = (job_id, None,
                       (payload, type(exc).__name__, str(exc),
                        traceback.format_exc()))
        else:
            outcome = (job_id, report, None)
        try:
            result_conn.send(outcome)
        except (BrokenPipeError, OSError):
            return  # parent went away


class WorkerPool:
    """``size`` persistent worker processes, each with warm caches.

    ``config`` is the default architecture configuration handed to every
    worker's engine (jobs whose spec carries its own configuration ignore
    it).  :meth:`close` drains queued jobs and shuts down cleanly; at
    interpreter exit an unclosed pool is torn down abortively (daemonic
    workers are terminated, outstanding futures failed) so it never
    blocks process exit.
    """

    def __init__(self, size: int, config=None) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        ctx = multiprocessing.get_context()
        self.size = size
        self._task_conns = []
        self._result_conns = []
        self._workers = []
        try:
            for _ in range(size):
                task_r, task_w = ctx.Pipe(duplex=False)
                result_r, result_w = ctx.Pipe(duplex=False)
                worker = ctx.Process(target=_worker_main,
                                     args=(task_r, result_w, config),
                                     daemon=True)
                worker.start()
                # Close the parent's copies of the worker-side ends so a
                # dead worker reads as EOF on its result pipe.
                task_r.close()
                result_w.close()
                self._task_conns.append(task_w)
                self._result_conns.append(result_r)
                self._workers.append(worker)
        except BaseException:
            # A failed spawn (e.g. fork EAGAIN) must not strand the
            # workers already started — no atexit hook exists yet.
            for worker in self._workers:
                if worker.is_alive():
                    worker.terminate()
            for worker in self._workers:
                worker.join(timeout=1)
            for conn in self._task_conns + self._result_conns:
                conn.close()
            raise
        #: job_id -> (future, worker index); the index lets worker death
        #: fail exactly the jobs that worker owned.
        self._pending: dict[int, tuple[Future, int]] = {}
        self._lock = threading.Lock()
        #: per-worker send locks: task-pipe sends happen OUTSIDE _lock (a
        #: full pipe blocks until the worker drains, and the collector
        #: needs _lock to drain results — sending under _lock deadlocks).
        self._send_locks = [threading.Lock() for _ in range(size)]
        self._job_ids = itertools.count()
        self._rr = 0
        self._closed = False
        self._broken = False
        # Start the collector only after every worker has been forked, so
        # no worker inherits a running thread.
        self._collector = threading.Thread(target=self._collect, daemon=True,
                                           name="repro-engine-collector")
        self._collector.start()
        atexit.register(self._close_at_exit)

    @property
    def broken(self) -> bool:
        """True once a worker died unexpectedly; the pool refuses new jobs."""
        return self._broken

    # -- submission ----------------------------------------------------------

    def submit(self, spec, *, worker: int | None = None) -> Future:
        """Queue one job; ``worker=None`` deals round-robin.

        May block while the target worker's task pipe is full — that is
        the pool's backpressure (the collector keeps draining results in
        the meantime, so the pipeline always makes progress).
        """
        with self._lock:
            if self._closed:
                raise PoolUnavailable("worker pool is closed")
            if self._broken:
                raise PoolUnavailable("worker pool is broken (a worker "
                                      "died); create a fresh pool")
            if worker is None:
                worker = self._rr
                self._rr = (self._rr + 1) % self.size
            worker %= self.size
            job_id = next(self._job_ids)
            future: Future = Future()
            self._pending[job_id] = (future, worker)
        try:
            with self._send_locks[worker]:
                self._task_conns[worker].send((job_id, spec))
        except (BrokenPipeError, OSError):
            with self._lock:
                self._pending.pop(job_id, None)
                self._broken = True
            raise PoolUnavailable("worker pool is broken (a worker died); "
                                  "create a fresh pool") from None
        except Exception:
            # The spec failed to pickle.  Connection.send serializes the
            # whole message before writing, so no bytes reached the worker
            # and the pool stays healthy — just retire this job's future.
            with self._lock:
                self._pending.pop(job_id, None)
            raise
        return future

    # -- result collection ---------------------------------------------------

    def _collect(self) -> None:
        """Multiplex result pipes until every worker's pipe hits EOF."""
        remaining = {conn: index
                     for index, conn in enumerate(self._result_conns)}
        while remaining:
            ready = multiprocessing.connection.wait(list(remaining))
            for conn in ready:
                try:
                    job_id, report, error = conn.recv()
                except (EOFError, OSError):
                    self._worker_gone(remaining.pop(conn))
                    continue
                except Exception:
                    # A result that cannot be decoded parent-side.  The
                    # message was consumed whole (the stream stays
                    # framed) but its job_id is unknowable, so fail this
                    # worker's outstanding jobs rather than leave one
                    # future hanging forever.
                    self._worker_gone(remaining[conn],
                                      "returned an undecodable result")
                    continue
                with self._lock:
                    future, _worker = self._pending.pop(job_id, (None, None))
                if future is None:  # already failed by teardown; drop
                    continue
                if error is not None:
                    _settle(future, exception=_rebuild_exception(error))
                else:
                    _settle(future, result=report)

    def _worker_gone(self, index: int, what: str = "died") -> None:
        """A worker can no longer be trusted (EOF on its result pipe, or
        an undecodable result): fail its outstanding jobs and mark the
        pool broken.  A no-op during close, where EOF is the clean path.
        """
        if self._closed:
            return
        self._broken = True
        with self._lock:
            dead = [job_id for job_id, (_future, worker)
                    in self._pending.items() if worker == index]
            failures = [self._pending.pop(job_id)[0] for job_id in dead]
        for future in failures:
            _settle(future, exception=JobFailed(
                "WorkerCrashed",
                f"worker {index} (pid {self._workers[index].pid}) "
                f"{what}; its queued jobs were lost"))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain queued jobs, then stop the workers; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Sentinels queue behind any outstanding jobs: workers drain their
        # pipes, post the results, then exit; the collector resolves every
        # posted result before the pipe's EOF retires it.  The joins are
        # unbounded on purpose — in-flight simulations may legitimately run
        # for minutes, and a bounded join would spuriously fail their
        # futures (a dead worker's join returns immediately).
        for send_lock, conn in zip(self._send_locks, self._task_conns):
            try:
                with send_lock:
                    conn.send(None)
            except (BrokenPipeError, OSError):
                pass  # that worker is already gone
        for worker in self._workers:
            worker.join()
        self._collector.join(timeout=5)
        self._fail_remaining("worker pool closed")
        atexit.unregister(self._close_at_exit)

    def _close_at_exit(self) -> None:
        """Abortive teardown at interpreter exit: never blocks on jobs."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=1)
        self._collector.join(timeout=1)
        self._fail_remaining("worker pool torn down at interpreter exit")
        atexit.unregister(self._close_at_exit)

    def close_if_idle(self) -> bool:
        """Tear the pool down only if no job is outstanding.

        Used by the engine's garbage-collection finalizer: an Engine
        dropped without ``close()`` must not pin its idle workers for the
        rest of the process, but a pool with in-flight jobs (whose
        futures may outlive the engine) is left for atexit.
        """
        with self._lock:
            if self._pending:
                return False
        self._close_at_exit()
        return True

    def _fail_remaining(self, reason: str) -> None:
        with self._lock:
            pending = [future for future, _worker in self._pending.values()]
            self._pending.clear()
        for future in pending:  # only a crashed worker leaves any behind
            _settle(future, exception=RuntimeError(reason))
