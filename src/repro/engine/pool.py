"""Self-healing simulation worker pool with deterministic job dealing.

The legacy sweep executor spun up a throwaway ``ProcessPoolExecutor``
inside every call, so back-to-back sweeps paid pool start-up *and* lost
every worker's compile cache.  :class:`WorkerPool` keeps its worker
processes alive across calls: each worker owns a private
:class:`~repro.engine.Engine` (model cache + compile cache) that survives
between jobs, so the second sweep over the same points recompiles nothing.

Jobs are dealt deterministically — :meth:`Engine._dispatch
<repro.engine.Engine>` assigns job ``i`` of a batch to worker ``i %
lanes`` via :meth:`WorkerPool.submit`'s ``worker=`` pin — so two
identical batches land on the same workers and the warm caches actually
hit (a shared work queue would reshuffle the assignment run to run).

Transport is a pair of one-way pipes per worker (no locks shared between
processes — a killed worker can never strand a queue lock).  A collector
thread multiplexes the result pipes and resolves
:class:`concurrent.futures.Future` objects.  Worker exceptions are
pickled and re-raised parent-side with their original type (matching the
in-process path), falling back to a :class:`JobFailed` carrying (kind,
message, traceback) strings when the exception itself cannot cross the
process boundary.

Supervision (the fault-tolerance story)
---------------------------------------

A worker's death surfaces as EOF on its result pipe.  Instead of
condemning the whole pool, the supervisor **respawns that worker in
place** — fresh pipes, same lane index — so deterministic dealing and
every *other* worker's warm compile cache survive.  Each worker slot is a
:class:`_Lane`; a respawn builds a new lane object for the same index, so
stale references held by in-flight bookkeeping are detected by identity.

* **Retry with poison quarantine.**  Jobs owned by a crashed worker are
  transparently resubmitted (with jittered backoff) onto the respawned
  lane.  Only the job the worker was *running* when it died (workers
  report job starts over the result pipe) is blamed for the crash; a job
  whose blame count exceeds ``max_retries`` is quarantined and fails with
  :class:`JobPoisoned` instead of being retried forever.  Queued
  bystander jobs are requeued without blame (bounded by a generous cap so
  a pathological spec cannot respawn-loop).  Exceptions *raised by* a job
  are never retried — they are results, shipped back like any other.

* **Per-job timeouts.**  A watchdog thread tracks the start heartbeats;
  a job running longer than its timeout (``JobSpec.timeout``, a
  ``submit(timeout=...)`` override, or the pool's ``default_timeout``)
  gets its worker terminated + respawned and fails with
  :class:`JobTimeout` (not retried — the retry would hang just as long).

* **Growable warm pool.**  :meth:`WorkerPool.grow` appends fresh lanes
  without disturbing existing ones, so widening a pool no longer costs
  every surviving worker's warm cache.

The pool only reports :attr:`WorkerPool.broken` when a *respawn itself*
fails — the one unrecoverable case — and :meth:`stats` exposes the
supervision telemetry (respawns / retries / timeouts / poisoned).
Deterministic chaos directives for exercising every path above live in
:mod:`repro.engine.faults`.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import multiprocessing.connection
import pickle
import random
import signal
import threading
import time
import traceback
from concurrent.futures import Future, InvalidStateError

__all__ = ["WorkerPool", "JobFailed", "JobPoisoned", "JobTimeout",
           "PoolUnavailable", "job_failure"]

#: smoothing factor for the service-time moving average: ~the last five
#: jobs dominate, so Retry-After tracks load shifts without twitching on
#: one outlier.
_EWMA_ALPHA = 0.2


class PoolUnavailable(RuntimeError):
    """The pool cannot accept jobs: closed, or unrecoverably broken.

    Distinct from arbitrary ``RuntimeError``s so callers (and
    :meth:`repro.engine.Engine.submit`'s retry) never mistake a job-side
    error for a pool-lifecycle one.
    """


class JobFailed(RuntimeError):
    """A job raised inside the engine (possibly in a worker process).

    ``kind`` is the original exception type name, ``message`` its first
    line (empty messages fall back to the type name, matching
    ``repro.explore``'s failure records), ``details`` the full traceback
    text when the failure crossed a process boundary.
    """

    def __init__(self, kind: str, message: str, details: str | None = None):
        super().__init__(f"{kind}: {message}" if message != kind else message)
        self.kind = kind
        self.message = message
        self.details = details


class JobPoisoned(JobFailed):
    """The job repeatedly crashed its worker and was quarantined.

    Raised (or captured) instead of retrying forever once a job exceeds
    the pool's ``max_retries`` blame budget.  Distinct from plain
    worker-crash failures so sweeps can tell "this point is toxic" from
    "a worker happened to die".
    """

    def __init__(self, message: str, details: str | None = None):
        super().__init__("JobPoisoned", message, details)


class JobTimeout(JobFailed):
    """The job exceeded its wall-clock timeout and its worker was killed."""

    def __init__(self, message: str, details: str | None = None):
        super().__init__("JobTimeout", message, details)


def _first_line(text: str, fallback: str) -> str:
    """First line of a message, falling back for empty messages.

    The single definition of failure-record truncation — the engine paths
    and ``repro.explore``'s grid records must stay in sync.
    """
    return text.splitlines()[0] if text else fallback


def job_failure(exc: BaseException, details: str | None = None) -> JobFailed:
    """Wrap an exception as a :class:`JobFailed` (first-line message).

    Typed pool failures (:class:`JobPoisoned`, :class:`JobTimeout`, plain
    :class:`JobFailed`) pass through untouched so capture paths keep the
    classification.  Exceptions that crossed a worker boundary carry the
    remote traceback (``_job_traceback``, attached by the pool); it
    becomes ``details`` unless the caller supplies its own.
    """
    if isinstance(exc, JobFailed):
        return exc
    if details is None:
        details = getattr(exc, "_job_traceback", None)
    return JobFailed(type(exc).__name__,
                     _first_line(str(exc), type(exc).__name__), details)


def _settle(future: Future, *, result=None,
            exception: BaseException | None = None) -> None:
    """Resolve a future, tolerating caller-side cancellation.

    The collector must never die on a future the caller already
    cancelled (or a duplicate settle): a dead collector would hang every
    other job on the pool.
    """
    try:
        if exception is not None:
            future.set_exception(exception)
        else:
            future.set_result(result)
    except InvalidStateError:
        pass  # cancelled (or already settled); the result is discarded


def _rebuild_exception(error) -> BaseException:
    """Reconstruct a worker-side failure parent-side.

    Prefers the original exception object (pickled by the worker) so the
    pool path raises the same type as the in-process path; falls back to
    :class:`JobFailed` when the exception cannot cross the boundary.
    """
    payload, kind, message, details = error
    if payload is not None:
        try:
            exc = pickle.loads(payload)
        except Exception:
            pass
        else:
            try:
                # Carry the worker-side traceback text along so capture
                # paths (job_failure) and `pimsim batch` error records can
                # still show where the failure happened remotely.
                exc._job_traceback = details
            except Exception:
                pass
            return exc
    return JobFailed(kind, _first_line(message, kind), details)


def _worker_main(task_conn, result_conn, config) -> None:
    """Worker loop: one private Engine, jobs until sentinel or EOF.

    Protocol: each task is ``(job_id, spec, attempt)``; the worker posts a
    ``("start", job_id, attempt)`` heartbeat before running it (feeding
    the parent's timeout watchdog and crash blame) and a ``("done",
    job_id, report, error)`` record after.  Chaos directives embedded in
    the spec (:mod:`repro.engine.faults`) trip here — and only here, so
    in-process runs are never at risk.
    """
    from . import faults
    from .core import Engine

    # A forked worker inherits the parent's signal dispositions; under
    # ``pimsim serve`` those trap SIGTERM/SIGINT for graceful drain,
    # which would make ``Process.terminate()`` a no-op here and leave
    # the worker alive past an abortive teardown.  Reset to the default
    # (die) before accepting work.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)

    engine = Engine(config)
    while True:
        try:
            item = task_conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if item is None:
            return
        job_id, spec, attempt = item
        try:
            result_conn.send(("start", job_id, attempt))
        except (BrokenPipeError, OSError):
            return
        directive = faults.directive_for(spec, attempt)
        try:
            faults.trip(directive)  # may kill, exit, hang or raise
            report = engine.run(spec)
        except (KeyboardInterrupt, SystemExit):
            # Ctrl-C reaches the whole process group: die promptly so the
            # parent's close() drain does not grind through the rest of
            # the queued batch (pending futures are failed at close).
            return
        except BaseException as exc:  # ship, don't kill the worker
            try:
                payload = pickle.dumps(exc)
            except Exception:
                payload = None
            outcome = ("done", job_id, None,
                       (payload, type(exc).__name__, str(exc),
                        traceback.format_exc()))
        else:
            outcome = ("done", job_id, report, None)
        try:
            if directive is not None and directive.get("mode") == "garbage":
                result_conn.send_bytes(faults.GARBAGE_BYTES)
            else:
                result_conn.send(outcome)
        except (BrokenPipeError, OSError):
            return  # parent went away


class _Lane:
    """One worker slot: a process plus its private pipes.

    Immutable per generation — a respawn builds a fresh ``_Lane`` for the
    same index, so in-flight bookkeeping holding a stale lane can detect
    the replacement by identity (``pool._lanes[lane.index] is lane``).
    """

    __slots__ = ("index", "generation", "worker", "task_conn", "result_conn",
                 "send_lock")

    def __init__(self, index, generation, worker, task_conn, result_conn):
        self.index = index
        self.generation = generation
        self.worker = worker
        self.task_conn = task_conn
        self.result_conn = result_conn
        #: task-pipe sends happen OUTSIDE the pool lock (a full pipe
        #: blocks until the worker drains, and the collector needs the
        #: pool lock to drain results — sending under it deadlocks).
        self.send_lock = threading.Lock()


class _Job:
    """Parent-side record of one in-flight job."""

    __slots__ = ("future", "spec", "lane", "timeout", "attempts", "requeues",
                 "started_at")

    def __init__(self, future, spec, lane, timeout):
        self.future = future
        self.spec = spec
        self.lane = lane
        self.timeout = timeout
        self.attempts = 0      # worker-crash blames (counts vs max_retries)
        self.requeues = 0      # unblamed resubmissions (lost as a bystander)
        self.started_at = None  # monotonic time of the worker's heartbeat


class WorkerPool:
    """``size`` persistent, supervised worker processes with warm caches.

    ``config`` is the default architecture configuration handed to every
    worker's engine (jobs whose spec carries its own configuration ignore
    it).  ``max_retries`` bounds how often a single job may crash its
    worker before being quarantined as :class:`JobPoisoned`;
    ``default_timeout`` (seconds) applies to jobs whose spec carries no
    timeout of its own; ``retry_backoff`` scales the jittered delay before
    a blamed job is resubmitted.  :meth:`close` drains queued jobs and
    shuts down cleanly; at interpreter exit an unclosed pool is torn down
    abortively (daemonic workers are terminated, outstanding futures
    failed) so it never blocks process exit.
    """

    def __init__(self, size: int, config=None, *, max_retries: int = 1,
                 default_timeout: float | None = None,
                 retry_backoff: float = 0.05) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        ctx = multiprocessing.get_context()
        self.size = size
        self._config = config
        self._max_retries = max_retries
        self._default_timeout = default_timeout
        self._retry_backoff = retry_backoff
        #: bystander-requeue bound: a spec that kills workers before its
        #: start heartbeat can ever be blamed must not respawn-loop.
        self._requeue_cap = max(4, 2 * max_retries + 2)
        self._lanes: list[_Lane] = []
        self._wake_r, self._wake_w = ctx.Pipe(duplex=False)
        try:
            for index in range(size):
                self._lanes.append(self._spawn_lane(index, 0))
        except BaseException:
            # A failed spawn (e.g. fork EAGAIN) must not strand the
            # workers already started — no atexit hook exists yet.
            for lane in self._lanes:
                if lane.worker.is_alive():
                    lane.worker.terminate()
            for lane in self._lanes:
                lane.worker.join(timeout=1)
                lane.task_conn.close()
                lane.result_conn.close()
            self._wake_r.close()
            self._wake_w.close()
            raise
        #: job_id -> _Job; the job's lane lets worker death fail/requeue
        #: exactly the jobs that worker owned.
        self._pending: dict[int, _Job] = {}
        self._lock = threading.Lock()
        self._job_ids = itertools.count()
        self._rr = 0
        self._closed = False
        self._broken = False
        self._respawns = 0
        self._retries = 0
        self._timeouts = 0
        self._poisoned = 0
        #: EWMA of observed job service times (heartbeat -> done), the
        #: input to `pimsim serve`'s Retry-After math; 0.0 until the
        #: first completion.
        self._service_ewma = 0.0
        self._service_samples = 0
        self._stop = threading.Event()
        # Start the threads only after every worker has been forked, so
        # no worker inherits a running thread.
        self._collector = threading.Thread(target=self._collect, daemon=True,
                                           name="repro-engine-collector")
        self._collector.start()
        self._watchdog = threading.Thread(target=self._watch, daemon=True,
                                          name="repro-engine-watchdog")
        self._watchdog.start()
        atexit.register(self._close_at_exit)

    def _spawn_lane(self, index: int, generation: int) -> _Lane:
        """Fork one worker and wire up its private pipes."""
        ctx = multiprocessing.get_context()
        task_r, task_w = ctx.Pipe(duplex=False)
        result_r, result_w = ctx.Pipe(duplex=False)
        worker = ctx.Process(target=_worker_main,
                             args=(task_r, result_w, self._config),
                             daemon=True)
        worker.start()
        # Close the parent's copies of the worker-side ends so a dead
        # worker reads as EOF on its result pipe.
        task_r.close()
        result_w.close()
        return _Lane(index, generation, worker, task_w, result_r)

    def _wake(self) -> None:
        """Nudge the collector to re-scan the lane set."""
        try:
            self._wake_w.send_bytes(b"w")
        except (OSError, ValueError):
            pass

    @property
    def broken(self) -> bool:
        """True only when a worker could not be *respawned* — a plain
        worker death heals in place and leaves the pool serviceable."""
        return self._broken

    def stats(self) -> dict:
        """Supervision + occupancy telemetry.

        Beyond the fault-tolerance counters: ``queue_depth`` (accepted
        jobs not yet started by a worker), ``in_flight`` (jobs a worker
        has heartbeated as running) and ``ewma_service_s`` (exponential
        moving average of observed job service times, 0.0 until the
        first completion) — the inputs backpressure math needs.
        """
        with self._lock:
            in_flight = sum(1 for job in self._pending.values()
                            if job.started_at is not None)
            return {"size": self.size, "respawns": self._respawns,
                    "retries": self._retries, "timeouts": self._timeouts,
                    "poisoned": self._poisoned, "broken": self._broken,
                    "queue_depth": len(self._pending) - in_flight,
                    "in_flight": in_flight,
                    "ewma_service_s": self._service_ewma}

    # -- submission ----------------------------------------------------------

    def submit(self, spec, *, worker: int | None = None,
               timeout: float | None = None) -> Future:
        """Queue one job; ``worker=None`` deals round-robin.

        ``timeout`` (seconds) overrides the spec's own ``timeout`` field
        and the pool's ``default_timeout``.  May block while the target
        worker's task pipe is full — that is the pool's backpressure (the
        collector keeps draining results in the meantime, so the pipeline
        always makes progress).
        """
        with self._lock:
            if self._closed:
                raise PoolUnavailable("worker pool is closed")
            if self._broken:
                raise PoolUnavailable("worker pool is broken (a worker "
                                      "could not be respawned); create a "
                                      "fresh pool")
            if worker is None:
                worker = self._rr
                self._rr = (self._rr + 1) % self.size
            lane = self._lanes[worker % self.size]
            if timeout is None:
                timeout = getattr(spec, "timeout", None)
            if timeout is None:
                timeout = self._default_timeout
            job_id = next(self._job_ids)
            future: Future = Future()
            self._pending[job_id] = _Job(future, spec, lane, timeout)
        try:
            with lane.send_lock:
                lane.task_conn.send((job_id, spec, 0))
        except (BrokenPipeError, OSError):
            # The worker died under us.  Supervision respawns the lane;
            # this job rides along onto the fresh worker (or is reclaimed
            # below if the crash handler raced past before it was
            # registered against the dead lane).
            self._lane_crashed(lane, "died")
            self._reclaim_if_stranded(job_id, lane)
        except Exception:
            # The spec failed to pickle.  Connection.send serializes the
            # whole message before writing, so no bytes reached the worker
            # and the pool stays healthy — just retire this job's future.
            with self._lock:
                self._pending.pop(job_id, None)
            raise
        return future

    def grow(self, size: int) -> None:
        """Widen the pool in place to ``size`` lanes (no-op if not wider).

        Existing workers — and their warm compile caches — are untouched;
        only the delta is spawned.  This is what lets an
        :class:`~repro.engine.Engine` honor a wider ``workers=`` request
        without the historical cold restart.
        """
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        with self._lock:
            if self._closed:
                raise PoolUnavailable("worker pool is closed")
            if self._broken:
                raise PoolUnavailable("worker pool is broken (a worker "
                                      "could not be respawned); create a "
                                      "fresh pool")
            if size <= self.size:
                return
            fresh: list[_Lane] = []
            try:
                for index in range(self.size, size):
                    fresh.append(self._spawn_lane(index, 0))
            except BaseException:
                for lane in fresh:
                    if lane.worker.is_alive():
                        lane.worker.terminate()
                    lane.worker.join(timeout=1)
                    lane.task_conn.close()
                    lane.result_conn.close()
                raise
            self._lanes.extend(fresh)
            self.size = size
        self._wake()

    # -- result collection ---------------------------------------------------

    def _collect(self) -> None:
        """Multiplex result pipes; survives lane respawns and pool growth.

        The wait set is rebuilt from the live lane list every iteration
        (the wake pipe interrupts a blocked wait when it changes); a
        conn whose lane has been replaced is drained to EOF and retired —
        so garbage on a condemned worker's pipe can never re-trigger
        crash handling in a loop.
        """
        watched: dict = {}   # result conn -> the lane it belonged to
        retired: set = set()
        while True:
            with self._lock:
                closed = self._closed
                for lane in self._lanes:
                    if lane.result_conn not in retired:
                        watched.setdefault(lane.result_conn, lane)
            if closed and not watched:
                return
            ready = multiprocessing.connection.wait(
                list(watched) + [self._wake_r], timeout=1.0)
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        while self._wake_r.poll():
                            self._wake_r.recv_bytes()
                    except (EOFError, OSError):
                        pass
                    continue
                lane = watched[conn]
                with self._lock:
                    current = self._lanes[lane.index] is lane
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    self._retire(watched, retired, lane)
                    if current:
                        self._lane_crashed(lane, "died")
                    continue
                except Exception:
                    # A result that cannot be decoded parent-side.  The
                    # worker can no longer be trusted: stop listening to
                    # this pipe entirely and (if still current) replace
                    # the worker, blaming the job it was running.
                    self._retire(watched, retired, lane)
                    if current:
                        self._lane_crashed(
                            lane, "returned an undecodable result")
                    continue
                if msg[0] == "start":
                    _tag, job_id, _attempt = msg
                    with self._lock:
                        job = self._pending.get(job_id)
                        if job is not None and job.lane is lane:
                            job.started_at = time.monotonic()
                    continue
                _tag, job_id, report, error = msg
                with self._lock:
                    job = self._pending.pop(job_id, None)
                    if job is not None and job.started_at is not None:
                        elapsed = time.monotonic() - job.started_at
                        if self._service_samples == 0:
                            self._service_ewma = elapsed
                        else:
                            self._service_ewma += _EWMA_ALPHA * (
                                elapsed - self._service_ewma)
                        self._service_samples += 1
                if job is None:  # already settled (teardown, timeout); drop
                    continue
                if error is not None:
                    _settle(job.future, exception=_rebuild_exception(error))
                else:
                    _settle(job.future, result=report)

    @staticmethod
    def _retire(watched: dict, retired: set, lane: _Lane) -> None:
        """Stop listening to a lane's pipes and release their fds."""
        watched.pop(lane.result_conn, None)
        retired.add(lane.result_conn)
        try:
            lane.result_conn.close()
        except OSError:
            pass
        try:
            with lane.send_lock:
                lane.task_conn.close()
        except OSError:
            pass

    # -- supervision ---------------------------------------------------------

    def _lane_crashed(self, lane: _Lane, what: str, *,
                      timeout_job: int | None = None) -> None:
        """A lane's worker can no longer be trusted: respawn it in place
        and settle or resubmit the jobs it owned.

        Idempotent per lane generation (concurrent detection by the
        collector, the watchdog and a failed send collapses to one
        respawn).  A no-op during close, where worker EOF is the clean
        path.
        """
        settle: list[tuple[Future, BaseException]] = []
        resubmits: list[tuple[int, int]] = []
        with self._lock:
            if self._closed or self._lanes[lane.index] is not lane:
                return
            try:
                fresh = self._spawn_lane(lane.index, lane.generation + 1)
            except Exception:
                fresh = None
                self._broken = True
            else:
                self._lanes[lane.index] = fresh
                self._respawns += 1
            pid = lane.worker.pid
            label = f"worker {lane.index} (pid {pid}) {what}"
            owned = [(job_id, job) for job_id, job in self._pending.items()
                     if job.lane is lane]
            for job_id, job in owned:
                if job_id == timeout_job:
                    del self._pending[job_id]
                    self._timeouts += 1
                    settle.append((job.future, JobTimeout(
                        f"job exceeded its {job.timeout:g}s timeout; "
                        f"{label}")))
                elif fresh is None:
                    del self._pending[job_id]
                    settle.append((job.future, JobFailed(
                        "WorkerCrashed",
                        f"{label} and could not be respawned")))
                elif job.started_at is not None:
                    # The running job is the crash suspect: it spends one
                    # unit of its retry budget.
                    job.attempts += 1
                    if job.attempts > self._max_retries:
                        del self._pending[job_id]
                        self._poisoned += 1
                        settle.append((job.future, JobPoisoned(
                            f"job crashed its worker on {job.attempts} "
                            f"attempts ({label}); quarantined after "
                            f"max_retries={self._max_retries}")))
                    else:
                        job.lane = fresh
                        job.started_at = None
                        resubmits.append((job_id, job.attempts))
                else:
                    # A queued bystander: requeue without blame (bounded,
                    # so a spec that kills workers before its start
                    # heartbeat cannot respawn-loop forever).
                    job.requeues += 1
                    if job.requeues > self._requeue_cap:
                        del self._pending[job_id]
                        self._poisoned += 1
                        settle.append((job.future, JobPoisoned(
                            f"job was lost to {job.requeues} worker "
                            f"crashes without ever starting ({label}); "
                            "quarantined")))
                    else:
                        job.lane = fresh
                        job.started_at = None
                        resubmits.append((job_id, 0))
        # Outside the lock: reap the old process, wake the collector onto
        # the fresh result pipe, then settle/reschedule (future callbacks
        # and timer starts must not run under the pool lock).
        if lane.worker.is_alive():
            lane.worker.terminate()
            lane.worker.join(timeout=1)
            if lane.worker.is_alive():
                lane.worker.kill()
        self._wake()
        for future, exc in settle:
            _settle(future, exception=exc)
        for job_id, attempts in resubmits:
            delay = (self._retry_backoff * attempts * (0.5 + random.random())
                     if attempts else 0.0)
            timer = threading.Timer(delay, self._resubmit, args=(job_id,))
            timer.daemon = True
            timer.start()

    def _resubmit(self, job_id: int) -> None:
        """Re-send a crash-recovered job onto its lane's fresh worker."""
        with self._lock:
            job = self._pending.get(job_id)
            if job is None or self._closed:
                return  # settled (or torn down) in the meantime
            lane = self._lanes[job.lane.index]
            job.lane = lane
            self._retries += 1
        try:
            with lane.send_lock:
                lane.task_conn.send((job_id, job.spec, job.attempts))
        except (BrokenPipeError, OSError):
            self._lane_crashed(lane, "died")
            self._reclaim_if_stranded(job_id, lane)
        except Exception as exc:
            with self._lock:
                job = self._pending.pop(job_id, None)
            if job is not None:
                _settle(job.future, exception=job_failure(exc))

    def _reclaim_if_stranded(self, job_id: int, lane: _Lane) -> None:
        """Recover a job whose send raced a lane replacement.

        A send can hit a dead pipe after :meth:`_lane_crashed` already
        scanned the pending table (the job was registered against the
        lane too late to be adopted).  If the job is still bound to the
        stale lane, hand it to the retry machinery explicitly; otherwise
        the crash handler owns it and there is nothing to do.
        """
        stranded = None
        with self._lock:
            job = self._pending.get(job_id)
            if job is None or job.lane is not lane:
                return
            job.requeues += 1
            if job.requeues > self._requeue_cap or self._broken \
                    or self._closed:
                del self._pending[job_id]
                stranded = job
            else:
                job.lane = self._lanes[lane.index]
                job.started_at = None
        if stranded is not None:
            _settle(stranded.future, exception=JobFailed(
                "WorkerCrashed",
                f"worker {lane.index} kept dying before the job could be "
                "queued"))
            return
        timer = threading.Timer(self._retry_backoff, self._resubmit,
                                args=(job_id,))
        timer.daemon = True
        timer.start()

    # -- timeout watchdog ----------------------------------------------------

    def _watch(self) -> None:
        """Fail jobs that outlive their timeout (and kill their worker).

        Start times come from the workers' heartbeats, so a job queued
        behind a long batch is not charged for its wait.  The tick is
        coarse on idle pools and tight while timed jobs are in flight.
        """
        tick = 0.2
        while not self._stop.wait(tick):
            now = time.monotonic()
            expired = []
            with self._lock:
                if self._closed:
                    return
                timed = False
                for job_id, job in self._pending.items():
                    if job.timeout is None:
                        continue
                    timed = True
                    if (job.started_at is not None
                            and now - job.started_at >= job.timeout):
                        expired.append((job_id, job))
            for job_id, job in expired:
                self._timeout_job(job_id, job)
            tick = 0.02 if timed else 0.2

    def _timeout_job(self, job_id: int, job: _Job) -> None:
        lane = job.lane
        with self._lock:
            # Re-check under the lock: the job may have finished, been
            # requeued, or its lane already replaced since the scan.
            if (self._pending.get(job_id) is not job
                    or job.started_at is None
                    or self._lanes[lane.index] is not lane):
                return
        self._lane_crashed(lane, "was killed by the timeout watchdog",
                           timeout_job=job_id)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain queued jobs, then stop the workers; idempotent.

        Jobs awaiting a crash-recovery resubmit when close is called are
        failed with :class:`PoolUnavailable` rather than replayed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes)
        self._stop.set()
        # Sentinels queue behind any outstanding jobs: workers drain their
        # pipes, post the results, then exit; the collector resolves every
        # posted result before the pipe's EOF retires it.  The joins are
        # unbounded on purpose — in-flight simulations may legitimately run
        # for minutes, and a bounded join would spuriously fail their
        # futures (a dead worker's join returns immediately).
        for lane in lanes:
            try:
                with lane.send_lock:
                    lane.task_conn.send(None)
            except (BrokenPipeError, OSError):
                pass  # that worker is already gone
        for lane in lanes:
            lane.worker.join()
        self._wake()
        self._collector.join(timeout=5)
        self._fail_remaining("worker pool closed")
        atexit.unregister(self._close_at_exit)

    def abort(self, reason: str = "worker pool aborted") -> None:
        """Abortive teardown: terminate workers, never block on jobs.

        The drop-everything counterpart of :meth:`close` — in-flight and
        queued futures fail with :class:`PoolUnavailable` instead of
        being drained.  Used at interpreter exit and by ``pimsim
        serve``'s expired drain deadline, where waiting on a wedged job
        would defeat the deadline.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            lanes = list(self._lanes)
        self._stop.set()
        for lane in lanes:
            if lane.worker.is_alive():
                lane.worker.terminate()
        for lane in lanes:
            lane.worker.join(timeout=1)
            if lane.worker.is_alive():  # shrugged off SIGTERM: escalate
                lane.worker.kill()
                lane.worker.join(timeout=1)
        self._wake()
        self._collector.join(timeout=1)
        self._fail_remaining(reason)
        atexit.unregister(self._close_at_exit)

    def _close_at_exit(self) -> None:
        self.abort("worker pool torn down at interpreter exit")

    def close_if_idle(self) -> bool:
        """Tear the pool down only if no job is outstanding.

        Used by the engine's garbage-collection finalizer: an Engine
        dropped without ``close()`` must not pin its idle workers for the
        rest of the process, but a pool with in-flight jobs (whose
        futures may outlive the engine) is left for atexit.
        """
        with self._lock:
            if self._pending:
                return False
        self._close_at_exit()
        return True

    def _fail_remaining(self, reason: str) -> None:
        with self._lock:
            pending = [job.future for job in self._pending.values()]
            self._pending.clear()
        for future in pending:  # only a crashed worker leaves any behind
            _settle(future, exception=PoolUnavailable(reason))
