"""Decode sessions: compile-once, step-many autoregressive serving.

A :class:`DecodeSession` drives one autoregressive request over the
engine: the network (which must contain ``kv_cache`` nodes) is compiled
**once** into an extent-parameterized
:class:`~repro.compiler.StepTemplate`, then every decode step resolves
and simulates the program at its own KV extent — zero compiler work per
step after the first (pinned by the engine's ``template_hits`` /
``template_misses`` counters).

:func:`aggregate_step_reports` folds per-step reports into one
:class:`~repro.runner.results.SimReport` whose ``meta["decode"]`` block
carries the per-step cycle counts and latencies —
:meth:`Engine.serve_mix <repro.engine.Engine.serve_mix>` and the
``pimsim decode`` CLI build their latency distributions from it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..arch import run_program
from ..config import ArchConfig
from ..graph import Graph, kv_extent
from ..runner.results import SimReport
from .spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .core import Engine

__all__ = ["DecodeSession", "aggregate_step_reports"]


def aggregate_step_reports(reports: list[SimReport], *,
                           kv_tokens: int) -> SimReport:
    """Fold per-step decode reports into one request-level report.

    Cycles, energy, per-layer busy time, NoC traffic and instruction
    counts sum over the steps; placement-shaped fields (cores, per-core
    stats) come from the last step.  ``meta["decode"]`` records the step
    count, the starting KV extent and the per-step cycle/second series
    the serving-mix percentiles are computed from.
    """
    if not reports:
        raise ValueError("no step reports to aggregate")
    last = reports[-1]
    energy: dict[str, float] = {}
    layer_busy: dict[str, dict[str, int]] = {}
    noc: dict[str, int] = {}
    for rep in reports:
        for key, value in rep.energy_pj.items():
            energy[key] = energy.get(key, 0.0) + value
        for layer, busy in rep.layer_busy.items():
            units = layer_busy.setdefault(layer, {})
            for unit, cycles in busy.items():
                units[unit] = units.get(unit, 0) + cycles
        for key, value in rep.noc.items():
            if isinstance(value, (int, float)):
                noc[key] = noc.get(key, 0) + value
            else:  # non-additive diagnostics (hottest links): last step's
                noc[key] = value
    meta = dict(last.meta)
    if last.fidelity != "cycle":  # fast-only counters sum over the steps
        meta["analytic_runs"] = sum(rep.analytic_runs for rep in reports)
        meta["fallback_events"] = sum(rep.fallback_events for rep in reports)
    meta["decode"] = {
        "steps": len(reports),
        "kv_tokens": kv_tokens,
        "step_cycles": [rep.cycles for rep in reports],
        "step_seconds": [rep.seconds for rep in reports],
    }
    return SimReport(
        network=last.network,
        config_name=last.config_name,
        mapping=last.mapping,
        cycles=sum(rep.cycles for rep in reports),
        seconds=sum(rep.seconds for rep in reports),
        energy_pj=energy,
        layer_busy=layer_busy,
        per_core=last.per_core,
        noc=noc,
        instructions=sum(rep.instructions for rep in reports),
        cores_used=last.cores_used,
        meta=meta,
        vector_layer_cycles=last.vector_layer_cycles,
        fidelity=last.fidelity,
    )


class DecodeSession:
    """One autoregressive request: a warm template stepped over a
    growing KV cache.

        >>> with Engine(small_chip()) as engine:
        ...     session = engine.decode_session("gpt_tiny")
        ...     first = session.step()          # extent = built-in tokens
        ...     more = session.run(31)          # 31 further steps, 1 report

    The session owns only cursor state (the next step's extent and the
    step history); the compiled template lives in — and is shared
    through — the engine's template cache, so two sessions over the same
    network and configuration compile nothing twice.
    """

    def __init__(self, engine: "Engine", network: str | Graph,
                 config: ArchConfig | None = None, *,
                 kv_tokens: int | None = None,
                 mapping: str | None = None,
                 rob_size: int | None = None,
                 imagenet: bool = False,
                 attention_shards: int | None = None) -> None:
        self.engine = engine
        self.graph = engine.resolve_network(network, imagenet=imagenet)
        ext = kv_extent(self.graph)
        if ext is None:
            raise ValueError(
                "DecodeSession needs a network with kv_cache nodes "
                "(see repro.models.DECODE_MODELS)")
        spec = JobSpec(network, config, mapping=mapping, rob_size=rob_size,
                       imagenet=imagenet, attention_shards=attention_shards)
        self.config = engine._job_config(spec)
        self.template = engine.step_template(
            self.graph, config, mapping=mapping, imagenet=imagenet,
            attention_shards=attention_shards)
        #: KV extent the *next* step runs at.
        self.extent = kv_tokens if kv_tokens is not None else ext[0]
        if not 1 <= self.extent <= self.template.capacity:
            raise ValueError(
                f"kv_tokens {self.extent} outside [1, "
                f"{self.template.capacity}]")
        self.steps_run = 0
        #: per-step (extent, cycles) history.
        self.history: list[tuple[int, int]] = []

    @property
    def remaining_capacity(self) -> int:
        """Steps left before the KV cache is full."""
        return self.template.capacity - self.extent + 1

    def step(self) -> SimReport:
        """Simulate one decode step at the current extent, then grow."""
        chip = self.template.resolve(self.extent)
        raw = run_program(chip, self.config)
        report = SimReport.from_raw(raw, self.config,
                                    chip.total_instructions)
        report.meta["kv_extent"] = self.extent
        self.history.append((self.extent, report.cycles))
        self.extent += 1
        self.steps_run += 1
        return report

    def run(self, steps: int) -> SimReport:
        """Run ``steps`` decode steps; one aggregated report."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        start = self.extent
        reports = [self.step() for _ in range(steps)]
        return aggregate_step_reports(reports, kv_tokens=start)
