"""Engine/session layer: persistent, job-oriented access to the simulator.

:class:`Engine` holds warm artifacts (model cache, compile cache, worker
pool) across requests; :class:`JobSpec` is the unit of work and is JSON
round-trippable, so an experiment is a file (``pimsim batch``).  The
legacy one-shot functions in :mod:`repro.runner` are shims over
:func:`default_engine`.
"""

# Import order matters: `core` pulls in `repro.runner`, whose sweep module
# imports JobSpec back from this package — bind spec/pool names first.
from .spec import JobSpec, load_specs, save_specs
from .pool import JobFailed, WorkerPool
from .core import Engine

__all__ = [
    "Engine",
    "JobSpec",
    "JobFailed",
    "WorkerPool",
    "load_specs",
    "save_specs",
    "default_engine",
    "resolve_engine",
]

_default: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine behind the legacy one-shot functions.

    Wired to the historical global caches
    (:data:`repro.compiler.compile_cache` and
    ``repro.runner.api._model_cache``), so the pre-engine surface —
    including its process-global cache counters — behaves bit-identically.
    """
    global _default
    if _default is None:
        from ..compiler import compile_cache
        from ..runner import api
        _default = Engine(compile_cache=compile_cache,
                          model_cache=api._model_cache)
    return _default


def resolve_engine(engine: Engine | None = None) -> Engine:
    """``engine`` if given, else the process-wide default engine.

    The one fallback idiom shared by every legacy shim that grew an
    ``engine=`` parameter (``run_sweep``, the figure sweeps, ``explore``).
    """
    return engine if engine is not None else default_engine()
