"""Engine/session layer: persistent, job-oriented access to the simulator.

:class:`Engine` holds warm artifacts (model cache, compile cache, worker
pool) across requests; :class:`JobSpec` is the unit of work and is JSON
round-trippable, so an experiment is a file (``pimsim batch``).  The
legacy one-shot functions in :mod:`repro.runner` are shims over
:func:`default_engine`.

Fault tolerance
---------------

The worker pool is **supervised**: a crashed worker is respawned in
place (same lane, fresh pipes) instead of condemning the pool, so
deterministic dealing and every surviving worker's warm compile cache
outlive the crash.  The semantics, end to end:

* **Retries.**  Jobs owned by a crashed worker are transparently
  resubmitted, up to ``Engine(max_retries=...)`` (default 1, jittered
  backoff) for the job the worker was *running* — the crash suspect.  A
  job that keeps killing its workers is quarantined and surfaces as a
  typed :class:`JobPoisoned` failure.  Exceptions **raised by** a job
  (a bad spec, a compile error) are results: shipped back, re-raised or
  captured with their original type, and never retried.
* **Timeouts.**  ``JobSpec.timeout`` (or ``Engine(job_timeout=...)``)
  bounds a pooled job's wall-clock run; the watchdog kills and respawns
  the worker and the job fails as :class:`JobTimeout`.
* **Telemetry.**  :meth:`Engine.pool_stats` exposes the respawn / retry
  / timeout / poisoned counters next to :meth:`Engine.compile_stats`.
* **Warm growth.**  Asking for more workers than the live pool has
  spawns only the delta (:meth:`WorkerPool.grow`) — no cold restart.
* **Batch resume.**  ``pimsim batch --output run.jsonl`` journals each
  completion as it lands; ``--resume`` replays only the indices the
  journal does not cover, so a crashed 1000-job sweep recomputes just
  what is missing.

Retries, timeouts and chaos directives (:mod:`repro.engine.faults`, the
deterministic fault-injection harness that pins all of the above in
tests) apply to pooled execution only; in-process runs (``workers<=1``)
execute the spec directly and never evaluate faults.

Decode & serving mix
--------------------

Autoregressive decode re-runs one network at a growing KV extent.  The
engine compiles such a network (``kv_cache`` nodes; see
:data:`repro.models.DECODE_MODELS`) **once** into an
extent-parameterized :class:`~repro.compiler.StepTemplate` and replays
it per step — steps 2..N do zero compiler work, pinned by the
``template_hits`` / ``template_misses`` counters in
:meth:`Engine.compile_stats`, and every resolved step is field-for-field
identical to a from-scratch compile at that extent.  Three entry points:

* ``JobSpec(..., decode_steps=N, kv_tokens=T)`` — :meth:`Engine.run`
  aggregates the N steps into one report whose ``meta["decode"]``
  carries the per-step cycle/latency series.
* :meth:`Engine.decode_session` — a :class:`DecodeSession` cursor for
  step-at-a-time driving (``session.step()`` / ``session.run(n)``).
* :meth:`Engine.serve_mix` — a continuous-batching serving mix: decode
  specs expand into per-step unit jobs, interleaved round-robin with
  prefill requests over the warm pool, returning a
  :class:`~repro.runner.results.MixReport` with p50/p99 per-step
  latency and TPOT.

CLI: ``pimsim decode gpt_tiny --steps 32`` and ``pimsim decode --mix
specs.json``; see ``examples/decode_serving.py`` for the library idiom.

Fidelity
--------

Every job runs at one of two execution fidelities (``repro.config.
FIDELITIES``), selected by a single knob threaded through the whole
surface:

* ``"cycle"`` (default) — the bit-exact event-driven model.  Golden
  traces, the determinism gate and every published number pin this mode.
* ``"fast"`` — the batched analytic executor (``repro.arch.fast``):
  straight-line instruction runs advance in one arithmetic step each,
  entering the event kernel only at transfer/synchronization boundaries
  (cross-core flows, NoC and global memory stay event-driven, so
  contention and backpressure remain modeled).  Contract: total cycles
  within 2% of cycle mode across the model zoo (CI gate
  ``tools/check_fidelity.py``; currently exact on every zoo model),
  several times faster on compute-heavy networks.  Cores the analysis
  cannot cover (branchy programs, shared-ADC arbitration, tracing) fall
  back to the cycle-accurate core inside the same chip.

Precedence mirrors ``timeout``: ``JobSpec.fidelity`` beats
``Engine(fidelity=...)`` beats the configuration's ``sim.fidelity``.
Reports carry ``report.fidelity`` plus (fast mode only) the
``analytic_runs`` / ``fallback_events`` counters, through batch JSONL
and the HTTP service alike.  CLI: ``--fidelity fast`` on ``pimsim
run`` / ``batch`` / ``decode`` / ``serve``.

Serving
-------

``pimsim serve --store jobs.jsonl`` (:mod:`repro.serve`) turns the
engine into a long-lived HTTP job server: specs are content-addressed
(:meth:`JobSpec.job_id`) into a crash-safe append-only journal, so a
SIGKILL'd server restarts without losing a settled result or
re-running a finished job; interrupted jobs re-enqueue with restart
blame (the process-level mirror of the pool's poison accounting).
Each distinct configuration gets its own Engine session (keyed by
content hash), admission is bounded by backlog with ``Retry-After``
derived from :meth:`Engine.pool_stats`'s service-time EWMA and
occupancy, and SIGTERM drains gracefully: admissions stop, running
jobs finish to a deadline, the rest is re-journaled as next start's
work (:meth:`Engine.terminate` aborts the pool without draining).
"""

# Import order matters: `core` pulls in `repro.runner`, whose sweep module
# imports JobSpec back from this package — bind spec/pool names first.
from .spec import JobSpec, load_specs, save_specs
from .pool import (
    JobFailed,
    JobPoisoned,
    JobTimeout,
    PoolUnavailable,
    WorkerPool,
)
from .decode import DecodeSession
from .core import Engine

__all__ = [
    "Engine",
    "DecodeSession",
    "JobSpec",
    "JobFailed",
    "JobPoisoned",
    "JobTimeout",
    "PoolUnavailable",
    "WorkerPool",
    "load_specs",
    "save_specs",
    "default_engine",
    "resolve_engine",
]

_default: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine behind the legacy one-shot functions.

    Wired to the historical global caches
    (:data:`repro.compiler.compile_cache` and
    ``repro.runner.api._model_cache``), so the pre-engine surface —
    including its process-global cache counters — behaves bit-identically.
    """
    global _default
    if _default is None:
        from ..compiler import compile_cache
        from ..runner import api
        _default = Engine(compile_cache=compile_cache,
                          model_cache=api._model_cache)
    return _default


def resolve_engine(engine: Engine | None = None) -> Engine:
    """``engine`` if given, else the process-wide default engine.

    The one fallback idiom shared by every legacy shim that grew an
    ``engine=`` parameter (``run_sweep``, the figure sweeps, ``explore``).
    """
    return engine if engine is not None else default_engine()
