"""Unit tests for fifos, rendezvous channels, mutexes and resources."""

import pytest

from repro.sim import ChannelError, Fifo, Mutex, Rendezvous, Resource, Simulator


class TestFifo:
    def test_put_get_roundtrip(self):
        sim = Simulator()
        fifo = Fifo(sim, 4)
        out = []

        def producer():
            for i in range(3):
                yield from fifo.put(i)

        def consumer():
            for _ in range(3):
                item = yield from fifo.get()
                out.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert out == [0, 1, 2]

    def test_put_blocks_when_full(self):
        sim = Simulator()
        fifo = Fifo(sim, 2)
        timeline = []

        def producer():
            for i in range(4):
                yield from fifo.put(i)
                timeline.append(("put", i, sim.now))

        def consumer():
            yield 10
            for _ in range(4):
                item = yield from fifo.get()
                timeline.append(("got", item, sim.now))

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        puts = [(i, t) for op, i, t in timeline if op == "put"]
        # first two puts immediate, the rest gated by the consumer at t=10
        assert puts[0][1] == 0 and puts[1][1] == 0
        assert puts[2][1] >= 10 and puts[3][1] >= 10

    def test_get_blocks_until_data(self):
        sim = Simulator()
        fifo = Fifo(sim)
        got_at = []

        def consumer():
            yield from fifo.get()
            got_at.append(sim.now)

        def producer():
            yield 6
            yield from fifo.put("x")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got_at == [6]

    def test_unbounded_fifo_never_blocks_put(self):
        sim = Simulator()
        fifo = Fifo(sim, None)

        def producer():
            for i in range(1000):
                yield from fifo.put(i)

        sim.spawn(producer())
        sim.run()
        assert len(fifo) == 1000
        assert not fifo.full

    def test_try_put_try_get(self):
        sim = Simulator()
        fifo = Fifo(sim, 1)
        assert fifo.try_put("a")
        assert not fifo.try_put("b")
        ok, item = fifo.try_get()
        assert ok and item == "a"
        ok, item = fifo.try_get()
        assert not ok and item is None

    def test_peek(self):
        sim = Simulator()
        fifo = Fifo(sim, 2)
        fifo.try_put(1)
        fifo.try_put(2)
        assert fifo.peek() == 1
        assert len(fifo) == 2

    def test_peek_empty_raises(self):
        with pytest.raises(ChannelError):
            Fifo(Simulator(), 2).peek()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Fifo(Simulator(), 0)

    def test_fifo_order_preserved_under_contention(self):
        sim = Simulator()
        fifo = Fifo(sim, 3)
        out = []

        def producer():
            for i in range(20):
                yield from fifo.put(i)
                yield 1

        def consumer():
            for _ in range(20):
                item = yield from fifo.get()
                out.append(item)
                yield 3

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert out == list(range(20))


class TestRendezvous:
    def test_matched_put_get(self):
        sim = Simulator()
        rv = Rendezvous(sim)
        out = []

        def sender():
            yield 4
            yield from rv.put("tag", "payload")
            out.append(("sent", sim.now))

        def receiver():
            item = yield from rv.get("tag")
            out.append(("recv", item, sim.now))

        sim.spawn(sender())
        sim.spawn(receiver())
        sim.run()
        assert ("recv", "payload", 4) in out
        assert ("sent", 4) in out

    def test_put_blocks_until_get(self):
        sim = Simulator()
        rv = Rendezvous(sim)
        sent_at = []

        def sender():
            yield from rv.put(1, "x")
            sent_at.append(sim.now)

        def receiver():
            yield 9
            yield from rv.get(1)

        sim.spawn(sender())
        sim.spawn(receiver())
        sim.run()
        assert sent_at == [9]

    def test_different_tags_do_not_match(self):
        sim = Simulator()
        rv = Rendezvous(sim)

        def sender():
            yield from rv.put("a", 1)

        def receiver():
            yield from rv.get("b")

        sim.spawn(sender(), "sender")
        sim.spawn(receiver(), "receiver")
        with pytest.raises(Exception):  # deadlock: tags never match
            sim.run()
        assert rv.pending_sends == 1
        assert rv.pending_receives == 1

    def test_multiple_messages_same_tag_fifo(self):
        sim = Simulator()
        rv = Rendezvous(sim)
        out = []

        def sender():
            for i in range(3):
                yield from rv.put("t", i)

        def receiver():
            for _ in range(3):
                item = yield from rv.get("t")
                out.append(item)

        sim.spawn(sender())
        sim.spawn(receiver())
        sim.run()
        assert out == [0, 1, 2]


class TestMutex:
    def test_exclusive_ownership(self):
        sim = Simulator()
        mtx = Mutex(sim)
        holds = []

        def worker(tag, hold):
            yield from mtx.acquire()
            holds.append((tag, "in", sim.now))
            yield hold
            holds.append((tag, "out", sim.now))
            mtx.release()

        sim.spawn(worker("a", 5))
        sim.spawn(worker("b", 5))
        sim.run()
        # b enters only after a leaves
        a_out = next(t for tag, io, t in holds if tag == "a" and io == "out")
        b_in = next(t for tag, io, t in holds if tag == "b" and io == "in")
        assert b_in >= a_out

    def test_release_unlocked_raises(self):
        with pytest.raises(ChannelError):
            Mutex(Simulator()).release()

    def test_fifo_granting(self):
        sim = Simulator()
        mtx = Mutex(sim)
        order = []

        def worker(tag):
            yield from mtx.acquire()
            order.append(tag)
            yield 2
            mtx.release()

        for tag in range(5):
            sim.spawn(worker(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestResource:
    def test_counted_slots(self):
        sim = Simulator()
        res = Resource(sim, 2)
        active = []
        peak = []

        def worker():
            yield from res.acquire()
            active.append(1)
            peak.append(len(active))
            yield 5
            active.pop()
            res.release()

        for _ in range(6):
            sim.spawn(worker())
        sim.run()
        assert max(peak) == 2

    def test_available_accounting(self):
        sim = Simulator()
        res = Resource(sim, 3)
        assert res.available == 3

        def worker():
            yield from res.acquire()
            yield 1
            res.release()

        sim.spawn(worker())
        sim.run()
        assert res.available == 3
        assert res.in_use == 0

    def test_release_idle_raises(self):
        with pytest.raises(ChannelError):
            Resource(Simulator(), 1).release()

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)


class TestFifoEdgeNotifications:
    """The fifo only schedules wake-ups on empty<->nonempty / full<->notfull
    edges; steady-state streaming must generate no kernel callbacks."""

    def test_nonempty_put_schedules_nothing(self):
        sim = Simulator()
        fifo = Fifo(sim)
        assert fifo.try_put(1)      # empty -> nonempty edge notifies
        base = sim.pending
        assert fifo.try_put(2)      # no edge: no new wheel entry
        assert fifo.try_put(3)
        assert sim.pending == base

    def test_get_above_full_boundary_schedules_nothing(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=4)
        for i in range(3):          # never reaches full
            fifo.try_put(i)
        sim.run(detect_deadlock=False)  # drain the one not_empty fire
        base = sim.pending
        assert fifo.try_get() == (True, 0)
        assert fifo.try_get() == (True, 1)
        assert sim.pending == base  # full->notfull edge never crossed

    def test_full_edge_wakes_blocked_producers(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=1, name="edge")
        order = []

        def producer(tag):
            yield from fifo.put(tag)
            order.append(("put", tag))

        def consumer():
            yield 5
            for _ in range(3):
                item = yield from fifo.get()
                order.append(("got", item))
                yield 1

        sim.spawn(producer("a"))
        sim.spawn(producer("b"))
        sim.spawn(producer("c"))
        sim.spawn(consumer())
        sim.run()
        assert order == [("put", "a"), ("got", "a"), ("put", "b"),
                         ("got", "b"), ("put", "c"), ("got", "c")]

    def test_empty_edge_wakes_blocked_consumers(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=2)
        got = []

        def consumer(tag):
            item = yield from fifo.get()
            got.append((tag, item))

        def producer():
            yield 3
            yield from fifo.put("x")
            yield 3
            yield from fifo.put("y")

        sim.spawn(consumer(0))
        sim.spawn(consumer(1))
        sim.spawn(producer())
        sim.run()
        assert got == [(0, "x"), (1, "y")]

    def test_streaming_throughput_steady_state(self):
        """Unbounded fifo with an always-ahead producer: the consumer must
        never deadlock even though most puts schedule no notification."""
        sim = Simulator()
        fifo = Fifo(sim)
        received = []

        def producer():
            for i in range(50):
                yield from fifo.put(i)

        def consumer():
            for _ in range(50):
                item = yield from fifo.get()
                received.append(item)
                yield 1

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == list(range(50))
