"""Tests for the sweep executor and the compilation cache."""


from repro import SweepJob, run_sweep, simulate, sweep
from repro.compiler import CompileCache, compile_cache, config_fingerprint
from repro.config import small_chip, tiny_chip
from repro.runner import compare_mappings, compare_with_baseline, sweep_rob
from tests.conftest import build_chain_net


def _fingerprint_reports(reports):
    return [(r.cycles, r.total_energy_pj, r.mapping) for r in reports]


class TestRunSweep:
    def test_serial_order_and_tags(self):
        config = tiny_chip()
        jobs = [SweepJob(build_chain_net(), config, rob_size=size, tag=size)
                for size in (1, 4)]
        reports = run_sweep(jobs, workers=1)
        assert [r.meta["sweep_tag"] for r in reports] == [1, 4]
        assert reports[0].cycles >= reports[1].cycles

    def test_parallel_matches_serial(self):
        config = tiny_chip()
        jobs = [SweepJob(build_chain_net(), config, rob_size=size)
                for size in (1, 2, 4)]
        serial = run_sweep(jobs, workers=1)
        parallel = run_sweep(jobs, workers=2)
        assert _fingerprint_reports(serial) == _fingerprint_reports(parallel)

    def test_parallel_accepts_graph_and_name(self):
        config = small_chip()
        jobs = [SweepJob(build_chain_net(), config), SweepJob("vgg8", config)]
        reports = run_sweep(jobs, workers=2)
        assert [r.network for r in reports] == ["chain", "vgg8"]

    def test_workers_none_uses_cpu_count(self):
        config = tiny_chip()
        reports = run_sweep([SweepJob(build_chain_net(), config)], workers=None)
        assert len(reports) == 1


class TestSweepCrossProduct:
    def test_config_major_order(self):
        small, tiny = small_chip(), tiny_chip()
        reports = sweep([tiny, small], build_chain_net())
        assert [r.config_name for r in reports] == [tiny.name, small.name]

    def test_overrides_forwarded(self):
        reports = sweep(tiny_chip(), build_chain_net(),
                        mapping="utilization_first")
        assert reports[0].mapping == "utilization_first"


class TestFigureSweepsParallel:
    def test_sweep_rob_parallel_identical(self):
        net = build_chain_net()
        serial = sweep_rob(net, tiny_chip(), sizes=(1, 4), workers=1)
        parallel = sweep_rob(net, tiny_chip(), sizes=(1, 4), workers=2)
        assert ({k: v.cycles for k, v in serial.reports.items()}
                == {k: v.cycles for k, v in parallel.reports.items()})
        assert ({k: v.total_energy_pj for k, v in serial.reports.items()}
                == {k: v.total_energy_pj for k, v in parallel.reports.items()})

    def test_compare_mappings_parallel_identical(self):
        net = build_chain_net()
        serial = compare_mappings(net, tiny_chip(), workers=1)
        parallel = compare_mappings(net, tiny_chip(), workers=2)
        assert serial.utilization.cycles == parallel.utilization.cycles
        assert serial.performance.cycles == parallel.performance.cycles
        assert serial.latency_ratio == parallel.latency_ratio

    def test_compare_with_baseline_workers(self):
        cmp = compare_with_baseline(build_chain_net(), tiny_chip(), workers=2)
        assert cmp.ours.cycles > 0 and cmp.baseline_cycles > 0


class TestCompileCache:
    def test_repeated_simulate_hits(self):
        cache = compile_cache
        config = tiny_chip()
        net = build_chain_net()
        first = simulate(net, config)
        hits0, misses0 = first.compile_cache_hits, first.compile_cache_misses
        second = simulate(net, config)
        assert second.compile_cache_hits == hits0 + 1
        assert second.compile_cache_misses == misses0
        assert second.cycles == first.cycles
        assert len(cache) >= 1

    def test_rob_size_shares_compilation(self):
        config = tiny_chip()
        net = build_chain_net()
        baseline = simulate(net, config, rob_size=1)
        swept = simulate(net, config, rob_size=8)
        assert swept.compile_cache_misses == baseline.compile_cache_misses
        assert swept.compile_cache_hits == baseline.compile_cache_hits + 1

    def test_mapping_change_recompiles(self):
        config = tiny_chip()
        # Graphs are content-addressed into the compile cache, so this
        # net must differ from every other test's chain net or an earlier
        # test's compilation would satisfy the miss this asserts on.
        net = build_chain_net(channels=24)
        perf = simulate(net, config, mapping="performance_first")
        util = simulate(net, config, mapping="utilization_first")
        assert util.compile_cache_misses == perf.compile_cache_misses + 1

    def test_cache_disabled_matches(self):
        config = tiny_chip()
        net = build_chain_net()
        cached = simulate(net, config)
        uncached = simulate(net, config, compile_cache=False)
        assert uncached.cycles == cached.cycles
        assert uncached.total_energy_pj == cached.total_energy_pj
        assert "compile_cache_hits" not in uncached.meta

    def test_fingerprint_normalizes_rob_and_sim(self):
        config = tiny_chip()
        assert (config_fingerprint(config)
                == config_fingerprint(config.with_rob_size(12)))
        assert (config_fingerprint(config)
                != config_fingerprint(config.with_mapping("utilization_first")))

    def test_eviction_bounds_entries(self):
        cache = CompileCache(maxsize=1)
        net = build_chain_net()
        cache.get_or_compile(net, tiny_chip())
        cache.get_or_compile(net, tiny_chip().with_mapping("utilization_first"))
        assert len(cache) == 1
        assert cache.stats()["misses"] == 2

    def test_distinct_graphs_do_not_collide(self):
        cache = CompileCache()
        net_a = build_chain_net(channels=8)
        net_b = build_chain_net(channels=16)
        ra = cache.get_or_compile(net_a, tiny_chip())
        rb = cache.get_or_compile(net_b, tiny_chip())
        assert ra is not rb
        assert cache.stats()["misses"] == 2
        assert cache.get_or_compile(net_a, tiny_chip()) is ra
