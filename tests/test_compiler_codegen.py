"""Tests for local-memory allocation and code generation."""

import dataclasses

import pytest

from repro.compiler import CompileError, compile_network
from repro.compiler.allocator import AllocatorSet, CoreAllocator
from repro.isa import MvmInst, ScalarInst, TransferInst, VectorInst
from repro.models import build_model


class TestAllocator:
    def test_regions_do_not_overlap(self):
        alloc = CoreAllocator(0, 1000)
        a = alloc.alloc("a", 100, 2)
        b = alloc.alloc("b", 50, 4)
        assert a.end <= b.base

    def test_ring_slot_addressing(self):
        alloc = CoreAllocator(0, 1000)
        r = alloc.alloc("ring", 100, 4)
        assert r.slot(0) == r.base
        assert r.slot(5) == r.base + 100  # 5 % 4 == 1

    def test_range_clamps_to_slot(self):
        alloc = CoreAllocator(0, 1000)
        r = alloc.alloc("ring", 100, 2)
        lo, hi = r.range_of(0, bytes_used=500)
        assert hi - lo == 100

    def test_over_subscription_lists_regions(self):
        alloc = CoreAllocator(3, 150)
        alloc.alloc("first", 100, 1)
        with pytest.raises(CompileError) as err:
            alloc.alloc("second", 100, 1)
        assert "first" in str(err.value)
        assert "core 3" in str(err.value)

    def test_duplicate_name_rejected(self):
        alloc = CoreAllocator(0, 1000)
        alloc.alloc("x", 10, 1)
        with pytest.raises(CompileError, match="duplicate"):
            alloc.alloc("x", 10, 1)

    def test_bad_sizes_rejected(self):
        alloc = CoreAllocator(0, 1000)
        with pytest.raises(CompileError):
            alloc.alloc("x", 0, 1)
        with pytest.raises(CompileError):
            alloc.alloc("y", 8, 0)

    def test_allocator_set_usage(self):
        allocs = AllocatorSet(1000)
        allocs.core(0).alloc("a", 10, 1)
        allocs.core(2).alloc("b", 30, 1)
        assert allocs.usage() == {0: 10, 2: 30}


def _compiled(net, cfg):
    return compile_network(net, cfg)


class TestCodegenStructure:
    def test_programs_only_on_participating_cores(self, chain_net, small_cfg):
        result = _compiled(chain_net, small_cfg)
        for core, program in result.program.programs.items():
            assert len(program) > 0
            assert 0 <= core < small_cfg.chip.n_cores

    def test_every_program_sealed_with_halt(self, chain_net, small_cfg):
        result = _compiled(chain_net, small_cfg)
        for program in result.program.programs.values():
            assert program.sealed
            last = program.instructions[-1]
            assert isinstance(last, ScalarInst) and last.op == "HALT"

    def test_matched_sends_and_recvs(self, residual_net, small_cfg):
        chip = _compiled(residual_net, small_cfg).program
        sends = chip.sends_by_flow()
        recvs = chip.recvs_by_flow()
        assert set(sends) == set(recvs)
        for flow_id in sends:
            assert len(sends[flow_id]) == len(recvs[flow_id])

    def test_mvm_instructions_reference_defined_groups(self, chain_net,
                                                       small_cfg):
        chip = _compiled(chain_net, small_cfg).program
        for program in chip.programs.values():
            for inst in program:
                if isinstance(inst, MvmInst):
                    program.groups.get(inst.group)  # raises if undefined

    def test_instruction_layers_tagged(self, chain_net, small_cfg):
        chip = _compiled(chain_net, small_cfg).program
        for program in chip.programs.values():
            for inst in program:
                if not (isinstance(inst, ScalarInst) and inst.op == "HALT"):
                    assert inst.layer

    def test_local_memory_within_capacity(self, branch_net, small_cfg):
        chip = _compiled(branch_net, small_cfg).program
        for program in chip.programs.values():
            assert program.local_memory_used <= small_cfg.core.local_memory_bytes

    def test_first_layer_loads_from_global_memory(self, chain_net, small_cfg):
        chip = _compiled(chain_net, small_cfg).program
        loads = [inst for p in chip.programs.values() for inst in p
                 if isinstance(inst, TransferInst) and inst.op == "LOAD"]
        assert loads
        assert all(inst.layer == "conv1" for inst in loads)

    def test_network_output_stored(self, chain_net, small_cfg):
        chip = _compiled(chain_net, small_cfg).program
        stores = [inst for p in chip.programs.values() for inst in p
                  if isinstance(inst, TransferInst) and inst.op == "STORE"]
        assert stores
        assert all(inst.layer == "fc1" for inst in stores)

    def test_flow_windows_cover_skew(self, residual_net, small_cfg):
        chip = _compiled(residual_net, small_cfg).program
        for info in chip.flows.values():
            assert info.window >= 2 or info.n_messages == 1

    def test_mvm_counts_cover_all_pixels(self, chain_net, small_cfg):
        """Summed MVM input vectors = out_pixels x copies-independent work
        x row blocks (every pixel passes every row block exactly once)."""
        result = _compiled(chain_net, small_cfg)
        chip = result.program
        pipe = result.pipeline
        for name, plan in result.placement.plans.items():
            stage = pipe.stage(name)
            tiling = plan.tiling
            expected = stage.out_pixels * stage.compute_per_pixel \
                * tiling.row_blocks
            counted = 0
            for core in plan.cores:
                table = chip.programs[core].groups
                for inst in chip.programs[core]:
                    if isinstance(inst, MvmInst) \
                            and table.get(inst.group).layer == name:
                        # one instruction drives its group through `count`
                        # vectors; groups may span several column blocks,
                        # but each row block is a distinct group.
                        counted += inst.count
            assert counted == expected, name

    def test_utilization_first_emits_partial_flows(self, small_cfg):
        """resnet18 packed tightly must gather partials across cores."""
        cfg = small_cfg.with_mapping("utilization_first")
        chip = compile_network(build_model("resnet18"), cfg).program
        partial_flows = [f for f in chip.flows.values()
                         if f.bytes_per_message >= 4]
        assert len(chip.flows) > 0
        assert partial_flows

    def test_deterministic_compilation(self, residual_net, small_cfg):
        a = _compiled(residual_net, small_cfg).program
        b = _compiled(residual_net, small_cfg).program
        assert a.total_instructions == b.total_instructions
        for core in a.programs:
            assert [repr(i) for i in a.programs[core]] \
                == [repr(i) for i in b.programs[core]]


class TestVectorSemantics:
    def test_fused_relu_emitted(self, chain_net, small_cfg):
        chip = _compiled(chain_net, small_cfg).program
        relus = [inst for p in chip.programs.values() for inst in p
                 if isinstance(inst, VectorInst) and inst.op == "VRELU"]
        assert relus

    def test_fused_pool_emitted(self, chain_net, small_cfg):
        chip = _compiled(chain_net, small_cfg).program
        pools = [inst for p in chip.programs.values() for inst in p
                 if isinstance(inst, VectorInst) and inst.op == "VMAXPOOL"]
        assert pools
        assert all(i.layer == "conv2" for i in pools)

    def test_add_join_emitted_as_vadd(self, residual_net, small_cfg):
        chip = _compiled(residual_net, small_cfg).program
        joins = [inst for p in chip.programs.values() for inst in p
                 if isinstance(inst, VectorInst) and inst.op == "VADD"
                 and inst.layer == "join"]
        assert joins

    def test_concat_emitted_as_moves(self, branch_net, small_cfg):
        chip = _compiled(branch_net, small_cfg).program
        moves = [inst for p in chip.programs.values() for inst in p
                 if isinstance(inst, VectorInst) and inst.op == "VMOV"
                 and inst.layer == "cat"]
        # one VMOV per producer per tile
        assert len(moves) >= 2

    def test_gap_emitted_as_avgpool(self, residual_net, small_cfg):
        chip = _compiled(residual_net, small_cfg).program
        gaps = [inst for p in chip.programs.values() for inst in p
                if isinstance(inst, VectorInst) and inst.op == "VAVGPOOL"
                and inst.layer == "gap"]
        assert len(gaps) == 1  # single output tile


class TestCompilationResult:
    def test_summary_contains_all_sections(self, chain_net, small_cfg):
        text = _compiled(chain_net, small_cfg).summary()
        assert "pipeline" in text
        assert "placement" in text
        assert "chip program" in text

    def test_meta_records_policy_and_homes(self, chain_net, small_cfg):
        chip = _compiled(chain_net, small_cfg).program
        assert chip.meta["policy"] == "performance_first"
        assert "conv1" in chip.meta["stage_homes"]

    def test_verify_can_be_skipped(self, chain_net, small_cfg):
        result = compile_network(chain_net, small_cfg, verify=False)
        assert result.program.total_instructions > 0

    def test_tile_pixels_config_scales_instruction_count(self, chain_net,
                                                         small_cfg):
        fine = dataclasses.replace(small_cfg, compiler=dataclasses.replace(
            small_cfg.compiler, tile_pixels=4))
        coarse = dataclasses.replace(small_cfg, compiler=dataclasses.replace(
            small_cfg.compiler, tile_pixels=32))
        n_fine = compile_network(chain_net, fine).program.total_instructions
        n_coarse = compile_network(chain_net, coarse).program.total_instructions
        assert n_fine > n_coarse
