"""Randomized oracle tests for the ROB hazard engines.

The seed answered hazard queries with a linear ``conflicts_with`` scan of
the window; the ROB now answers them with an incremental scoreboard
(footprint-indexed buckets + flat memory maps) or, for straight-line
programs, a precomputed static blocker table.  These tests drive both
engines through randomized instruction mixes — all four unit types,
deliberately colliding register/memory/group footprints, branches for the
``has_conflict`` path — against the brute-force oracle, across random
allocate/complete interleavings.
"""

import random

import pytest

from repro.arch import ReorderBuffer
from repro.isa import (
    MvmInst,
    Program,
    ScalarInst,
    TransferInst,
    VectorInst,
)
from repro.sim import Simulator


def random_inst(rng: random.Random):
    """A random instruction with a small footprint universe so overlaps
    are frequent: 4 groups, 6 registers, 8 memory slots of 64 bytes with
    random extents (partial overlaps included)."""
    roll = rng.random()
    addr = rng.randrange(8) * 64
    nbytes = rng.choice((32, 64, 96, 128))
    if roll < 0.3:
        return MvmInst(group=rng.randrange(4), src=addr, src_bytes=nbytes,
                       dst=rng.randrange(8) * 64, dst_bytes=nbytes,
                       count=rng.randint(1, 3))
    if roll < 0.6:
        op = rng.choice(("VADD", "VRELU", "VMOV"))
        return VectorInst(op=op, src1=addr, src2=rng.randrange(8) * 64,
                          src_bytes=nbytes, dst=rng.randrange(8) * 64,
                          dst_bytes=nbytes, length=16)
    if roll < 0.8:
        op = rng.choice(("SEND", "RECV", "LOAD", "STORE"))
        return TransferInst(op=op, addr=addr, bytes=nbytes,
                            flow=rng.randrange(3), seq=0)
    op = rng.choice(("LI", "SADD", "SMUL", "SAND"))
    return ScalarInst(op=op, rd=rng.randrange(6), rs1=rng.randrange(6),
                      rs2=rng.randrange(6), imm=rng.randrange(100))


def oracle_conflicts_before(rob, entry):
    """The seed's linear scan, verbatim."""
    for older in rob.entries:
        if older is entry:
            return False
        if not older.done and entry.inst.conflicts_with(older.inst):
            return True
    return False


def oracle_oldest(rob, entry):
    for older in rob.entries:
        if older is entry:
            return None
        if not older.done and entry.inst.conflicts_with(older.inst):
            return older
    return None


def oracle_has_conflict(rob, inst):
    return any(not e.done and inst.conflicts_with(e.inst)
               for e in rob.entries)


@pytest.mark.parametrize("seed", range(8))
def test_scoreboard_matches_linear_scan(seed):
    """Random allocate/complete interleavings: every scoreboard answer
    (boolean and oldest-entry) must match the seed's linear scan."""
    rng = random.Random(seed)
    rob = ReorderBuffer(Simulator(), rng.choice((2, 3, 4, 8, 16)))
    live = []
    for _ in range(300):
        if live and (rng.random() < 0.4 or rob.full):
            victim = rng.choice(live)
            live.remove(victim)
            rob.mark_done(victim)
            continue
        entry = rob.allocate(random_inst(rng))
        live.append(entry)
        # probe every in-flight entry plus a fresh branch-style inst
        for probe in live:
            assert rob.conflicts_before(probe) == \
                oracle_conflicts_before(rob, probe)
            assert rob.oldest_conflict(probe) is oracle_oldest(rob, probe)
        branch = ScalarInst(op="SBEQ", rs1=rng.randrange(6),
                            rs2=rng.randrange(6), target=0)
        assert rob.has_conflict(branch) == oracle_has_conflict(rob, branch)
        scalar = random_inst(rng)
        assert rob.has_conflict(scalar) == oracle_has_conflict(rob, scalar)


@pytest.mark.parametrize("seed", range(8))
def test_static_table_matches_linear_scan(seed):
    """Table mode (straight-line sealed program): drive an in-order
    allocate / out-of-order complete walk and compare every answer with
    the oracle, plus the branch-path linear fallback."""
    rng = random.Random(1000 + seed)
    window = rng.choice((2, 3, 4, 8))
    program = Program(core=0)
    for _ in range(120):
        program.append(random_inst(rng))
    program.seal()
    table = program.static_blockers(window)
    assert table is not None

    rob = ReorderBuffer(Simulator(), window, static_blockers=table)
    insts = program.instructions
    live = []
    pc = 0
    while pc < len(insts) or live:
        can_alloc = pc < len(insts) and not rob.full \
            and not (isinstance(insts[pc], ScalarInst)
                     and insts[pc].is_control)
        if can_alloc and (not live or rng.random() < 0.6):
            entry = rob.allocate(insts[pc])
            live.append(entry)
            pc += 1
        elif live:
            victim = rng.choice(live)
            live.remove(victim)
            rob.mark_done(victim)
        else:
            break
        for probe in live:
            assert rob.conflicts_before(probe) == \
                oracle_conflicts_before(rob, probe)
            assert rob.oldest_conflict(probe) is oracle_oldest(rob, probe)
        branch = ScalarInst(op="SBNE", rs1=rng.randrange(6),
                            rs2=rng.randrange(6), target=0)
        assert rob.has_conflict(branch) == oracle_has_conflict(rob, branch)


def test_static_blockers_none_for_branchy_programs():
    program = Program(core=0)
    program.append(ScalarInst(op="LI", rd=1, imm=3))
    program.append(ScalarInst(op="SBNE", rs1=1, rs2=0, target=0))
    program.seal()
    assert program.static_blockers(4) is None


def test_static_blockers_cached_per_window():
    program = Program(core=0)
    for i in range(10):
        program.append(VectorInst(op="VMOV", src1=64 * i, src_bytes=64,
                                  dst=64 * (i + 1), dst_bytes=64, length=16))
    program.seal()
    t4 = program.static_blockers(4)
    assert program.static_blockers(4) is t4  # cached
    t2 = program.static_blockers(2)
    assert t2 is not t4
    # the chain VMOVs conflict with their immediate predecessor (RAW)
    assert all(i - 1 in t4[i] for i in range(1, 10))


def test_static_blockers_window_bound():
    """Conflicts further apart than the window are excluded: they can
    never be in flight together."""
    program = Program(core=0)
    # instructions 0 and 5 write the same memory; 1..4 are unrelated
    program.append(VectorInst(op="VMOV", src1=0, src_bytes=32, dst=1024,
                              dst_bytes=32, length=8))
    for i in range(4):
        program.append(ScalarInst(op="LI", rd=i, imm=i))
    program.append(VectorInst(op="VMOV", src1=64, src_bytes=32, dst=1024,
                              dst_bytes=32, length=8))
    program.seal()
    assert 0 in program.static_blockers(8)[5]
    assert 0 not in program.static_blockers(4)[5]
