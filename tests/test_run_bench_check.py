"""Tests for the run_bench.py regression gate (--check)."""

import importlib.util
import sys
from pathlib import Path

RUN_BENCH = Path(__file__).parent.parent / "benchmarks" / "run_bench.py"


def _load_run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", RUN_BENCH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("run_bench", module)
    spec.loader.exec_module(module)
    return module


run_bench = _load_run_bench()


def _bench(mean):
    return {"mean_s": mean, "min_s": mean, "stddev_s": 0.0,
            "rounds": 3, "ops_per_sec": 1.0 / mean}


class TestCheckRegressions:
    def test_within_tolerance_passes(self):
        current = {"a": _bench(0.105)}
        baseline = {"a": _bench(0.100)}
        assert run_bench.check_regressions(current, baseline, 0.10) == []

    def test_regression_beyond_tolerance_fails(self):
        current = {"a": _bench(0.125)}
        baseline = {"a": _bench(0.100)}
        assert run_bench.check_regressions(current, baseline, 0.10) == ["a"]

    def test_improvement_passes(self):
        current = {"a": _bench(0.050)}
        baseline = {"a": _bench(0.100)}
        assert run_bench.check_regressions(current, baseline, 0.10) == []

    def test_noisy_mean_with_stable_min_passes(self):
        """The gate compares minima: a mean inflated by host noise does
        not fail the check while the floor holds."""
        current = {"a": dict(_bench(0.100), mean_s=0.200)}
        baseline = {"a": _bench(0.100)}
        assert run_bench.check_regressions(current, baseline, 0.10) == []

    def test_falls_back_to_mean_without_min(self):
        current = {"a": {"mean_s": 0.2}}
        baseline = {"a": {"mean_s": 0.1}}
        assert run_bench.check_regressions(current, baseline, 0.10) == ["a"]

    def test_new_benchmark_not_gated(self):
        current = {"brand_new": _bench(9.9)}
        baseline = {"a": _bench(0.1)}
        assert run_bench.check_regressions(current, baseline, 0.10) == []

    def test_multiple_failures_collected(self):
        current = {"a": _bench(0.2), "b": _bench(0.3), "c": _bench(0.1)}
        baseline = {"a": _bench(0.1), "b": _bench(0.1), "c": _bench(0.1)}
        assert sorted(run_bench.check_regressions(current, baseline, 0.10)) \
            == ["a", "b"]

    def test_check_requires_baseline(self, capsys):
        import pytest
        with pytest.raises(SystemExit):
            run_bench.main(["--check"])


class TestRawDumpBaseline:
    """CI uploads the smoke bench's raw ``--benchmark-json`` dump as a
    workflow artifact; ``--baseline``/``--check`` must accept that format
    directly, so trajectory comparisons can use the artifact instead of
    timing runs on the noisy shared VM."""

    def _raw_dump(self):
        return {
            "machine_info": {"python_version": "3.12.0"},
            "benchmarks": [
                {"name": "test_model_simulate_only_vit_tiny",
                 "stats": {"mean": 0.020, "min": 0.018, "stddev": 0.001,
                           "rounds": 9, "ops": 50.0}},
                {"name": "test_kernel_event_throughput",
                 "stats": {"mean": 0.012, "min": 0.011, "stddev": 0.001,
                           "rounds": 5, "ops": 83.3}},
            ],
        }

    def test_load_baseline_accepts_raw_dump(self, tmp_path):
        import json

        path = tmp_path / "smoke-bench.json"
        path.write_text(json.dumps(self._raw_dump()))
        base = run_bench._load_baseline(path)
        assert base["test_model_simulate_only_vit_tiny"]["min_s"] == 0.018
        assert base["test_kernel_event_throughput"]["mean_s"] == 0.012

    def test_check_gates_against_raw_dump(self, tmp_path):
        import json

        path = tmp_path / "smoke-bench.json"
        path.write_text(json.dumps(self._raw_dump()))
        base = run_bench._load_baseline(path)
        current = {"test_model_simulate_only_vit_tiny": _bench(0.030)}
        assert run_bench.check_regressions(current, base, 0.10) \
            == ["test_model_simulate_only_vit_tiny"]
        current = {"test_model_simulate_only_vit_tiny": _bench(0.018)}
        assert run_bench.check_regressions(current, base, 0.10) == []
