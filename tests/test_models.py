"""Tests for the model zoo: structure, shapes, parameter counts."""

import pytest

from repro.graph import weight_shape
from repro.models import (
    FIG3_MODELS,
    FIG5_MODELS,
    MODELS,
    build_model,
)


def total_params(graph) -> int:
    total = 0
    for node in graph.topological_order():
        shape = weight_shape(node)
        if shape:
            total += shape[0] * shape[1]
    return total


class TestZoo:
    def test_fig3_models_present(self):
        assert set(FIG3_MODELS) <= set(MODELS)

    def test_fig5_models_present(self):
        assert set(FIG5_MODELS) <= set(MODELS)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="available"):
            build_model("lenet9000")

    @pytest.mark.parametrize("name", sorted(set(MODELS) - {"bert_tiny"}))
    def test_cifar_variant_builds_and_classifies(self, name):
        g = build_model(name)
        out = g.output_nodes
        assert len(out) == 1
        assert out[0].output.shape == (10,)

    def test_bert_tiny_default_classifies_two_way(self):
        g = build_model("bert_tiny")
        assert g.output_nodes[0].output.shape == (2,)

    @pytest.mark.parametrize(
        "name", sorted(set(MODELS) - {"lenet5", "mlp", "bert_tiny", "gpt_tiny"}))
    def test_imagenet_variant_builds(self, name):
        g = build_model(name, imagenet=True)
        assert g.output_nodes[0].output.shape == (1000,)

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_custom_class_count(self, name):
        g = build_model(name, num_classes=37)
        assert g.output_nodes[0].output.shape == (37,)


class TestSmallModels:
    def test_lenet5_structure(self):
        g = build_model("lenet5")
        assert sum(1 for n in g.nodes.values() if n.op == "conv") == 2
        assert sum(1 for n in g.nodes.values() if n.op == "fc") == 3
        assert sum(1 for n in g.nodes.values() if n.op == "avgpool") == 2

    def test_lenet5_classic_geometry(self):
        g = build_model("lenet5")
        # conv2 (5x5, no pad) on the 14x14 pooled map -> 10x10
        convs = [n for n in g.topological_order() if n.op == "conv"]
        assert convs[1].output.shape == (16, 10, 10)

    def test_mlp_has_no_convs(self):
        g = build_model("mlp")
        assert not any(n.op == "conv" for n in g.nodes.values())
        assert g.output_nodes[0].output.shape == (10,)

    def test_mlp_custom_widths(self):
        from repro.models import mlp
        g = mlp(hidden=(64,), num_classes=3)
        assert g.output_nodes[0].output.shape == (3,)


class TestAlexNet:
    def test_imagenet_conv1_geometry(self):
        g = build_model("alexnet", imagenet=True)
        assert g.node("conv1").output.shape == (96, 55, 55)

    def test_imagenet_parameter_count_magnitude(self):
        # The canonical AlexNet has ~61M weights; ours omits biases.
        params = total_params(build_model("alexnet", imagenet=True))
        assert 5.0e7 < params < 7.0e7

    def test_five_convs_three_fcs(self):
        g = build_model("alexnet")
        convs = [n for n in g.nodes.values() if n.op == "conv"]
        fcs = [n for n in g.nodes.values() if n.op == "fc"]
        assert len(convs) == 5
        assert len(fcs) == 3


class TestVgg:
    def test_vgg8_has_six_convs_two_fcs(self):
        g = build_model("vgg8")
        assert sum(1 for n in g.nodes.values() if n.op == "conv") == 6
        assert sum(1 for n in g.nodes.values() if n.op == "fc") == 2

    def test_vgg16_has_thirteen_convs_three_fcs(self):
        g = build_model("vgg16")
        assert sum(1 for n in g.nodes.values() if n.op == "conv") == 13
        assert sum(1 for n in g.nodes.values() if n.op == "fc") == 3

    def test_vgg16_imagenet_classifier_width(self):
        g = build_model("vgg16", imagenet=True)
        fcs = [n for n in g.topological_order() if n.op == "fc"]
        assert fcs[0].attr("out_features") == 4096

    def test_vgg16_imagenet_parameter_magnitude(self):
        params = total_params(build_model("vgg16", imagenet=True))
        assert 1.2e8 < params < 1.5e8  # canonical ~138M


class TestResNet:
    def test_has_eight_basic_blocks(self):
        g = build_model("resnet18")
        adds = [n for n in g.nodes.values() if n.op == "add"]
        assert len(adds) == 8

    def test_projection_shortcuts_on_downsampling_blocks(self):
        g = build_model("resnet18")
        projs = [n for n in g.nodes.values() if n.name.endswith("_proj")]
        assert len(projs) == 3  # stages 2-4

    def test_stage_channel_progression(self):
        g = build_model("resnet18")
        assert g.node("s1b1_conv1").output.shape[0] == 64
        assert g.node("s4b2_conv2").output.shape[0] == 512

    def test_imagenet_stem_downsamples(self):
        g = build_model("resnet18", imagenet=True)
        assert g.node("stem_pool").output.shape[1:] == (56, 56)

    def test_imagenet_parameter_magnitude(self):
        params = total_params(build_model("resnet18", imagenet=True))
        assert 1.0e7 < params < 1.3e7  # canonical ~11.7M

    def test_add_inputs_have_identical_shapes(self):
        g = build_model("resnet18")
        for node in g.nodes.values():
            if node.op != "add":
                continue
            shapes = {g.node(i).output.shape for i in node.inputs}
            assert len(shapes) == 1


class TestSqueezeNet:
    def test_eight_fire_modules(self):
        g = build_model("squeezenet")
        concats = [n for n in g.nodes.values() if n.op == "concat"]
        assert len(concats) == 8

    def test_fire_expand_symmetry(self):
        g = build_model("squeezenet")
        e1 = g.node("fire2_e1x1").output.shape
        e3 = g.node("fire2_e3x3").output.shape
        assert e1 == e3

    def test_conv_classifier_head(self):
        g = build_model("squeezenet", num_classes=10)
        assert g.node("classifier_conv").attr("out_channels") == 10

    def test_imagenet_parameter_magnitude(self):
        params = total_params(build_model("squeezenet", imagenet=True))
        assert 6.0e5 < params < 1.5e6  # canonical ~1.2M


class TestGoogLeNet:
    def test_nine_inception_modules(self):
        g = build_model("googlenet")
        concats = [n for n in g.nodes.values() if n.op == "concat"]
        assert len(concats) == 9

    def test_inception_concat_channels(self):
        g = build_model("googlenet")
        # 3a: 64 + 128 + 32 + 32 = 256
        assert g.node("i3a_concat").output.shape[0] == 256
        # 5b: 384 + 384 + 128 + 128 = 1024
        assert g.node("i5b_concat").output.shape[0] == 1024

    def test_four_branches_per_module(self):
        g = build_model("googlenet")
        assert len(g.node("i4c_concat").inputs) == 4

    def test_imagenet_parameter_magnitude(self):
        params = total_params(build_model("googlenet", imagenet=True))
        assert 4.0e6 < params < 8.0e6  # canonical ~6M (no aux heads)
