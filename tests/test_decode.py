"""Autoregressive decode scenario: growable KV flows end-to-end.

Covers the decode extension at every layer: ``kv_cache`` shape
inference and executor semantics (numpy reference over a growing cache,
mirroring ``tests/test_attention.py``), the extent helpers
(:func:`kv_extent` / :func:`with_kv_extent`), compiler lowering
(capacity-sized cache allocation, extent-invariant program structure),
the step-reusable :class:`StepTemplate` (per-step programs *exactly*
equal to from-scratch compiles across 32+ extents), the Engine decode
driver and its zero-recompile counters, the continuous-batching
``serve_mix`` with p50/p99 latency distributions, the zero-work guards
in :mod:`repro.analysis`, and a golden trace pin for the decode path.
"""

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from repro import Engine, JobSpec, simulate
from repro.analysis import attention_share, op_class_breakdown, step_latency_stats
from repro.compiler import StepwiseError, compile_network, compile_step_template
from repro.config import small_chip, tiny_chip
from repro.engine import DecodeSession, load_specs, save_specs
from repro.engine.decode import aggregate_step_reports
from repro.graph import (
    GraphBuilder,
    GraphError,
    execute,
    kv_extent,
    random_weights,
    with_kv_extent,
)
from repro.isa import TransferInst
from repro.models import DECODE_MODELS, MODELS, build_model, gpt_tiny
from repro.runner import MixReport
from repro.runner.results import nearest_rank


@pytest.fixture
def engine():
    with Engine(tiny_chip()) as eng:
        yield eng


def _decode_attn_graph(tokens, *, dim=8, heads=2, max_tokens=16):
    """Single attention-over-cache block: one query token, growing K/V."""
    b = GraphBuilder("dec", (dim, 1, 1))
    inp = b.current
    q = b.conv(dim, kernel=1, after=inp, name="q")
    k = b.conv(dim, kernel=1, after=inp, name="k")
    v = b.conv(dim, kernel=1, after=inp, name="v")
    kc = b.kv_cache(tokens, max_tokens=max_tokens, after=k, name="kcache")
    vc = b.kv_cache(tokens, max_tokens=max_tokens, after=v, name="vcache")
    scores = b.matmul(q, kc, transpose_b=True, heads=heads,
                      scale=(dim // heads) ** -0.5, name="scores")
    attn = b.softmax(heads=heads, after=scores, name="attn")
    b.matmul(attn, vc, heads=heads, name="ctx")
    return b.build()


class TestKvCacheShapes:
    def test_output_is_whole_cache(self):
        g = _decode_attn_graph(5)
        assert g.nodes["kcache"].output.shape == (8, 5, 1)
        assert g.nodes["scores"].output.shape == (2 * 5, 1, 1)
        assert g.nodes["ctx"].output.shape == (8, 1, 1)

    def test_max_tokens_defaults_to_tokens(self):
        b = GraphBuilder("d", (4, 1, 1))
        b.conv(4, kernel=1, name="k")
        b.kv_cache(3, name="c")
        g = b.build()
        assert g.nodes["c"].attr("max_tokens") == 3

    def test_rejects_multi_token_input(self):
        b = GraphBuilder("d", (4, 2, 1))
        b.conv(4, kernel=1, name="k")
        with pytest.raises(GraphError, match="one token per step"):
            b.kv_cache(3, name="c")
            b.build()

    def test_rejects_extent_over_capacity(self):
        b = GraphBuilder("d", (4, 1, 1))
        b.conv(4, kernel=1, name="k")
        with pytest.raises(GraphError, match="max_tokens"):
            b.kv_cache(9, max_tokens=4, name="c")
            b.build()

    def test_rejects_nonpositive_extent(self):
        b = GraphBuilder("d", (4, 1, 1))
        b.conv(4, kernel=1, name="k")
        with pytest.raises(GraphError, match="positive"):
            b.kv_cache(0, name="c")
            b.build()


class TestKvExtentHelpers:
    def test_kv_extent_reads_the_graph(self):
        assert kv_extent(_decode_attn_graph(5)) == (5, 16)
        assert kv_extent(build_model("gpt_tiny")) == (8, 64)

    def test_kv_extent_none_for_fixed_networks(self):
        assert kv_extent(build_model("mlp")) is None

    def test_with_kv_extent_advances_every_cache(self):
        g = _decode_attn_graph(5)
        g2 = with_kv_extent(g, 9)
        assert kv_extent(g2) == (9, 16)
        assert g2.nodes["kcache"].output.shape == (8, 9, 1)
        assert g2.nodes["vcache"].output.shape == (8, 9, 1)
        # the source graph is untouched
        assert kv_extent(g) == (5, 16)

    def test_with_kv_extent_bounds(self):
        g = _decode_attn_graph(5)
        with pytest.raises(GraphError, match="outside"):
            with_kv_extent(g, 17)
        with pytest.raises(GraphError, match="outside"):
            with_kv_extent(g, 0)
        with pytest.raises(GraphError, match="no kv_cache"):
            with_kv_extent(build_model("mlp"), 2)

    def test_gpt_tiny_validates_extent(self):
        with pytest.raises(ValueError, match="outside"):
            gpt_tiny(kv_tokens=80, max_kv_tokens=64)

    def test_gpt_tiny_registered_as_decode_model(self):
        assert "gpt_tiny" in DECODE_MODELS
        assert "gpt_tiny" in MODELS


class TestExecutorReference:
    """Numpy reference for a full autoregressive decode, step by step.

    Mirrors the einsum references of ``tests/test_attention.py``: keys
    and values accumulate in an independently-maintained cache; at every
    step the graph executor (extent advanced via ``with_kv_extent``,
    state threaded through ``execute``) must match attention computed
    from scratch over the reference cache.
    """

    def test_decode_matches_reference_cache(self):
        dim, heads, steps = 8, 2, 6
        g = _decode_attn_graph(1, dim=dim, heads=heads, max_tokens=16)
        weights = random_weights(g)
        wq = weights["q"][:, :, 0, 0]
        wk = weights["k"][:, :, 0, 0]
        wv = weights["v"][:, :, 0, 0]
        rng = np.random.default_rng(7)
        state: dict[str, np.ndarray] = {}
        ref_k: list[np.ndarray] = []
        ref_v: list[np.ndarray] = []
        for t in range(1, steps + 1):
            x = rng.normal(0.0, 1.0, (dim, 1, 1))
            vals = execute(with_kv_extent(g, t), x, weights=weights,
                           state=state)
            ref_k.append(wk @ x[:, 0, 0])
            ref_v.append(wv @ x[:, 0, 0])
            cache_k = np.stack(ref_k, axis=1)  # (dim, t)
            cache_v = np.stack(ref_v, axis=1)
            np.testing.assert_allclose(
                vals["kcache"], cache_k[:, :, None], atol=1e-12)
            np.testing.assert_allclose(
                vals["vcache"], cache_v[:, :, None], atol=1e-12)
            q = (wq @ x[:, 0, 0]).reshape(heads, dim // heads, 1)
            k = cache_k.reshape(heads, dim // heads, t)
            scores = np.einsum("hdn,hdm->hmn", q, k) * (dim // heads) ** -0.5
            np.testing.assert_allclose(
                vals["scores"], scores.reshape(heads * t, 1, 1), atol=1e-12)
            a = np.exp(scores)
            a = a / a.sum(axis=1, keepdims=True)
            ctx = np.einsum("hmn,hdm->hdn", a,
                            cache_v.reshape(heads, dim // heads, t))
            np.testing.assert_allclose(
                vals["ctx"], ctx.reshape(dim, 1, 1), atol=1e-12)
        # state carries the post-append caches for the next step
        assert state["kcache"].shape == (dim, steps, 1)

    def test_missing_past_defaults_to_zeros(self):
        g = _decode_attn_graph(4)
        vals = execute(g, np.ones((8, 1, 1)))
        np.testing.assert_array_equal(vals["kcache"][:, :3], 0.0)

    def test_stale_state_shape_rejected(self):
        g = _decode_attn_graph(4)
        state = {"kcache": np.zeros((8, 7, 1))}
        with pytest.raises(GraphError, match="cache state shape"):
            execute(g, np.ones((8, 1, 1)), state=state)


class TestCacheLowering:
    """Compiler lowering: capacity-sized buffers, extent-invariant code."""

    def test_cache_stages_allocated_at_capacity(self):
        result = compile_network(with_kv_extent(build_model("gpt_tiny"), 3),
                                 tiny_chip())
        pipeline = result.pipeline
        caches = [s for s in pipeline.stages if s.kind == "cache"]
        assert len(caches) == 4  # 2 layers x (K, V)
        for stage in caches:
            assert stage.extent_scaled
            assert stage.alloc_shape == (stage.out_channels, 64, 1)
            assert stage.alloc_pixels == 64
        assert pipeline.extent == 3
        assert pipeline.extent_capacity == 64

    def test_chip_meta_carries_the_extent(self):
        chip = compile_network(with_kv_extent(build_model("gpt_tiny"), 3),
                               tiny_chip()).program
        assert chip.meta["kv_extent"] == 3
        assert chip.meta["kv_capacity"] == 64

    def test_cache_appends_via_store_not_flows(self):
        chip = compile_network(with_kv_extent(build_model("gpt_tiny"), 3),
                               tiny_chip()).program
        cache_layers = {f"blk{i}_{kv}cache" for i in range(2)
                        for kv in "kv"}
        stores = [inst for prog in chip.programs.values()
                  for inst in prog.instructions
                  if isinstance(inst, TransferInst) and inst.op == "STORE"
                  and inst.layer in cache_layers]
        assert {inst.layer for inst in stores} == cache_layers
        # one token's worth of bytes per step, regardless of extent
        assert all(inst.bytes == stores[0].bytes for inst in stores)
        # no flow carries extent-scaled cache data
        flow_layers = {flow.layer for flow in chip.flows.values()}
        assert not (flow_layers & cache_layers)

    def test_program_structure_is_extent_invariant(self):
        g = build_model("gpt_tiny")
        cfg = tiny_chip()
        lo = compile_network(with_kv_extent(g, 3), cfg).program
        hi = compile_network(with_kv_extent(g, 40), cfg).program
        assert set(lo.programs) == set(hi.programs)
        assert set(lo.flows) == set(hi.flows)
        for core in lo.programs:
            a = lo.programs[core].instructions
            b = hi.programs[core].instructions
            assert len(a) == len(b)
            assert [type(i) for i in a] == [type(i) for i in b]

    def test_fixed_extent_transformer_unchanged(self):
        """The classic path stays bit-identical: no kv_cache, no extent."""
        result = compile_network(build_model("vit_tiny"), small_chip())
        assert result.pipeline.extent is None
        assert "kv_extent" not in result.program.meta


class TestStepTemplate:
    def test_requires_a_decode_graph(self):
        with pytest.raises(StepwiseError, match="no kv_cache"):
            compile_step_template(build_model("mlp"), tiny_chip())

    def test_resolve_bounds(self):
        template = compile_step_template(build_model("gpt_tiny"), tiny_chip())
        assert template.capacity == 64
        assert template.patched_field_count > 0
        with pytest.raises(StepwiseError, match="outside"):
            template.resolve(0)
        with pytest.raises(StepwiseError, match="outside"):
            template.resolve(65)

    def test_resolve_is_memoized(self):
        template = compile_step_template(build_model("gpt_tiny"), tiny_chip())
        assert template.resolve(5) is template.resolve(5)

    def test_resolved_fields_match_from_scratch_compile(self):
        """Every instruction field at a replay extent equals the program a
        from-scratch compile at that extent produces."""
        g = build_model("gpt_tiny")
        cfg = tiny_chip()
        template = compile_step_template(g, cfg)
        for extent in (8, 17, 39):
            ours = template.resolve(extent)
            ref = compile_network(with_kv_extent(g, extent), cfg).program
            assert ours.meta["kv_extent"] == extent
            for core in ref.programs:
                for mine, theirs in zip(ours.programs[core].instructions,
                                        ref.programs[core].instructions):
                    assert dataclasses.astuple(mine) == \
                        dataclasses.astuple(theirs), (core, extent)
            for fid in ref.flows:
                assert dataclasses.astuple(ours.flows[fid]) == \
                    dataclasses.astuple(ref.flows[fid])

    def test_replay_cycles_match_from_scratch_across_32_extents(self):
        """Acceptance pin: one compiled template replays 32+ decode steps
        with per-step cycle counts exactly equal to per-step from-scratch
        compiles."""
        from repro.arch import run_program
        g = build_model("gpt_tiny")
        cfg = tiny_chip()
        template = compile_step_template(g, cfg)
        for extent in range(8, 40):  # 32 extents
            ours = run_program(template.resolve(extent), cfg)
            ref_chip = compile_network(with_kv_extent(g, extent), cfg).program
            ref = run_program(ref_chip, cfg)
            assert ours.cycles == ref.cycles, extent


class TestEngineDecode:
    def test_run_decode_spec(self, engine):
        report = engine.run(JobSpec("gpt_tiny", decode_steps=32))
        decode = report.meta["decode"]
        assert decode["steps"] == 32
        assert decode["kv_tokens"] == 8
        assert len(decode["step_cycles"]) == 32
        assert report.cycles == sum(decode["step_cycles"])
        assert report.seconds == pytest.approx(sum(decode["step_seconds"]))
        # step 1 runs the same program a fixed-extent simulation would
        fixed = simulate(with_kv_extent(engine.resolve_network("gpt_tiny"), 8),
                         tiny_chip(), compile_cache=False)
        assert decode["step_cycles"][0] == fixed.cycles

    def test_zero_recompiles_after_step_one(self, engine):
        engine.run(JobSpec("gpt_tiny", decode_steps=32))
        stats = engine.compile_stats()
        assert stats["template_misses"] == 1
        assert stats["template_entries"] == 1
        # the template bypasses the program-level compile cache entirely
        assert stats["hits"] == 0 and stats["misses"] == 0
        # a second request at a different KV depth reuses the template
        engine.run(JobSpec("gpt_tiny", decode_steps=4, kv_tokens=20))
        stats = engine.compile_stats()
        assert stats["template_misses"] == 1
        assert stats["template_hits"] == 1

    def test_clear_caches_resets_template_state(self, engine):
        engine.run(JobSpec("gpt_tiny", decode_steps=2))
        engine.clear_caches()
        assert engine.compile_stats()["template_entries"] == 0
        assert engine.compile_stats()["template_misses"] == 0

    def test_decode_rejects_batch(self, engine):
        with pytest.raises(ValueError, match="batch"):
            engine.run(JobSpec("gpt_tiny", decode_steps=2, batch=2))

    def test_decode_rejects_fixed_networks(self, engine):
        with pytest.raises(ValueError, match="no kv_cache"):
            engine.run(JobSpec("mlp", decode_steps=2))

    def test_session_steps_and_grows(self, engine):
        session = engine.decode_session("gpt_tiny")
        assert isinstance(session, DecodeSession)
        assert session.extent == 8
        first = session.step()
        assert first.meta["kv_extent"] == 8
        assert session.extent == 9
        agg = session.run(3)
        assert agg.meta["decode"]["steps"] == 3
        assert agg.meta["decode"]["kv_tokens"] == 9
        assert session.steps_run == 4
        assert [extent for extent, _ in session.history] == [8, 9, 10, 11]
        assert session.remaining_capacity == 64 - 12 + 1

    def test_sessions_share_one_template(self, engine):
        engine.decode_session("gpt_tiny")
        engine.decode_session("gpt_tiny", kv_tokens=20)
        stats = engine.compile_stats()
        assert stats["template_misses"] == 1
        assert stats["template_hits"] == 1

    def test_session_rejects_fixed_networks(self, engine):
        with pytest.raises(ValueError, match="kv_cache"):
            engine.decode_session("mlp")

    def test_session_rejects_extent_beyond_capacity(self, engine):
        with pytest.raises(ValueError, match="outside"):
            engine.decode_session("gpt_tiny", kv_tokens=65)

    def test_decode_spec_roundtrips_through_job_files(self, tmp_path):
        spec = JobSpec("gpt_tiny", decode_steps=4, kv_tokens=2)
        save_specs([spec], tmp_path / "jobs.json")
        loaded = load_specs(tmp_path / "jobs.json")
        assert loaded == [spec]


class TestServeMix:
    def test_mixed_prefill_and_decode(self, engine):
        mix = engine.serve_mix([
            JobSpec("gpt_tiny", decode_steps=4, kv_tokens=4),
            JobSpec("mlp"),
            JobSpec("gpt_tiny", decode_steps=3),
        ])
        assert isinstance(mix, MixReport)
        assert mix.n_requests == 3
        assert mix.total_steps == 7
        assert len(mix.prefill_seconds) == 1
        assert mix.reports[0].meta["decode"]["steps"] == 4
        assert mix.reports[1].network == "mlp"
        assert mix.reports[2].meta["decode"]["kv_tokens"] == 8
        assert 0 < mix.p50_step_ms <= mix.p99_step_ms
        assert 0 < mix.tpot_ms
        summary = mix.summary()
        assert "p50" in summary and "p99" in summary

    def test_mix_matches_dedicated_decode_run(self, engine):
        """Interleaving requests does not change any request's latency —
        steps are independent simulations of the same resolved programs."""
        mix = engine.serve_mix([JobSpec("gpt_tiny", decode_steps=4)])
        alone = engine.run(JobSpec("gpt_tiny", decode_steps=4))
        assert mix.reports[0].meta["decode"]["step_cycles"] == \
            alone.meta["decode"]["step_cycles"]

    def test_to_dict_has_the_distribution(self, engine):
        mix = engine.serve_mix([JobSpec("gpt_tiny", decode_steps=2)])
        data = json.loads(mix.to_json())
        for key in ("n_requests", "total_steps", "p50_step_ms",
                    "p99_step_ms", "tpot_ms", "step_seconds"):
            assert key in data


class TestAnalysisGuards:
    def test_step_latency_stats_on_decode_report(self, engine):
        report = engine.run(JobSpec("gpt_tiny", decode_steps=5))
        stats = step_latency_stats(report)
        assert stats["steps"] == 5
        assert 0 < stats["p50_step_ms"] <= stats["p99_step_ms"]
        assert stats["tpot_ms"] == pytest.approx(stats["total_ms"] / 5)

    def test_step_latency_stats_zero_for_fixed_runs(self, engine):
        report = engine.run(JobSpec("mlp"))
        assert step_latency_stats(report) == {
            "steps": 0, "p50_step_ms": 0.0, "p99_step_ms": 0.0,
            "tpot_ms": 0.0, "total_ms": 0.0}

    def test_attention_share_guards_zero_work(self, engine):
        report = engine.run(JobSpec("mlp"))
        empty = dataclasses.replace(report, layer_busy={}, meta={})
        assert attention_share(empty) == 0.0
        assert op_class_breakdown(empty) == {}

    def test_nearest_rank(self):
        assert nearest_rank([], 50) == 0.0
        assert nearest_rank([10.0], 99) == 10.0
        assert nearest_rank([4.0, 1.0, 3.0, 2.0], 50) == 2.0
        assert nearest_rank([4.0, 1.0, 3.0, 2.0], 100) == 4.0
        with pytest.raises(ValueError):
            nearest_rank([1.0], 101)
        with pytest.raises(ValueError):
            nearest_rank([1.0], -1)

    def test_aggregate_requires_reports(self):
        with pytest.raises(ValueError, match="no step reports"):
            aggregate_step_reports([], kv_tokens=1)


GOLDEN = json.loads(
    (Path(__file__).parent / "golden" / "simulate_decode_small.json")
    .read_text())


class TestDecodeGolden:
    """Pin the decode replay path against a recorded trace (small_chip)."""

    def test_gpt_tiny_decode8_matches_golden(self):
        golden = GOLDEN["gpt_tiny_decode8"]
        with Engine(small_chip()) as eng:
            report = eng.run(
                JobSpec("gpt_tiny", decode_steps=len(golden["step_cycles"])))
        assert report.cycles == golden["cycles"]
        assert report.instructions == golden["instructions"]
        assert report.cores_used == golden["cores_used"]
        assert report.meta["decode"]["step_cycles"] == golden["step_cycles"]
        assert report.meta["decode"]["kv_tokens"] == golden["kv_tokens"]
        assert report.total_energy_pj == pytest.approx(
            golden["total_energy_pj"], rel=1e-12)
        for key, value in golden["noc"].items():
            assert report.noc[key] == value, key
