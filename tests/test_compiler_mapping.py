"""Tests for the two mapping policies and placement invariants."""

import dataclasses

import pytest

from repro.compiler import (
    CompileError,
    build_pipeline,
    map_network,
    map_performance_first,
    map_utilization_first,
)
from repro.config import paper_chip, tiny_chip
from repro.models import build_model
from tests.conftest import build_chain_net


@pytest.fixture
def chain_pipe(chain_net):
    return build_pipeline(chain_net)


class TestDispatch:
    def test_dispatch_by_config(self, chain_pipe):
        cfg = paper_chip(mapping="utilization_first")
        placement = map_network(chain_pipe, cfg)
        assert placement.policy == "utilization_first"

    def test_unknown_policy_rejected(self, chain_pipe):
        cfg = paper_chip()
        bad = dataclasses.replace(cfg, compiler=dataclasses.replace(
            cfg.compiler, mapping="x"))
        with pytest.raises(ValueError):
            map_network(chain_pipe, bad)


class TestUtilizationFirst:
    def test_every_copy_covers_matrix_exactly_once(self, chain_pipe):
        placement = map_utilization_first(chain_pipe, paper_chip())
        for plan in placement.plans.values():
            plan.validate()  # raises on gaps/duplicates

    def test_no_duplication(self, chain_pipe):
        placement = map_utilization_first(chain_pipe, paper_chip())
        assert all(p.copies == 1 for p in placement.plans.values())

    def test_packs_tightly(self):
        """A small network lands entirely on one core."""
        pipe = build_pipeline(build_chain_net())
        placement = map_utilization_first(pipe, paper_chip())
        assert len(placement.crossbars_per_core()) == 1

    def test_splits_when_core_fills(self):
        pipe = build_pipeline(build_model("vgg16"))
        cfg = paper_chip(mapping="utilization_first")
        placement = map_utilization_first(pipe, cfg)
        per_core = placement.crossbars_per_core()
        assert len(per_core) >= 2
        cap = cfg.core.crossbars_per_core
        assert all(v <= cap for v in per_core.values())

    def test_capacity_exhaustion_raises(self, chain_pipe):
        cfg = tiny_chip()
        tiny = dataclasses.replace(cfg, core=dataclasses.replace(
            cfg.core, crossbars_per_core=1))
        pipe = build_pipeline(build_model("vgg16"))
        with pytest.raises(CompileError, match="does not fit"):
            map_utilization_first(pipe, tiny)

    def test_cores_shared_across_layers(self):
        pipe = build_pipeline(build_model("resnet18"))
        placement = map_utilization_first(pipe, paper_chip())
        stages_per_core = placement.stages_per_core()
        assert any(len(stages) > 1 for stages in stages_per_core.values())


class TestPerformanceFirst:
    def test_one_layer_per_core(self):
        pipe = build_pipeline(build_model("resnet18"))
        placement = map_performance_first(pipe, paper_chip())
        stages_per_core = placement.stages_per_core()
        assert all(len(stages) == 1 for stages in stages_per_core.values())

    def test_duplication_fills_spare_crossbars(self, chain_pipe):
        cfg = paper_chip()
        placement = map_performance_first(chain_pipe, cfg)
        # tiny layers on 512-crossbar cores: duplication expected
        assert any(p.copies > 1 for p in placement.plans.values())

    def test_duplication_respects_cap(self, chain_pipe):
        cfg = paper_chip()
        placement = map_performance_first(chain_pipe, cfg)
        for plan in placement.plans.values():
            assert plan.copies <= cfg.compiler.max_duplication

    def test_duplication_disabled(self, chain_pipe):
        cfg = paper_chip()
        cfg = dataclasses.replace(cfg, compiler=dataclasses.replace(
            cfg.compiler, allow_duplication=False))
        placement = map_performance_first(chain_pipe, cfg)
        assert all(p.copies == 1 for p in placement.plans.values())

    def test_copies_cover_matrix(self, chain_pipe):
        placement = map_performance_first(chain_pipe, paper_chip())
        for plan in placement.plans.values():
            plan.validate()

    def test_large_layer_spans_cores_without_row_split(self):
        """vgg16-imagenet fc1 (25088x4096) spans many cores by column
        strips, never splitting a strip."""
        pipe = build_pipeline(build_model("vgg16", imagenet=True))
        placement = map_performance_first(pipe, paper_chip())
        fc1 = next(p for name, p in placement.plans.items()
                   if name.startswith("fc"))
        assert len(fc1.cores) > 1
        for core in fc1.cores:
            owned = fc1.owned_col_blocks(core, 0)
            slices = fc1.slices_on(core)
            covered = set()
            for sl in slices:
                covered.update(range(sl.col_lo, sl.col_hi))
            assert owned == covered  # full strips only

    def test_fallback_when_cores_exhausted(self):
        pipe = build_pipeline(build_model("googlenet"))
        cfg = tiny_chip()  # only 4 cores for ~57 layers
        big = dataclasses.replace(cfg, core=dataclasses.replace(
            cfg.core, crossbars_per_core=4096,
            local_memory_bytes=64 * 1024 * 1024))
        placement = map_performance_first(pipe, big)
        assert placement.meta["degraded_stages"]

    def test_crossbar_budget_respected(self):
        cfg = paper_chip()
        for name in ("alexnet", "resnet18"):
            pipe = build_pipeline(build_model(name))
            placement = map_performance_first(pipe, cfg)
            for used in placement.crossbars_per_core().values():
                assert used <= cfg.core.crossbars_per_core


class TestPlanViews:
    def test_home_core_is_heaviest(self):
        pipe = build_pipeline(build_model("vgg16", imagenet=True))
        placement = map_performance_first(pipe, paper_chip())
        for plan in placement.plans.values():
            per_core = {}
            for sl in plan.slices:
                per_core[sl.core] = per_core.get(sl.core, 0) + sl.n_tiles
            assert per_core[plan.home_core] == max(per_core.values())

    def test_pixel_share_partitions(self, chain_pipe):
        placement = map_performance_first(chain_pipe, paper_chip())
        plan = next(p for p in placement.plans.values() if p.copies > 1)
        lo, hi = 0, 13
        covered = []
        for copy in range(plan.copies):
            a, b = plan.pixel_share(copy, lo, hi)
            covered.extend(range(a, b))
        assert covered == list(range(lo, hi))

    def test_col_cells_on_core(self, chain_pipe):
        placement = map_performance_first(chain_pipe, paper_chip())
        for plan in placement.plans.values():
            for core in plan.cores:
                assert plan.col_cells_on(core) > 0

    def test_summary_mentions_policy(self, chain_pipe):
        placement = map_performance_first(chain_pipe, paper_chip())
        assert "performance_first" in placement.summary()
