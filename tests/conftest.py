"""Shared fixtures: tiny networks and scaled-down architectures.

Tests use purpose-built miniature networks and the ``tiny``/``small``
presets so full compile+simulate flows finish in milliseconds.
"""

from __future__ import annotations

import pytest

from repro.config import small_chip, tiny_chip
from repro.graph import Graph, GraphBuilder


@pytest.fixture
def tiny_cfg():
    """4-core chip, 64x64 crossbars — unit-test scale."""
    return tiny_chip()


@pytest.fixture
def small_cfg():
    """16-core chip — integration-test scale."""
    return small_chip()


def build_chain_net(name: str = "chain", channels: int = 8,
                    size: int = 8) -> Graph:
    """conv-relu-conv-relu-pool-fc: a miniature VGG-style chain."""
    b = GraphBuilder(name, (3, size, size))
    b.conv(channels, kernel=3, padding=1)
    b.relu()
    b.conv(channels, kernel=3, padding=1)
    b.relu()
    b.maxpool(2)
    b.flatten()
    b.fc(10)
    return b.build()


def build_residual_net(name: str = "residual", channels: int = 8,
                       size: int = 8) -> Graph:
    """One basic residual block + classifier (exercises add joins)."""
    b = GraphBuilder(name, (3, size, size))
    b.conv(channels, kernel=3, padding=1, name="stem")
    trunk = b.relu(name="stem_relu")
    b.conv(channels, kernel=3, padding=1, after=trunk, name="main1")
    b.relu(name="main1_relu")
    main = b.conv(channels, kernel=3, padding=1, name="main2")
    b.add(main, trunk, name="join")
    b.relu(name="join_relu")
    b.global_avgpool(name="gap")
    b.flatten(name="flat")
    b.fc(10, name="head")
    return b.build()


def build_branch_net(name: str = "branchy", channels: int = 8,
                     size: int = 8) -> Graph:
    """A fire-module-style split/concat (exercises concat joins)."""
    b = GraphBuilder(name, (3, size, size))
    b.conv(channels, kernel=1, name="squeeze")
    sq = b.relu(name="squeeze_relu")
    b.conv(channels, kernel=1, after=sq, name="left")
    left = b.relu(name="left_relu")
    b.conv(channels, kernel=3, padding=1, after=sq, name="right")
    right = b.relu(name="right_relu")
    b.concat(left, right, name="cat")
    b.global_avgpool(name="gap")
    b.flatten(name="flat")
    b.fc(4, name="head")
    return b.build()


@pytest.fixture
def chain_net():
    return build_chain_net()


@pytest.fixture
def residual_net():
    return build_residual_net()


@pytest.fixture
def branch_net():
    return build_branch_net()
