"""Seeded random kernel workloads with wake-order trace recording.

Shared by the kernel-equivalence suite: the same deterministic workload is
run on the current kernel and its wake-order trace is compared against a
golden trace recorded on the seed (pre-optimization) kernel.  The workload
mixes every kernel primitive the architecture models use:

* timed waits spanning the delta (0), near-wheel (small) and far-heap
  (large) delay ranges,
* single-event waits, ``AnyOf`` and ``AllOf`` over a shared event pool,
* ``Fifo`` producer/consumer streams (bounded and unbounded),
* ``Rendezvous`` tagged send/receive pairs,
* ``Mutex`` / ``Resource`` contention,
* dynamic ``spawn`` plus ``Process.finished`` waits.

All randomness comes from per-process ``random.Random`` instances seeded
from the workload seed, so the generated call sequence is a pure function
of the seed — any trace difference is a kernel-semantics difference.
"""

from __future__ import annotations

import random

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Fifo,
    Mutex,
    Rendezvous,
    Resource,
    Simulator,
)

__all__ = ["run_workload", "HORIZON"]

#: cycle bound for every workload run (the sims intentionally leave some
#: processes blocked; running "until" sidesteps deadlock detection).
HORIZON = 20_000

#: delays chosen to exercise delta (0), near-wheel (1..63) and far-heap
#: (>= 64) scheduling paths.
_DELAYS = (0, 0, 0, 1, 1, 2, 3, 7, 17, 40, 63, 64, 65, 130, 400)


def _build(sim: Simulator, seed: int, trace: list) -> None:
    rng = random.Random(seed)
    pool = [Event(sim, f"ev{i}") for i in range(8)]
    fifo_b = Fifo(sim, capacity=rng.choice([1, 2, 4]), name="fifo_b")
    fifo_u = Fifo(sim, capacity=None, name="fifo_u")
    rendezvous = Rendezvous(sim, "rv")
    mutex = Mutex(sim, "mtx")
    resource = Resource(sim, rng.randint(1, 3), "res")

    def t(name: str, what: str) -> None:
        trace.append((sim.now, name, what))

    def ticker(name, r):
        for _ in range(r.randint(60, 90)):
            yield r.choice(_DELAYS)
            ev = pool[r.randrange(len(pool))]
            delay = r.choice((0, 0, 0, 1, 2, 5, 70))
            ev.notify(delay)
            t(name, f"notify:{ev.name}+{delay}")

    def waiter(name, r):
        for i in range(r.randint(40, 60)):
            roll = r.random()
            if roll < 0.30:
                ev = pool[r.randrange(len(pool))]
                cause = yield ev
                t(name, f"woke:{cause.name}")
            elif roll < 0.50:
                evs = r.sample(pool, r.randint(2, 4))
                cause = yield AnyOf(*evs)
                t(name, f"any:{cause.name}")
            elif roll < 0.60:
                evs = r.sample(pool, r.randint(2, 3))
                cause = yield AllOf(*evs)
                t(name, f"all:{cause.name}")
            else:
                d = r.choice(_DELAYS)
                yield d
                t(name, f"slept:{d}")

    def producer(name, r, fifo):
        for i in range(r.randint(50, 80)):
            yield from fifo.put((name, i))
            t(name, f"put:{i}")
            yield r.choice((0, 0, 1, 1, 2, 7))

    def consumer(name, r, fifo):
        for _ in range(r.randint(50, 80)):
            item = yield from fifo.get()
            t(name, f"got:{item[0]}:{item[1]}")
            yield r.choice((0, 1, 1, 3))

    def sender(name, r):
        for i in range(r.randint(15, 25)):
            tag = r.randrange(3)
            yield from rendezvous.put(tag, (name, i))
            t(name, f"sent:{tag}")
            yield r.choice(_DELAYS)

    def receiver(name, r):
        for _ in range(r.randint(15, 25)):
            tag = r.randrange(3)
            item = yield from rendezvous.get(tag)
            t(name, f"recv:{tag}:{item[0]}")
            yield r.choice(_DELAYS)

    def locker(name, r):
        for _ in range(r.randint(15, 30)):
            yield from mutex.acquire()
            t(name, "locked")
            yield r.choice((0, 1, 2, 5))
            mutex.release()
            yield r.choice(_DELAYS)

    def res_user(name, r):
        for _ in range(r.randint(15, 30)):
            yield from resource.acquire()
            t(name, "acquired")
            yield r.choice((0, 1, 3, 8))
            resource.release()
            yield r.choice(_DELAYS)

    def child(name, r):
        yield r.choice(_DELAYS)
        t(name, "child-done")

    def parent(name, r):
        for i in range(r.randint(8, 14)):
            proc = sim.spawn(child(f"{name}.c{i}", r), name=f"{name}.c{i}")
            yield proc.finished
            t(name, f"reaped:{i}")
            yield r.choice(_DELAYS)

    def sub(tag):
        return random.Random(f"{seed}:{tag}")

    for i in range(2):
        sim.spawn(ticker(f"tick{i}", sub(f"tick{i}")), name=f"tick{i}")
    for i in range(4):
        sim.spawn(waiter(f"wait{i}", sub(f"wait{i}")), name=f"wait{i}")
    for i, fifo in enumerate((fifo_b, fifo_u)):
        sim.spawn(producer(f"prod{i}", sub(f"prod{i}"), fifo), name=f"prod{i}")
        sim.spawn(consumer(f"cons{i}", sub(f"cons{i}"), fifo), name=f"cons{i}")
    for i in range(2):
        sim.spawn(sender(f"send{i}", sub(f"send{i}")), name=f"send{i}")
        sim.spawn(receiver(f"recv{i}", sub(f"recv{i}")), name=f"recv{i}")
    for i in range(2):
        sim.spawn(locker(f"lock{i}", sub(f"lock{i}")), name=f"lock{i}")
        sim.spawn(res_user(f"res{i}", sub(f"res{i}")), name=f"res{i}")
    sim.spawn(parent("parent", sub("parent")), name="parent")


def run_workload(seed: int) -> dict:
    """Run one seeded workload; returns a JSON-friendly result record."""
    sim = Simulator()
    trace: list = []
    _build(sim, seed, trace)
    sim.run(until=HORIZON, detect_deadlock=False)
    return {
        "seed": seed,
        "now": sim.now,
        "pending": sim.pending,
        "trace": [[t, name, what] for t, name, what in trace],
    }
