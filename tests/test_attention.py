"""Transformer/attention scenario: ops, models, codegen, simulation.

Covers the attention extension end-to-end: shape-inference properties of
the new graph ops, numpy executor semantics, compiler lowering (dynamic
matmuls on the vector unit, projections in crossbars), static program
verification, full simulations of ``vit_tiny`` / ``bert_tiny``, and the
reporting that attributes attention time to the right units.
"""

import numpy as np
import pytest

from repro import simulate, small_chip
from repro.analysis import attention_share, op_class_breakdown
from repro.compiler import compile_network, repeat_chip_program
from repro.graph import Graph, GraphBuilder, GraphError, Node, Tensor, execute, infer_shape
from repro.isa import VectorInst, verify_program
from repro.models import build_model, vit_tiny


def _tensor(*shape):
    return Tensor(tuple(shape))


class TestMatmulShapes:
    """Property-style checks over a grid of attention geometries."""

    @pytest.mark.parametrize("heads", [1, 2, 4])
    @pytest.mark.parametrize("dk,n,m", [(8, 4, 4), (16, 12, 6), (4, 5, 9)])
    def test_scores_shape_and_macs(self, heads, dk, n, m):
        node = Node("s", "matmul", inputs=["q", "k"],
                    attrs={"transpose_b": True, "heads": heads})
        out = infer_shape(node, [_tensor(heads * dk, n, 1),
                                 _tensor(heads * dk, m, 1)])
        assert out.shape == (heads * m, n, 1)
        assert node.attrs["macs"] == n * m * heads * dk

    @pytest.mark.parametrize("heads", [1, 2, 4])
    @pytest.mark.parametrize("dv,n,m", [(8, 4, 4), (16, 12, 6), (4, 5, 9)])
    def test_context_shape_and_macs(self, heads, dv, n, m):
        node = Node("c", "matmul", inputs=["a", "v"], attrs={"heads": heads})
        out = infer_shape(node, [_tensor(heads * m, n, 1),
                                 _tensor(heads * dv, m, 1)])
        assert out.shape == (heads * dv, n, 1)
        assert node.attrs["macs"] == n * m * heads * dv

    def test_contraction_mismatch_rejected(self):
        node = Node("s", "matmul", inputs=["q", "k"],
                    attrs={"transpose_b": True})
        with pytest.raises(GraphError, match="contraction"):
            infer_shape(node, [_tensor(8, 4, 1), _tensor(6, 4, 1)])

    def test_heads_must_divide_channels(self):
        node = Node("s", "matmul", inputs=["q", "k"],
                    attrs={"transpose_b": True, "heads": 3})
        with pytest.raises(GraphError, match="heads"):
            infer_shape(node, [_tensor(8, 4, 1), _tensor(8, 4, 1)])

    def test_context_channel_mismatch_rejected(self):
        node = Node("c", "matmul", inputs=["a", "v"], attrs={"heads": 2})
        with pytest.raises(GraphError):
            infer_shape(node, [_tensor(9, 4, 1), _tensor(8, 4, 1)])


class TestElementwiseAndLayoutShapes:
    @pytest.mark.parametrize("op", ["softmax", "layernorm", "gelu"])
    @pytest.mark.parametrize("shape", [(8, 4, 1), (16, 9, 1), (32,)])
    def test_same_shape_ops(self, op, shape):
        node = Node("x", op, inputs=["p"])
        assert infer_shape(node, [_tensor(*shape)]).shape == shape

    @pytest.mark.parametrize("c,n", [(8, 4), (3, 17), (64, 64)])
    def test_transpose_swaps_axes(self, c, n):
        node = Node("t", "transpose", inputs=["p"])
        assert infer_shape(node, [_tensor(c, n, 1)]).shape == (n, c, 1)

    def test_transpose_rejects_flat_input(self):
        node = Node("t", "transpose", inputs=["p"])
        with pytest.raises(GraphError):
            infer_shape(node, [_tensor(32)])

    def test_reshape_preserves_size(self):
        node = Node("r", "reshape", inputs=["p"], attrs={"shape": (8, 16, 1)})
        assert infer_shape(node, [_tensor(8, 4, 4)]).shape == (8, 16, 1)

    def test_reshape_size_mismatch_rejected(self):
        node = Node("r", "reshape", inputs=["p"], attrs={"shape": (8, 15, 1)})
        with pytest.raises(GraphError, match="element count"):
            infer_shape(node, [_tensor(8, 4, 4)])

    def test_softmax_heads_must_divide_channels(self):
        node = Node("a", "softmax", inputs=["s"], attrs={"heads": 3})
        with pytest.raises(GraphError, match="heads"):
            infer_shape(node, [_tensor(8, 4, 1)])

    def test_softmax_zero_heads_rejected(self):
        node = Node("a", "softmax", inputs=["s"], attrs={"heads": 0})
        with pytest.raises(GraphError, match="heads must be >= 1"):
            infer_shape(node, [_tensor(8, 4, 1)])

    def test_softmax_heads_requires_token_layout(self):
        node = Node("a", "softmax", inputs=["s"], attrs={"heads": 2})
        with pytest.raises(GraphError, match="per-head"):
            infer_shape(node, [_tensor(10,)])

    def test_vmatmul_mac_count_encodes(self):
        """The widened 28-bit length field covers transformer-scale MAC
        counts (24 bits overflowed at tokens^2 x dim scale)."""
        from repro.isa import VectorInst, decode, encode

        inst = VectorInst(op="VMATMUL", src1=0, src2=4096, dst=8192,
                          length=128 * 512 * 256,  # px x tokens x dim
                          src_bytes=1024, src2_bytes=65536, dst_bytes=2048)
        assert decode(encode(inst)) == inst


class TestExecutorSemantics:
    """The numpy golden model agrees with a direct attention reference."""

    def _attention_graph(self, heads=2, dim=8, tokens=6) -> Graph:
        b = GraphBuilder("attn", (dim, tokens, 1))
        q = b.conv(dim, kernel=1, name="q")
        k = b.conv(dim, kernel=1, name="k", after="input")
        v = b.conv(dim, kernel=1, name="v", after="input")
        s = b.matmul(q, k, transpose_b=True, heads=heads, name="s")
        a = b.softmax(heads=heads, after=s, name="a")
        b.matmul(a, v, heads=heads, name="c")
        return b.build()

    def test_attention_matches_reference(self):
        heads, dim, tokens = 2, 8, 6
        g = self._attention_graph(heads, dim, tokens)
        x = np.random.default_rng(7).normal(size=(dim, tokens, 1))
        vals = execute(g, x)
        dk = dim // heads
        q = vals["q"].reshape(heads, dk, tokens)
        k = vals["k"].reshape(heads, dk, tokens)
        v = vals["v"].reshape(heads, dk, tokens)
        ref_s = np.einsum("hdn,hdm->hmn", q, k)
        e = np.exp(ref_s - ref_s.max(axis=1, keepdims=True))
        ref_a = e / e.sum(axis=1, keepdims=True)
        ref_c = np.einsum("hmn,hdm->hdn", ref_a, v)
        assert np.allclose(vals["s"].reshape(heads, tokens, tokens), ref_s)
        assert np.allclose(vals["a"].reshape(heads, tokens, tokens), ref_a)
        assert np.allclose(vals["c"].reshape(heads, dk, tokens), ref_c)

    def test_scores_scale_applied(self):
        """Scaled dot-product attention: the 1/sqrt(dk) factor lands on
        the scores (the timing model fuses it; the executor must not)."""
        b = GraphBuilder("scaled", (8, 4, 1))
        q = b.conv(8, kernel=1, name="q")
        k = b.conv(8, kernel=1, name="k", after="input")
        b.matmul(q, k, transpose_b=True, heads=2, scale=0.5, name="s")
        x = np.random.default_rng(5).normal(size=(8, 4, 1))
        vals = execute(b.build(), x)
        qv = vals["q"].reshape(2, 4, 4)
        kv = vals["k"].reshape(2, 4, 4)
        ref = np.einsum("hdn,hdm->hmn", qv, kv) * 0.5
        assert np.allclose(vals["s"].reshape(2, 4, 4), ref)

    def test_context_scale_applied(self):
        """scale is honored on the non-transpose (context) path too."""
        # input doubles as the scores: (heads*keys, queries) = (2*3, 3)
        b = GraphBuilder("ctx-scale", (6, 3, 1))
        v = b.conv(8, kernel=1, name="v", after="input")
        b.op("matmul", inputs=["input", v], heads=2, scale=0.25, name="c")
        x = np.random.default_rng(6).normal(size=(6, 3, 1))
        vals = execute(b.build(), x)
        s = x.reshape(2, 3, 3)
        vv = vals["v"].reshape(2, 4, 3)
        ref = np.einsum("hmn,hdm->hdn", s, vv) * 0.25
        assert np.allclose(vals["c"].reshape(2, 4, 3), ref)

    def test_attention_softmax_normalizes_over_keys(self):
        g = self._attention_graph()
        x = np.random.default_rng(3).normal(size=(8, 6, 1))
        a = execute(g, x)["a"].reshape(2, 6, 6)
        assert np.allclose(a.sum(axis=1), 1.0)

    def test_layernorm_normalizes_channels_per_token(self):
        b = GraphBuilder("ln", (16, 5, 1))
        b.layernorm(name="ln")
        vals = execute(b.build(), np.random.default_rng(0).normal(
            loc=3.0, scale=2.0, size=(16, 5, 1)))
        out = vals["ln"]
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_gelu_shape_and_asymptotes(self):
        b = GraphBuilder("g", (4, 3, 1))
        b.gelu(name="act")
        x = np.linspace(-6, 6, 12).reshape(4, 3, 1)
        out = execute(b.build(), x)["act"]
        assert out.shape == (4, 3, 1)
        assert np.allclose(out[x > 5], x[x > 5], atol=1e-3)   # ~identity
        assert np.allclose(out[x < -5], 0.0, atol=1e-3)       # ~zero

    def test_transpose_round_trip(self):
        b = GraphBuilder("t", (6, 4, 1))
        b.transpose(name="t1")
        b.transpose(name="t2")
        x = np.random.default_rng(1).normal(size=(6, 4, 1))
        vals = execute(b.build(), x)
        assert vals["t1"].shape == (4, 6, 1)
        assert np.allclose(vals["t2"], x)

    def test_vit_tiny_executes_end_to_end(self):
        g = vit_tiny((3, 16, 16), num_classes=5, dim=16, depth=1, heads=2)
        out = execute(g, np.random.default_rng(2).normal(size=(3, 16, 16)))
        logits = out[g.output_nodes[0].name]
        assert logits.shape == (5,)
        assert np.all(np.isfinite(logits))


class TestCompilerLowering:
    @pytest.fixture(scope="class")
    def compiled_vit(self):
        return compile_network(build_model("vit_tiny"), small_chip())

    def test_verify_program_passes(self, compiled_vit, small_cfg):
        verify_program(compiled_vit.program, small_cfg)

    def test_projections_in_crossbars_matmuls_on_vector_unit(self, compiled_vit):
        by_layer_units: dict[str, set[str]] = {}
        for program in compiled_vit.program.programs.values():
            for inst in program:
                if inst.layer:
                    by_layer_units.setdefault(inst.layer, set()).add(
                        type(inst).__name__)
        stage_ops = compiled_vit.program.meta["stage_ops"]
        for layer, op in stage_ops.items():
            if op == "matmul":
                assert "MvmInst" not in by_layer_units[layer], layer
            if op in ("conv", "fc"):
                assert "MvmInst" in by_layer_units[layer], layer

    def test_matmul_length_counts_all_macs(self, compiled_vit):
        pipeline = compiled_vit.pipeline
        for stage in pipeline:
            if stage.op != "matmul":
                continue
            emitted = sum(
                inst.length
                for program in compiled_vit.program.programs.values()
                for inst in program
                if isinstance(inst, VectorInst) and inst.op == "VMATMUL"
                and inst.layer == stage.name)
            assert emitted == stage.attrs["macs"], stage.name

    def test_instruction_mix_includes_attention_ops(self, compiled_vit):
        ops = {inst.op for program in compiled_vit.program.programs.values()
               for inst in program if isinstance(inst, VectorInst)}
        assert {"VMATMUL", "VSOFTMAX", "VLAYERNORM", "VGELU"} <= ops

    def test_gelu_fuses_into_mlp_conv(self, compiled_vit):
        mlp1 = compiled_vit.pipeline.stage("blk0_mlp1")
        assert "gelu" in mlp1.post_ops

    def test_reshape_folded_away(self, compiled_vit):
        names = {s.name for s in compiled_vit.pipeline}
        assert "to_tokens" not in names

    def test_split_changing_reshape_rejected(self, small_cfg):
        """Only pixel-axis relayouts may fold; a reshape that changes the
        channel/pixel factorization would miscompile downstream operand
        footprints, so the frontend must refuse it."""
        from repro.compiler import CompileError

        b = GraphBuilder("bad-reshape", (3, 8, 8))
        b.conv(16, kernel=3, padding=1)
        b.reshape((64, 16, 1))  # legal graph-level, not foldable
        b.layernorm()
        with pytest.raises(CompileError, match="channel/pixel split"):
            compile_network(b.build(), small_cfg)

    def test_utilization_first_also_compiles(self):
        result = compile_network(build_model("vit_tiny"),
                                 small_chip(mapping="utilization_first"))
        assert result.program.total_instructions > 0


class TestSimulation:
    @pytest.fixture(scope="class")
    def vit_report(self):
        return simulate("vit_tiny", small_chip())

    def test_nonzero_cycles_and_energy(self, vit_report):
        assert vit_report.cycles > 0
        assert vit_report.total_energy_pj > 0
        assert vit_report.energy_pj["vector"] > 0
        assert vit_report.energy_pj["xbar"] > 0

    def test_attention_layers_attributed_to_vector_unit(self, vit_report):
        scores = vit_report.layer_busy["blk0_scores"]
        assert scores.get("vector", 0) > 0
        assert scores.get("matrix", 0) == 0
        attn = vit_report.layer_busy["blk0_attn"]
        assert attn.get("vector", 0) > 0

    def test_projection_layers_attributed_to_matrix_unit(self, vit_report):
        assert vit_report.layer_busy["blk0_q"].get("matrix", 0) > 0
        assert vit_report.layer_busy["blk0_mlp1"].get("matrix", 0) > 0

    def test_op_class_breakdown(self, vit_report):
        by_op = op_class_breakdown(vit_report)
        assert by_op["matmul"].get("vector", 0) > 0
        assert "matrix" not in by_op["matmul"]
        assert by_op["softmax"].get("vector", 0) > 0
        assert by_op["layernorm"].get("vector", 0) > 0
        assert by_op["conv"].get("matrix", 0) > 0

    def test_attention_share_positive_for_vit_zero_for_cnn(self, vit_report,
                                                           small_cfg):
        assert attention_share(vit_report) > 0.05
        cnn = simulate(build_model("lenet5"), small_cfg)
        assert attention_share(cnn) == 0.0

    def test_stage_ops_survive_serialization(self, vit_report):
        """Saved reports keep the attribution metadata, so offline
        analysis sees the same op classes as the in-memory object."""
        import json

        meta = json.loads(vit_report.to_json())["meta"]
        assert meta["stage_ops"]["blk0_scores"] == "matmul"
        assert meta["stage_ops"]["blk0_q"] == "conv"

    def test_bert_tiny_simulates(self, small_cfg):
        report = simulate("bert_tiny", small_cfg)
        assert report.cycles > 0
        assert attention_share(report) > 0.05

    def test_softmax_costs_more_than_elementwise(self, small_cfg):
        """The special-op latency entry is actually applied: an identical
        simulation with a higher transcendental cost runs longer."""
        import dataclasses

        slow = dataclasses.replace(
            small_cfg,
            core=dataclasses.replace(small_cfg.core,
                                     vector_special_cycles_per_element=32))
        fast = simulate("vit_tiny", small_cfg)
        slower = simulate("vit_tiny", slow)
        assert slower.cycles > fast.cycles


class TestBatchedTransformer:
    def test_batched_vit_smoke(self, small_cfg):
        """Batching a real compiled transformer program: verifies, and
        pipelining beats serial latency."""
        net = vit_tiny((3, 16, 16), num_classes=4, dim=32, depth=1, heads=2)
        compiled = compile_network(net, small_cfg)
        batched = repeat_chip_program(compiled.program, 3)
        verify_program(batched, small_cfg)
        one = simulate(net, small_cfg)
        three = simulate(net, small_cfg, batch=3)
        assert three.cycles > one.cycles
        assert three.cycles < 3 * one.cycles
