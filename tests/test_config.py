"""Tests for the architecture configuration schema, validation, presets."""

import dataclasses

import pytest

from repro.config import (
    ArchConfig,
    ChipConfig,
    ConfigError,
    CoreConfig,
    CrossbarConfig,
    NocConfig,
    PRESETS,
    get_preset,
    mnsim_like_chip,
    paper_chip,
    scaled,
    small_chip,
    tiny_chip,
    validate,
)


class TestCrossbarConfig:
    def test_default_mvm_cycles_derivation(self):
        xbar = CrossbarConfig(rows=128, cols=128, input_bits=8, dac_bits=1,
                              adcs_per_crossbar=8, adc_cycles_per_sample=1)
        # 8 bit-serial phases x (128 cols / 8 ADCs) samples x 1 cycle
        assert xbar.dac_phases == 8
        assert xbar.samples_per_phase == 16
        assert xbar.mvm_cycles() == 128

    def test_explicit_latency_override(self):
        xbar = CrossbarConfig(mvm_latency_cycles=50)
        assert xbar.mvm_cycles() == 50

    def test_partial_dac_phase_rounds_up(self):
        assert CrossbarConfig(input_bits=8, dac_bits=3).dac_phases == 3


class TestSerialization:
    def test_json_roundtrip_identity(self):
        cfg = paper_chip()
        assert ArchConfig.from_json(cfg.to_json()) == cfg

    def test_roundtrip_preserves_modifications(self):
        cfg = paper_chip().with_rob_size(12)
        again = ArchConfig.from_json(cfg.to_json())
        assert again.core.rob_size == 12

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            ArchConfig.from_dict({"chip": {"mesh_rows": 2, "bogus": 1}})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            ArchConfig.from_dict({"flux_capacitor": True})

    def test_global_memory_xy_list_becomes_tuple(self):
        cfg = ArchConfig.from_dict({"chip": {"global_memory_xy": [1, 1]}})
        assert cfg.chip.global_memory_xy == (1, 1)

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "arch.json"
        cfg = small_chip()
        cfg.save(path)
        assert ArchConfig.load(path) == cfg


class TestValidation:
    def test_valid_defaults_pass(self):
        validate(ArchConfig())

    def test_negative_mesh_rejected(self):
        cfg = ArchConfig(chip=ChipConfig(mesh_rows=0))
        with pytest.raises(ConfigError, match="mesh_rows"):
            validate(cfg)

    def test_gmem_outside_mesh_rejected(self):
        cfg = ArchConfig(chip=ChipConfig(mesh_rows=2, mesh_cols=2,
                                         global_memory_xy=(5, 0)))
        with pytest.raises(ConfigError, match="global_memory_xy"):
            validate(cfg)

    def test_bad_mapping_name_rejected(self):
        cfg = ArchConfig()
        cfg = cfg.replaced(compiler=dataclasses.replace(
            cfg.compiler, mapping="fastest_first"))
        with pytest.raises(ConfigError, match="mapping"):
            validate(cfg)

    def test_dac_wider_than_input_rejected(self):
        cfg = ArchConfig(crossbar=CrossbarConfig(input_bits=4, dac_bits=8))
        with pytest.raises(ConfigError, match="dac_bits"):
            validate(cfg)

    def test_more_adcs_than_columns_rejected(self):
        cfg = ArchConfig(crossbar=CrossbarConfig(cols=4, adcs_per_crossbar=8))
        with pytest.raises(ConfigError, match="adcs_per_crossbar"):
            validate(cfg)

    def test_sync_window_one_rejected(self):
        cfg = ArchConfig(noc=NocConfig(sync_window=1))
        with pytest.raises(ConfigError, match="sync_window"):
            validate(cfg)

    def test_negative_energy_rejected(self):
        cfg = ArchConfig()
        cfg.energy.adc_pj_per_sample = -1.0
        with pytest.raises(ConfigError, match="adc_pj_per_sample"):
            validate(cfg)

    def test_error_message_lists_all_violations(self):
        cfg = ArchConfig(chip=ChipConfig(mesh_rows=0),
                         core=CoreConfig(rob_size=0))
        with pytest.raises(ConfigError) as err:
            validate(cfg)
        assert "mesh_rows" in str(err.value)
        assert "rob_size" in str(err.value)


class TestPresets:
    def test_paper_chip_matches_section_iv(self):
        cfg = paper_chip()
        assert cfg.chip.n_cores == 64
        assert cfg.core.crossbars_per_core == 512
        assert cfg.crossbar.rows == 128
        assert cfg.crossbar.cols == 128

    def test_all_presets_valid(self):
        for name in PRESETS:
            validate(get_preset(name))

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError, match="available"):
            get_preset("gigachip")

    def test_preset_kwargs_forwarded(self):
        assert get_preset("paper", rob_size=16).core.rob_size == 16

    def test_tiny_smaller_than_small(self):
        assert tiny_chip().chip.n_cores < small_chip().chip.n_cores

    def test_mnsim_preset_is_comm_bound(self):
        """The Fig. 5 preset uses a narrow NoC (see DESIGN.md)."""
        cfg = mnsim_like_chip()
        assert cfg.noc.link_bytes_per_cycle < NocConfig().link_bytes_per_cycle


class TestHelpers:
    def test_core_xy_row_major(self):
        cfg = paper_chip()
        assert cfg.core_xy(0) == (0, 0)
        assert cfg.core_xy(7) == (0, 7)
        assert cfg.core_xy(8) == (1, 0)
        assert cfg.core_xy(63) == (7, 7)

    def test_core_xy_out_of_range(self):
        with pytest.raises(ConfigError):
            paper_chip().core_xy(64)

    def test_with_rob_size_copies(self):
        cfg = paper_chip()
        other = cfg.with_rob_size(2)
        assert other.core.rob_size == 2
        assert cfg.core.rob_size != 2 or cfg is not other
        assert other.chip == cfg.chip

    def test_with_mapping_copies(self):
        cfg = paper_chip()
        other = cfg.with_mapping("utilization_first")
        assert other.compiler.mapping == "utilization_first"
        assert cfg.compiler.mapping == "performance_first"

    def test_scaled_cores(self):
        cfg = scaled(paper_chip(), cores=16)
        assert cfg.chip.n_cores == 16

    def test_scaled_rejects_non_square(self):
        with pytest.raises(ValueError, match="perfect square"):
            scaled(paper_chip(), cores=12)

    def test_scaled_crossbars(self):
        cfg = scaled(paper_chip(), crossbars_per_core=64)
        assert cfg.core.crossbars_per_core == 64
