"""Kernel- and model-equivalence suite.

The scheduler was rewritten (delta queue + bucketed near wheel + far heap,
see ``repro/sim/kernel.py``) and the model layer gained fast paths
(incremental ROB scoreboard + static blocker tables, per-entry ready
events, route-cached NoC, zero-frame unit issue); these tests pin the
observable semantics to the seed's, via golden traces recorded on the
pre-optimization implementations:

* seeded random kernel workloads mixing timed waits, AnyOf/AllOf, Fifo /
  Rendezvous / Mutex / Resource traffic — the full wake-order trace, final
  time and pending count must match the seed recording bit-for-bit;
* architecture-level workloads (a branchy scalar program, a contended
  NoC/ADC/gmem mesh) whose *entire* observable record — cycles, per-core
  stats, registers, NoC totals and the per-instruction completion trace,
  including same-cycle ordering — must match the pre-fast-path recording
  (wake-order pinning, not just end-state pinning);
* one end-to-end compile+simulate (``vgg8`` on the small chip) whose
  cycles, per-category energy and NoC totals must match the seed run.

Also hosts regression tests for the waiter-bookkeeping rework (O(1)
cancellation, double-removal, duplicate events in AnyOf).
"""

import json
from pathlib import Path

import pytest

from _arch_workload import run_arch_workload
from _kernel_workload import run_workload
from repro.sim import AllOf, AnyOf, Event, Simulator

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_workload_trace_matches_seed_kernel(seed):
    golden = json.loads((GOLDEN_DIR / f"kernel_trace_seed{seed}.json").read_text())
    got = json.loads(json.dumps(run_workload(seed)))
    assert got["now"] == golden["now"]
    assert got["pending"] == golden["pending"]
    assert got["trace"] == golden["trace"]


@pytest.mark.parametrize("name", ["branchy", "contended"])
def test_arch_workload_trace_matches_seed_models(name):
    """Model-layer fast paths are wake-order-equivalent to the seed
    models: every field of the record — including the completion trace's
    same-cycle event ordering — matches the golden recorded before the
    scoreboard/NoC/zero-frame rework.  Energy sums are floats whose
    accumulation order may legitimately differ within a cycle, so they
    get a tolerance; everything else is exact."""
    golden = json.loads((GOLDEN_DIR / f"arch_trace_{name}.json").read_text())
    got = json.loads(json.dumps(run_arch_workload(name)))
    for category, pj in golden["energy_pj"].items():
        assert got["energy_pj"][category] == pytest.approx(pj, rel=1e-12), category
    for key in golden:
        if key == "energy_pj":
            continue
        assert got[key] == golden[key], f"{name}: {key} diverged"


def test_simulate_vgg8_matches_seed_kernel():
    from repro import simulate, small_chip

    golden = json.loads((GOLDEN_DIR / "simulate_vgg8_small.json").read_text())
    report = simulate("vgg8", small_chip())
    assert report.cycles == golden["cycles"]
    assert report.instructions == golden["instructions"]
    assert report.cores_used == golden["cores_used"]
    assert report.total_energy_pj == pytest.approx(
        golden["total_energy_pj"], rel=1e-12)
    for category, pj in golden["energy_pj"].items():
        assert report.energy_pj[category] == pytest.approx(pj, rel=1e-12)
    for key, value in golden["noc"].items():
        assert report.noc[key] == value


class TestWaiterBookkeeping:
    """Regressions for the O(1) waiter-cancellation rework."""

    def test_anyof_cancels_sibling_waits(self):
        """After an AnyOf wake the process is deregistered everywhere."""
        sim = Simulator()
        a, b = Event(sim, "a"), Event(sim, "b")
        wakes = []

        def waiter():
            cause = yield AnyOf(a, b)
            wakes.append(cause.name)
            yield 1_000  # still alive; must NOT be woken by b

        sim.spawn(waiter())
        a.notify(delay=1)
        b.notify(delay=2)
        sim.run()
        assert wakes == ["a"]
        assert not a._waiters and not b._waiters

    def test_allof_double_removal_is_clean(self):
        """AllOf cleanup removes already-fired members without error.

        The seed kernel swallowed the resulting ValueError from
        ``list.remove``; removal is now an O(1) defined no-op, including
        under ``python -O``.
        """
        sim = Simulator()
        a, b, c = (Event(sim, n) for n in "abc")
        done = []

        def waiter():
            yield AllOf(a, b, c)
            done.append(sim.now)

        proc = sim.spawn(waiter())
        a.notify(delay=1)
        b.notify(delay=2)
        c.notify(delay=3)
        sim.run()
        assert done == [3]
        # explicit double removal is a no-op, not a swallowed error
        a._remove_waiter(proc)
        a._remove_waiter(proc)
        assert proc.done

    def test_anyof_duplicate_event_wakes_once(self):
        """AnyOf(e, e) must wake the process once per notification.

        The seed kernel's list-based waiters registered the process twice
        and double-stepped it; the dict-based set registers it once.
        """
        sim = Simulator()
        ev = Event(sim, "e")
        log = []

        def waiter():
            cause = yield AnyOf(ev, ev)
            log.append((sim.now, cause.name))
            yield 5
            log.append((sim.now, "timed"))

        sim.spawn(waiter())
        ev.notify(delay=2)
        sim.run()
        assert log == [(2, "e"), (7, "timed")]

    def test_event_fired_at_updates(self):
        sim = Simulator()
        ev = Event(sim)
        assert ev.fired_at is None
        ev.notify(delay=4)
        sim.run(detect_deadlock=False)
        assert ev.fired_at == 4


class TestSchedulerStructures:
    """Delta / near-wheel / far-heap specific orderings."""

    def test_fifo_order_across_delay_classes(self):
        """Same fire-cycle callbacks run in scheduling order regardless of
        which structure (delta, near bucket, far heap) they came from."""
        sim = Simulator()
        seen = []
        target = 300  # far for the first schedule, near later, delta at T

        def late_schedulers():
            yield target - 5
            sim.call_after(5, lambda _: seen.append("near"))
            yield 5
            sim.call_after(0, lambda _: seen.append("delta"))

        sim.call_after(target, lambda _: seen.append("far"))
        sim.spawn(late_schedulers())
        sim.run()
        assert seen == ["far", "near", "delta"]

    def test_long_and_short_delays_interleave(self):
        sim = Simulator()
        seen = []
        for delay in (500, 3, 129, 128, 127, 1, 0, 64):
            sim.call_after(delay, lambda _, d=delay: seen.append(d))
        sim.run()
        assert seen == [0, 1, 3, 64, 127, 128, 129, 500]

    def test_near_wheel_wraparound(self):
        """Delays that wrap the bucket ring repeatedly stay ordered."""
        sim = Simulator()
        seen = []

        def stepper():
            for _ in range(40):
                yield 97  # co-prime with the ring size
                seen.append(sim.now)

        sim.spawn(stepper())
        sim.run()
        assert seen == [97 * (i + 1) for i in range(40)]

    def test_pending_counts_all_structures(self):
        sim = Simulator()
        sim.call_after(0, lambda _: None)     # delta
        sim.call_after(5, lambda _: None)     # near bucket
        sim.call_after(1_000, lambda _: None)  # far heap
        assert sim.pending == 3
        sim.run()
        assert sim.pending == 0

    def test_stop_preserves_unprocessed_entries(self):
        sim = Simulator()
        seen = []
        sim.call_after(1, lambda _: (seen.append("a"), sim.stop()))
        sim.call_after(1, lambda _: seen.append("b"))
        sim.call_after(200, lambda _: seen.append("far"))
        sim.run()
        assert seen == ["a"]
        assert sim.pending == 2
        sim.run()
        assert seen == ["a", "b", "far"]


class TestClockRewind:
    """run(until < now) rewinds the clock; scheduled work must still fire
    at its original absolute cycles (review regression)."""

    def test_rewind_preserves_absolute_fire_times(self):
        sim = Simulator()
        fired = []
        sim.call_after(1000, lambda _: None)
        sim.run()
        assert sim.now == 1000
        sim.call_after(100, lambda _: fired.append(sim.now))   # near wheel
        sim.call_after(0, lambda _: fired.append(("delta", sim.now)))
        sim.call_after(5000, lambda _: fired.append(sim.now))  # far heap
        sim.run(until=500)
        assert sim.now == 500
        assert fired == []
        assert sim.pending == 3
        sim.run()
        assert fired == [("delta", 1000), 1100, 6000]


class TestDelayValidation:
    def test_call_after_rejects_non_integer_delay(self):
        import pytest as _pytest
        from repro.sim import SimulationError

        sim = Simulator()
        with _pytest.raises(SimulationError, match="integer"):
            sim.call_after(2.5, lambda _: None)
        with _pytest.raises(SimulationError, match="integer"):
            sim.call_at(sim.now + 1.5, lambda _: None)

    def test_notify_rejects_non_integer_delay(self):
        import pytest as _pytest

        sim = Simulator()
        with _pytest.raises(ValueError, match="integer"):
            Event(sim).notify(1.5)
