"""Tests for core execution: hand-written programs on the chip model.

These build small chip programs directly (no compiler) to pin down unit
latencies, hazard behaviour, ROB windowing, scalar semantics and energy.
"""

import dataclasses

import pytest

from repro.arch import ChipModel, run_program
from repro.config import tiny_chip
from repro.isa import (
    ChipProgram,
    FlowInfo,
    GroupTable,
    MvmInst,
    Program,
    ScalarInst,
    TransferInst,
    VectorInst,
)
from repro.sim import DeadlockError


def single_core_chip(instructions, *, groups=None, config=None):
    """Wrap an instruction list as a one-core chip program."""
    chip = ChipProgram(network="hand")
    table = groups or GroupTable(core=0)
    program = Program(core=0, groups=table)
    for inst in instructions:
        program.append(inst)
    chip.programs[0] = program.seal()
    return chip


def run_single(instructions, *, groups=None, config=None):
    config = config or tiny_chip()
    chip = single_core_chip(instructions, groups=groups)
    return run_program(chip, config)


class TestScalarExecution:
    def test_li_and_add(self):
        config = tiny_chip()
        chip = single_core_chip([
            ScalarInst(op="LI", rd=1, imm=30),
            ScalarInst(op="LI", rd=2, imm=12),
            ScalarInst(op="SADD", rd=3, rs1=1, rs2=2),
        ])
        model = ChipModel(chip, config)
        model.run()
        assert model.cores[0].regs[3] == 42

    def test_sub_mul_and_or(self):
        config = tiny_chip()
        chip = single_core_chip([
            ScalarInst(op="LI", rd=1, imm=10),
            ScalarInst(op="LI", rd=2, imm=3),
            ScalarInst(op="SSUB", rd=3, rs1=1, rs2=2),
            ScalarInst(op="SMUL", rd=4, rs1=3, rs2=2),
            ScalarInst(op="SAND", rd=5, rs1=1, rs2=2),
            ScalarInst(op="SOR", rd=6, rs1=1, rs2=2),
        ])
        model = ChipModel(chip, config)
        model.run()
        regs = model.cores[0].regs
        assert regs[3] == 7
        assert regs[4] == 21
        assert regs[5] == 10 & 3
        assert regs[6] == 10 | 3

    def test_loop_via_branch(self):
        """A countdown loop: LI r1,3; LI r2,1; LI r3,0;
        loop: SSUB r1,r1,r2; SBNE r1,r3,loop."""
        config = tiny_chip()
        chip = single_core_chip([
            ScalarInst(op="LI", rd=1, imm=3),
            ScalarInst(op="LI", rd=2, imm=1),
            ScalarInst(op="LI", rd=3, imm=0),
            ScalarInst(op="SSUB", rd=1, rs1=1, rs2=2),   # index 3
            ScalarInst(op="SBNE", rs1=1, rs2=3, target=3),
        ])
        model = ChipModel(chip, config)
        model.run()
        assert model.cores[0].regs[1] == 0

    def test_forward_jump_skips(self):
        config = tiny_chip()
        chip = single_core_chip([
            ScalarInst(op="LI", rd=1, imm=1),
            ScalarInst(op="SJMP", target=3),
            ScalarInst(op="LI", rd=1, imm=99),  # skipped
            ScalarInst(op="NOP"),
        ])
        model = ChipModel(chip, config)
        model.run()
        assert model.cores[0].regs[1] == 1

    def test_beq_taken_and_not_taken(self):
        config = tiny_chip()
        chip = single_core_chip([
            ScalarInst(op="LI", rd=1, imm=5),
            ScalarInst(op="LI", rd=2, imm=5),
            ScalarInst(op="SBEQ", rs1=1, rs2=2, target=4),
            ScalarInst(op="LI", rd=3, imm=111),  # skipped
            ScalarInst(op="NOP"),
        ])
        model = ChipModel(chip, config)
        model.run()
        assert model.cores[0].regs[3] == 0


class TestMatrixUnit:
    def test_mvm_latency_scales_with_count(self):
        config = tiny_chip()
        table = GroupTable(core=0)
        table.define("l", 0, 0, 1, config.crossbar.rows, config.crossbar.cols)
        one = run_single([MvmInst(group=0, src=0, src_bytes=64, dst=256,
                                  dst_bytes=256, count=1)], groups=table)
        table2 = GroupTable(core=0)
        table2.define("l", 0, 0, 1, config.crossbar.rows, config.crossbar.cols)
        four = run_single([MvmInst(group=0, src=0, src_bytes=64, dst=256,
                                   dst_bytes=256, count=4)], groups=table2)
        assert four.cycles > one.cycles
        assert four.cycles >= 4 * config.crossbar.mvm_cycles()

    def test_independent_groups_overlap(self):
        config = tiny_chip().with_rob_size(8)
        table = GroupTable(core=0)
        for r in range(4):
            table.define("l", 0, r, 1, 64, 64)
        insts = [MvmInst(group=g, src=0, src_bytes=64, dst=1024 + g * 512,
                         dst_bytes=256, count=4) for g in range(4)]
        overlapped = run_single(insts, groups=table, config=config)

        serial_cfg = tiny_chip().with_rob_size(1)
        table2 = GroupTable(core=0)
        for r in range(4):
            table2.define("l", 0, r, 1, 64, 64)
        serial = run_single(insts, groups=table2, config=serial_cfg)
        assert overlapped.cycles < serial.cycles

    def test_same_group_serializes(self):
        """Structural hazard: two MVMs on one group never overlap."""
        config = tiny_chip().with_rob_size(8)
        table = GroupTable(core=0)
        table.define("l", 0, 0, 1, 64, 64)
        insts = [MvmInst(group=0, src=0, src_bytes=64, dst=1024 + i * 512,
                         dst_bytes=256, count=2) for i in range(3)]
        raw = run_single(insts, groups=table, config=config)
        assert raw.cycles >= 3 * 2 * config.crossbar.mvm_cycles()

    def test_shared_adc_domain_serializes(self):
        base = tiny_chip().with_rob_size(8)
        constrained = dataclasses.replace(base, core=dataclasses.replace(
            base.core, shared_adc_domains=1))

        def build():
            table = GroupTable(core=0)
            for r in range(4):
                table.define("l", 0, r, 1, 64, 64)
            return table, [MvmInst(group=g, src=0, src_bytes=64,
                                   dst=1024 + g * 512, dst_bytes=256,
                                   count=2) for g in range(4)]

        t1, insts = build()
        free = run_single(insts, groups=t1, config=base)
        t2, insts2 = build()
        tight = run_single(insts2, groups=t2, config=constrained)
        assert tight.cycles > free.cycles

    def test_mvm_energy_charged(self):
        config = tiny_chip()
        table = GroupTable(core=0)
        table.define("l", 0, 0, 2, 64, 128)
        raw = run_single([MvmInst(group=0, src=0, src_bytes=64, dst=256,
                                  dst_bytes=512, count=3)], groups=table,
                         config=config)
        e = config.energy
        expected_xbar = e.xbar_read_pj_per_cell * 64 * 128 * 3
        assert raw.energy_pj["xbar"] == pytest.approx(expected_xbar)
        assert raw.energy_pj["adc"] > 0
        assert raw.energy_pj["dac"] > 0

    def test_mvm_energy_matches_energy_meter(self):
        """The matrix unit's inlined per-instruction charges must equal
        what :class:`EnergyMeter` computes for the same MVM — the hot
        path hand-copies the formulas, this pins the copies together
        (and the no-ADC callback path to the ADC coroutine path, which
        share the charge site)."""
        from repro.arch.energy import EnergyMeter

        config = tiny_chip()
        table = GroupTable(core=0)
        table.define("l", 0, 0, 2, 64, 128)
        inst = MvmInst(group=0, src=0, src_bytes=64, dst=256,
                       dst_bytes=512, count=3)
        raw = run_single([inst], groups=table, config=config)

        reference = EnergyMeter()
        reference.mvm(config.energy, 64, 128, config.crossbar.dac_phases, 3)
        in_bytes = 3 * 64 * config.compiler.activation_bytes
        reference.local_mem(config.energy, in_bytes + inst.dst_bytes)
        for category in ("xbar", "dac", "adc", "local_mem"):
            assert raw.energy_pj[category] == reference.pj[category], category


class TestVectorUnit:
    def test_latency_scales_with_length(self):
        short = run_single([VectorInst(op="VRELU", src1=0, src_bytes=32,
                                       dst=256, dst_bytes=32, length=32)])
        long = run_single([VectorInst(op="VRELU", src1=0, src_bytes=4096,
                                      dst=8192, dst_bytes=4096, length=4096)])
        assert long.cycles > short.cycles

    def test_vector_unit_is_serial(self):
        config = tiny_chip().with_rob_size(8)
        insts = [VectorInst(op="VRELU", src1=i * 1024, src_bytes=512,
                            dst=16384 + i * 1024, dst_bytes=512, length=512)
                 for i in range(4)]
        raw = run_single(insts, config=config)
        one = run_single([insts[0]], config=config)
        assert raw.cycles >= 3 * (one.cycles - 10)

    def test_raw_chain_orders_operations(self):
        """VRELU reading the MVM's output waits for it."""
        config = tiny_chip()
        table = GroupTable(core=0)
        table.define("l", 0, 0, 1, 64, 64)
        raw = run_single([
            MvmInst(group=0, src=0, src_bytes=64, dst=1024, dst_bytes=256,
                    count=2),
            VectorInst(op="VRELU", src1=1024, src_bytes=256, dst=2048,
                       dst_bytes=256, length=64),
        ], groups=table, config=config)
        assert raw.cycles >= 2 * config.crossbar.mvm_cycles()

    def test_vector_energy_charged(self):
        config = tiny_chip()
        raw = run_single([VectorInst(op="VADD", src1=0, src2=512, dst=1024,
                                     dst_bytes=256, src_bytes=256,
                                     length=64)], config=config)
        assert raw.energy_pj["vector"] == pytest.approx(
            config.energy.vector_pj_per_element * 64)

    def test_vector_energy_matches_energy_meter(self):
        """The vector unit's inlined charges must equal
        :meth:`EnergyMeter.vector_op` for the same instruction (the hot
        loop hand-copies the formula — this pins the copy)."""
        from repro.arch.energy import EnergyMeter

        config = tiny_chip()
        inst = VectorInst(op="VADD", src1=0, src2=512, dst=1024,
                          dst_bytes=256, src_bytes=256, length=64)
        raw = run_single([inst], config=config)
        reference = EnergyMeter()
        reference.vector_op(config.energy, inst.length,
                            inst.src_bytes * 2 + inst.dst_bytes)
        assert raw.energy_pj["vector"] == reference.pj["vector"]
        assert raw.energy_pj["local_mem"] == reference.pj["local_mem"]

    def test_vmatmul_energy_matches_energy_meter(self):
        """The inlined VMATMUL MAC-stream charge must equal
        :meth:`EnergyMeter.vector_macs` (pins the hand-copied formula)."""
        from repro.arch.energy import EnergyMeter

        config = tiny_chip()
        inst = VectorInst(op="VMATMUL", src1=0, src2=512, dst=4096,
                          length=2048, src_bytes=128, src2_bytes=1024,
                          dst_bytes=256)
        raw = run_single([inst], config=config)
        reference = EnergyMeter()
        reference.vector_macs(config.energy, inst.length,
                              inst.src_bytes + inst.src2_bytes
                              + inst.dst_bytes)
        assert raw.energy_pj["vector"] == reference.pj["vector"]
        assert raw.energy_pj["local_mem"] == reference.pj["local_mem"]

    @pytest.mark.parametrize("op", ["VSOFTMAX", "VLAYERNORM", "VGELU"])
    def test_special_op_energy_matches_energy_meter(self, op):
        """The inlined transcendental-op charge must equal
        :meth:`EnergyMeter.vector_special_op` (pins the hand copy)."""
        from repro.arch.energy import EnergyMeter

        config = tiny_chip()
        inst = VectorInst(op=op, src1=0, dst=4096, length=96,
                          src_bytes=96, dst_bytes=96)
        raw = run_single([inst], config=config)
        reference = EnergyMeter()
        reference.vector_special_op(config.energy, inst.length,
                                    inst.src_bytes + inst.dst_bytes)
        assert raw.energy_pj["vector"] == reference.pj["vector"]
        assert raw.energy_pj["local_mem"] == reference.pj["local_mem"]

    def test_special_op_latency_scales_with_cycles_per_element(self):
        """Transcendental ops take vector_special_cycles_per_element x
        the ALU time of a plain element-wise op of the same length."""
        config = tiny_chip()
        plain = VectorInst(op="VRELU", src1=0, dst=4096, length=256,
                           src_bytes=256, dst_bytes=256)
        special = VectorInst(op="VGELU", src1=0, dst=4096, length=256,
                             src_bytes=256, dst_bytes=256)
        lanes = config.core.vector_lanes
        factor = config.core.vector_special_cycles_per_element
        t_plain = run_single([plain], config=config).cycles
        t_special = run_single([special], config=config).cycles
        assert t_special - t_plain == (-(-256 * factor // lanes)
                                       - (-(-256 // lanes)))


class TestTransferAndRob:
    def test_two_core_send_recv(self):
        config = tiny_chip()
        chip = ChipProgram(network="pair")
        p0 = Program(core=0, groups=GroupTable(core=0))
        p0.append(TransferInst(op="SEND", peer=1, addr=0, bytes=128, flow=0,
                               seq=0, layer="l"))
        chip.programs[0] = p0.seal()
        p1 = Program(core=1, groups=GroupTable(core=1))
        p1.append(TransferInst(op="RECV", peer=0, addr=0, bytes=128, flow=0,
                               seq=0, layer="l"))
        chip.programs[1] = p1.seal()
        chip.flows[0] = FlowInfo(flow_id=0, src_core=0, dst_core=1,
                                 layer="l", n_messages=1,
                                 bytes_per_message=128, window=2)
        raw = run_program(chip, config)
        assert raw.cycles > 0
        assert raw.noc["messages"] == 1

    def test_missing_sender_deadlocks_with_diagnostics(self):
        config = tiny_chip()
        chip = ChipProgram(network="broken")
        p1 = Program(core=1, groups=GroupTable(core=1))
        p1.append(TransferInst(op="RECV", peer=0, addr=0, bytes=128, flow=0,
                               seq=0))
        chip.programs[1] = p1.seal()
        chip.flows[0] = FlowInfo(flow_id=0, src_core=0, dst_core=1,
                                 layer="l", n_messages=1,
                                 bytes_per_message=128, window=2)
        with pytest.raises(DeadlockError, match="core 1"):
            run_program(chip, config)

    def test_max_cycles_guard(self):
        config = tiny_chip()
        chip = ChipProgram(network="slow")
        table = GroupTable(core=0)
        table.define("l", 0, 0, 1, 64, 64)
        p = Program(core=0, groups=table)
        for i in range(50):
            p.append(MvmInst(group=0, src=0, src_bytes=64, dst=1024,
                             dst_bytes=256, count=8))
        chip.programs[0] = p.seal()
        with pytest.raises(DeadlockError, match="max_cycles"):
            run_program(chip, config, max_cycles=100)

    def test_load_store_roundtrip(self):
        config = tiny_chip()
        raw = run_single([
            TransferInst(op="LOAD", peer=0, addr=0, bytes=256, flow=0, seq=0),
            TransferInst(op="STORE", peer=0, addr=0, bytes=256, flow=0, seq=0),
        ], config=config)
        assert raw.noc["gmem_read"] == 256
        assert raw.noc["gmem_written"] == 256

    def test_rob_stall_counted_when_window_small(self):
        config = tiny_chip().with_rob_size(1)
        table = GroupTable(core=0)
        for r in range(4):
            table.define("l", 0, r, 1, 64, 64)
        insts = [MvmInst(group=g, src=0, src_bytes=64, dst=1024 + g * 512,
                         dst_bytes=256, count=2) for g in range(4)]
        chip = single_core_chip(insts, groups=table)
        model = ChipModel(chip, config)
        model.run()
        assert model.cores[0].rob_stall_cycles > 0

    def test_per_layer_busy_recorded(self):
        config = tiny_chip()
        table = GroupTable(core=0)
        table.define("mylayer", 0, 0, 1, 64, 64)
        raw = run_single([MvmInst(group=0, src=0, src_bytes=64, dst=1024,
                                  dst_bytes=256, count=1, layer="mylayer")],
                         groups=table, config=config)
        assert raw.layer_busy["mylayer"]["matrix"] > 0

    def test_leakage_integrated_over_runtime(self):
        config = tiny_chip()
        raw = run_single([VectorInst(op="VRELU", src1=0, src_bytes=1024,
                                     dst=4096, dst_bytes=1024, length=1024)],
                         config=config)
        assert raw.energy_pj["leakage"] > 0
