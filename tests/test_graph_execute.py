"""Tests for the numpy functional reference executor."""

import numpy as np
import pytest

from repro.graph import GraphBuilder, GraphError, execute, random_weights
from repro.models import build_model


def _input_for(graph, seed=0):
    shape = graph.input_nodes[0].output.shape
    return np.random.default_rng(seed).normal(size=shape)


class TestOperators:
    def test_conv_identity_kernel(self):
        """A 1x1 conv with an identity weight matrix is a channel copy."""
        b = GraphBuilder("t", (2, 4, 4))
        b.conv(2, kernel=1, name="c")
        g = b.build()
        x = _input_for(g)
        w = {"c": np.eye(2).reshape(2, 2, 1, 1)}
        out = execute(g, x, w)["c"]
        np.testing.assert_allclose(out, x)

    def test_conv_matches_manual_dot(self):
        b = GraphBuilder("t", (1, 3, 3))
        b.conv(1, kernel=3, name="c")
        g = b.build()
        x = _input_for(g)
        w = {"c": np.arange(9, dtype=float).reshape(1, 1, 3, 3)}
        out = execute(g, x, w)["c"]
        assert out.shape == (1, 1, 1)
        assert out[0, 0, 0] == pytest.approx(float((x[0] * w["c"][0, 0]).sum()))

    def test_conv_stride_subsamples(self):
        b = GraphBuilder("t", (1, 4, 4))
        b.conv(1, kernel=1, stride=2, name="c")
        g = b.build()
        x = _input_for(g)
        w = {"c": np.ones((1, 1, 1, 1))}
        out = execute(g, x, w)["c"]
        np.testing.assert_allclose(out[0], x[0, ::2, ::2])

    def test_relu_clamps(self, residual_net):
        values = execute(residual_net, _input_for(residual_net))
        assert (values["stem_relu"] >= 0).all()

    def test_maxpool_value(self):
        b = GraphBuilder("t", (1, 2, 2))
        b.maxpool(2, name="p")
        g = b.build()
        x = np.array([[[1.0, 5.0], [3.0, 2.0]]])
        out = execute(g, x)["p"]
        assert out[0, 0, 0] == 5.0

    def test_avgpool_value(self):
        b = GraphBuilder("t", (1, 2, 2))
        b.avgpool(2, name="p")
        g = b.build()
        x = np.array([[[1.0, 5.0], [3.0, 3.0]]])
        assert execute(g, x)["p"][0, 0, 0] == pytest.approx(3.0)

    def test_global_avgpool_is_mean(self):
        b = GraphBuilder("t", (3, 4, 4))
        b.global_avgpool(name="gap")
        g = b.build()
        x = _input_for(g)
        out = execute(g, x)["gap"]
        np.testing.assert_allclose(out[:, 0, 0], x.mean(axis=(1, 2)))

    def test_add_sums_branches(self, residual_net):
        values = execute(residual_net, _input_for(residual_net))
        np.testing.assert_allclose(
            values["join"], values["main2"] + values["stem_relu"])

    def test_concat_stacks_channels(self, branch_net):
        values = execute(branch_net, _input_for(branch_net))
        np.testing.assert_allclose(
            values["cat"],
            np.concatenate([values["left_relu"], values["right_relu"]], axis=0))

    def test_flatten_preserves_values(self):
        b = GraphBuilder("t", (2, 3, 3))
        b.flatten(name="f")
        g = b.build()
        x = _input_for(g)
        np.testing.assert_allclose(execute(g, x)["f"], x.reshape(-1))

    def test_softmax_normalizes(self):
        b = GraphBuilder("t", (8,))
        b.fc(4, name="fc")
        b.softmax(name="sm")
        g = b.build()
        out = execute(g, _input_for(g))["sm"]
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()

    def test_fc_is_matvec(self):
        b = GraphBuilder("t", (3,))
        b.fc(2, name="fc")
        g = b.build()
        x = np.array([1.0, 2.0, 3.0])
        w = {"fc": np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 2.0]])}
        np.testing.assert_allclose(execute(g, x, w)["fc"], [1.0, 6.0])

    def test_dropout_batchnorm_identity(self):
        b = GraphBuilder("t", (2, 4, 4))
        b.batchnorm(name="bn")
        b.dropout(name="do")
        g = b.build()
        x = _input_for(g)
        values = execute(g, x)
        np.testing.assert_allclose(values["do"], x)


class TestHarness:
    def test_every_value_matches_inferred_shape(self, residual_net):
        values = execute(residual_net, _input_for(residual_net))
        for name, value in values.items():
            assert value.shape == residual_net.node(name).output.shape

    def test_random_weights_cover_all_weight_nodes(self):
        g = build_model("vgg8")
        weights = random_weights(g)
        weight_nodes = {n.name for n in g.nodes.values()
                        if n.op in ("conv", "fc")}
        assert set(weights) == weight_nodes

    def test_random_weights_deterministic(self):
        g = build_model("mlp")
        a = random_weights(g, seed=7)
        b = random_weights(g, seed=7)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_missing_weights_rejected(self):
        b = GraphBuilder("t", (2, 4, 4))
        b.conv(2, kernel=1, name="c")
        g = b.build()
        with pytest.raises(GraphError, match="no weights"):
            execute(g, _input_for(g), weights={})

    def test_wrong_input_shape_rejected(self):
        g = build_model("mlp")
        with pytest.raises(GraphError, match="does not match"):
            execute(g, np.zeros((3, 3)))

    def test_wrong_weight_shape_rejected(self):
        b = GraphBuilder("t", (2, 4, 4))
        b.conv(2, kernel=1, name="c")
        g = b.build()
        with pytest.raises(GraphError, match="weight shape"):
            execute(g, _input_for(g), weights={"c": np.zeros((9, 9))})

    @pytest.mark.parametrize("name", ["lenet5", "mlp", "vgg8", "resnet18",
                                      "squeezenet"])
    def test_zoo_networks_execute(self, name):
        g = build_model(name)
        out = execute(g, _input_for(g))[g.output_nodes[0].name]
        assert out.shape == (10,)
        assert np.isfinite(out).all()
