"""Public-API snapshot: pins the exported surface against silent drift.

If a PR intentionally changes the public surface, update the snapshots
here *in the same PR* — that is the point: the diff makes the surface
change visible and reviewed instead of accidental.
"""

import repro
import repro.engine
import repro.runner
import repro.serve

ROOT_ALL = [
    "ArchConfig",
    "Engine",
    "JobSpec",
    "MODELS",
    "SimReport",
    "SweepJob",
    "__version__",
    "build_model",
    "compare_mappings",
    "compare_with_baseline",
    "compile_model",
    "default_engine",
    "get_preset",
    "mnsim_like_chip",
    "paper_chip",
    "run_sweep",
    "simulate",
    "small_chip",
    "sweep",
    "sweep_rob",
    "tiny_chip",
]

ENGINE_ALL = [
    "DecodeSession",
    "Engine",
    "JobFailed",
    "JobPoisoned",
    "JobSpec",
    "JobTimeout",
    "PoolUnavailable",
    "WorkerPool",
    "default_engine",
    "load_specs",
    "resolve_engine",
    "save_specs",
]

RUNNER_ALL = [
    "BaselineComparison",
    "MappingComparison",
    "MixReport",
    "RobSweep",
    "SimReport",
    "SweepJob",
    "compare_mappings",
    "compare_with_baseline",
    "compile_model",
    "resolve_network",
    "run_sweep",
    "simulate",
    "sweep",
    "sweep_rob",
]

TUNE_ALL = [
    "Candidate",
    "CostEstimate",
    "CostModel",
    "OBJECTIVES",
    "TuneEntry",
    "TuneReport",
    "Tuner",
    "evaluate_jobs",
]

SERVE_ALL = [
    "Draining",
    "JobRecord",
    "JobStore",
    "Overloaded",
    "STATES",
    "ServeHTTPServer",
    "ServeHandler",
    "ServeService",
    "TERMINAL_STATES",
    "UnknownJob",
    "config_key",
    "serve_http",
]

#: the Engine's service surface; future PRs must not silently drop any.
ENGINE_METHODS = [
    "as_completed",
    "clear_caches",
    "close",
    "compile",
    "compile_for",
    "compile_stats",
    "decode_session",
    "map",
    "pool_size",
    "pool_stats",
    "resolve_network",
    "run",
    "serve_mix",
    "simulate",
    "step_template",
    "submit",
    "terminate",
]

#: every JobSpec field, in declaration order — the JSON schema of
#: ``pimsim batch`` / ``pimsim serve`` job files.
JOBSPEC_FIELDS = [
    "network",
    "config",
    "mapping",
    "rob_size",
    "imagenet",
    "batch",
    "max_cycles",
    "tag",
    "attention_shards",
    "timeout",
    "faults",
    "decode_steps",
    "kv_tokens",
    "fidelity",
]

#: every pool-telemetry key ``Engine.pool_stats()`` reports, pooled or
#: not — admission control and ``/readyz`` build on these.
POOL_STATS_KEYS = [
    "broken",
    "ewma_service_s",
    "in_flight",
    "poisoned",
    "queue_depth",
    "respawns",
    "retries",
    "size",
    "timeouts",
]


def test_root_all_pinned():
    assert sorted(repro.__all__) == ROOT_ALL


def test_engine_all_pinned():
    assert sorted(repro.engine.__all__) == ENGINE_ALL


def test_runner_all_pinned():
    assert sorted(repro.runner.__all__) == RUNNER_ALL


def test_root_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_engine_names_resolve():
    for name in repro.engine.__all__:
        assert getattr(repro.engine, name) is not None, name


def test_serve_all_pinned():
    assert sorted(repro.serve.__all__) == sorted(SERVE_ALL)


def test_tune_all_pinned():
    import repro.tune
    assert sorted(repro.tune.__all__) == sorted(TUNE_ALL)


def test_tune_names_resolve():
    import repro.tune
    for name in repro.tune.__all__:
        assert getattr(repro.tune, name) is not None, name


def test_serve_names_resolve():
    for name in repro.serve.__all__:
        assert getattr(repro.serve, name) is not None, name


def test_engine_service_surface():
    for name in ENGINE_METHODS:
        assert hasattr(repro.Engine, name), name


def test_pool_stats_keys_pinned():
    engine = repro.Engine(repro.tiny_chip())
    try:
        assert sorted(engine.pool_stats()) == POOL_STATS_KEYS
    finally:
        engine.close()


def test_sweepjob_is_a_jobspec():
    assert issubclass(repro.SweepJob, repro.JobSpec)


def test_jobspec_fields_pinned():
    from dataclasses import fields
    assert [f.name for f in fields(repro.JobSpec)] == JOBSPEC_FIELDS


def test_fidelities_pinned():
    """The fidelity enum is API surface: job files, CLI flags and the
    config schema all validate against it."""
    from repro.config import FIDELITIES
    assert FIDELITIES == ("cycle", "fast")


def test_simreport_carries_fidelity():
    from dataclasses import fields
    names = [f.name for f in fields(repro.SimReport)]
    assert "fidelity" in names
    for prop in ("analytic_runs", "fallback_events"):
        assert isinstance(getattr(repro.SimReport, prop), property), prop
