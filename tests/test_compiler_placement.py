"""Tests for placement data-structure views and invariants."""

import pytest

from repro.compiler import CompileError, Slice, StagePlan, build_pipeline
from repro.compiler.mapping.utilization_first import (
    _merge_slices,
    estimate_stage_memory,
)
from repro.compiler.tiling import WeightTiling
from repro.config import small_chip
from tests.conftest import build_chain_net


def _plan(rows=256, cols=256, copies=1):
    pipe = build_pipeline(build_chain_net())
    stage = pipe.stage("conv1")
    tiling = WeightTiling(rows, cols, 128, 128)
    return StagePlan(stage=stage, tiling=tiling, copies=copies)


class TestSlice:
    def test_tile_count(self):
        sl = Slice(core=0, copy=0, row_lo=0, row_hi=3, col_lo=1, col_hi=3)
        assert sl.n_tiles == 6

    def test_empty_slice_rejected(self):
        with pytest.raises(CompileError):
            Slice(core=0, copy=0, row_lo=2, row_hi=2, col_lo=0, col_hi=1)


class TestStagePlanViews:
    def test_cores_in_first_appearance_order(self):
        plan = _plan()
        plan.slices = [
            Slice(core=5, copy=0, row_lo=0, row_hi=2, col_lo=0, col_hi=1),
            Slice(core=2, copy=0, row_lo=0, row_hi=2, col_lo=1, col_hi=2),
            Slice(core=5, copy=1, row_lo=0, row_hi=2, col_lo=0, col_hi=2),
        ]
        assert plan.cores == [5, 2]

    def test_home_core_prefers_heaviest(self):
        plan = _plan()
        plan.slices = [
            Slice(core=1, copy=0, row_lo=0, row_hi=1, col_lo=0, col_hi=1),
            Slice(core=3, copy=0, row_lo=1, row_hi=2, col_lo=0, col_hi=2),
            Slice(core=3, copy=0, row_lo=0, row_hi=1, col_lo=1, col_hi=2),
        ]
        assert plan.home_core == 3

    def test_home_core_without_slices_raises(self):
        with pytest.raises(CompileError):
            _plan().home_core

    def test_owned_col_blocks_requires_all_rows(self):
        plan = _plan()
        plan.slices = [
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=0, col_hi=1),
            Slice(core=0, copy=0, row_lo=0, row_hi=1, col_lo=1, col_hi=2),
            Slice(core=1, copy=0, row_lo=1, row_hi=2, col_lo=1, col_hi=2),
        ]
        assert plan.owned_col_blocks(0, 0) == {0}
        assert plan.owned_col_blocks(1, 0) == set()

    def test_is_split_detects_row_splits(self):
        plan = _plan()
        plan.slices = [
            Slice(core=0, copy=0, row_lo=0, row_hi=1, col_lo=0, col_hi=2),
            Slice(core=1, copy=0, row_lo=1, row_hi=2, col_lo=0, col_hi=2),
        ]
        assert plan.is_split()

    def test_strip_distribution_is_not_split(self):
        plan = _plan()
        plan.slices = [
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=0, col_hi=1),
            Slice(core=1, copy=0, row_lo=0, row_hi=2, col_lo=1, col_hi=2),
        ]
        assert not plan.is_split()

    def test_validate_catches_gap(self):
        plan = _plan()
        plan.slices = [
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=0, col_hi=1),
        ]
        with pytest.raises(CompileError, match="covered"):
            plan.validate()

    def test_validate_catches_double_coverage(self):
        plan = _plan()
        plan.slices = [
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=0, col_hi=2),
            Slice(core=1, copy=0, row_lo=0, row_hi=1, col_lo=0, col_hi=1),
        ]
        with pytest.raises(CompileError, match="covered"):
            plan.validate()

    def test_col_cells_counts_actual_columns(self):
        plan = _plan(rows=128, cols=200)  # blocks of 128 + 72
        plan.slices = [
            Slice(core=0, copy=0, row_lo=0, row_hi=1, col_lo=0, col_hi=2),
        ]
        assert plan.col_cells_on(0) == 200

    def test_pixel_share_empty_for_excess_copies(self):
        plan = _plan(copies=4)
        lo, hi = plan.pixel_share(3, 0, 2)  # only 2 pixels for 4 copies
        assert lo == hi


class TestMergeSlices:
    def test_adjacent_full_strips_merge(self):
        merged = _merge_slices([
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=0, col_hi=1),
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=1, col_hi=2),
        ])
        assert len(merged) == 1
        assert merged[0].col_hi == 2

    def test_different_cores_do_not_merge(self):
        merged = _merge_slices([
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=0, col_hi=1),
            Slice(core=1, copy=0, row_lo=0, row_hi=2, col_lo=1, col_hi=2),
        ])
        assert len(merged) == 2

    def test_partial_rows_do_not_merge(self):
        merged = _merge_slices([
            Slice(core=0, copy=0, row_lo=0, row_hi=1, col_lo=0, col_hi=1),
            Slice(core=0, copy=0, row_lo=0, row_hi=2, col_lo=1, col_hi=2),
        ])
        assert len(merged) == 2


class TestMemoryEstimate:
    def test_estimate_positive_and_scales(self):
        cfg = small_chip()
        pipe = build_pipeline(build_chain_net(channels=8))
        big_pipe = build_pipeline(build_chain_net(channels=32))
        small_est = estimate_stage_memory(pipe.stage("conv2"), pipe, cfg)
        big_est = estimate_stage_memory(big_pipe.stage("conv2"), big_pipe, cfg)
        assert 0 < small_est < big_est

    def test_estimate_upper_bounds_codegen(self):
        """The mapper's estimate must never be below what codegen actually
        allocates for a single-stage-per-core placement."""
        from repro.compiler import compile_network
        cfg = small_chip()
        net = build_chain_net(channels=32, size=16)
        pipe = build_pipeline(net)
        result = compile_network(net, cfg)
        for name, plan in result.placement.plans.items():
            est = estimate_stage_memory(pipe.stage(name), pipe, cfg)
            for core in plan.cores:
                used = result.program.programs[core].local_memory_used
                # the core may host aux stages too; the estimate only
                # needs to be the right order of magnitude per stage
                assert est > 0
                assert used <= cfg.core.local_memory_bytes
