"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.tiling import WeightTiling
from repro.graph import conv_out_hw
from repro.isa import (
    MvmInst,
    ScalarInst,
    TransferInst,
    VectorInst,
    decode,
    encode,
    ranges_overlap,
)
from repro.sim import Fifo, Simulator, TimeWeighted


# -- range algebra -------------------------------------------------------------

ranges = st.tuples(st.integers(0, 10_000), st.integers(1, 500)).map(
    lambda t: (t[0], t[0] + t[1]))


@given(ranges, ranges)
def test_overlap_is_symmetric(a, b):
    assert ranges_overlap(a, b) == ranges_overlap(b, a)


@given(ranges)
def test_range_overlaps_itself(a):
    assert ranges_overlap(a, a)


@given(ranges, ranges)
def test_disjoint_iff_ordered(a, b):
    disjoint = a[1] <= b[0] or b[1] <= a[0]
    assert ranges_overlap(a, b) == (not disjoint)


# -- instruction encoding -------------------------------------------------------

mvm_insts = st.builds(
    MvmInst,
    group=st.integers(0, 2**20 - 1),
    src=st.integers(0, 2**26 - 1),
    src_bytes=st.integers(0, 2**26 - 1),
    dst=st.integers(0, 2**26 - 1),
    dst_bytes=st.integers(0, 2**26 - 1),
    count=st.integers(1, 2**20 - 1),
)

vector_insts = st.builds(
    VectorInst,
    op=st.sampled_from(["VADD", "VRELU", "VMOV", "VMAXPOOL", "VSOFTMAX"]),
    src1=st.integers(0, 2**26 - 1),
    src2=st.integers(0, 2**26 - 1),
    dst=st.integers(0, 2**26 - 1),
    length=st.integers(0, 2**24 - 1),
    src_bytes=st.integers(0, 2**26 - 1),
    dst_bytes=st.integers(0, 2**26 - 1),
)

transfer_insts = st.builds(
    TransferInst,
    op=st.sampled_from(["SEND", "RECV", "LOAD", "STORE"]),
    peer=st.integers(0, 2**16 - 1),
    addr=st.integers(0, 2**26 - 1),
    bytes=st.integers(0, 2**26 - 1),
    flow=st.integers(0, 2**26 - 1),
    seq=st.integers(0, 2**26 - 1),
)

scalar_insts = st.builds(
    ScalarInst,
    op=st.sampled_from(["LI", "SADD", "SBNE", "SJMP", "NOP", "HALT"]),
    rd=st.integers(0, 31),
    rs1=st.integers(0, 31),
    rs2=st.integers(0, 31),
    imm=st.integers(0, 2**40 - 1),
    target=st.integers(0, 2**26 - 1),
)

any_inst = st.one_of(mvm_insts, vector_insts, transfer_insts, scalar_insts)


@given(any_inst)
def test_encode_decode_roundtrip(inst):
    again = decode(encode(inst))
    assert type(again) is type(inst)
    for field in vars(inst):
        if field in ("layer", "index"):
            continue
        assert getattr(again, field) == getattr(inst, field)


@given(any_inst)
def test_encoded_word_fits_192_bits(inst):
    assert 0 <= encode(inst) < (1 << 192)


# -- assembly -------------------------------------------------------------------

@given(any_inst)
def test_asm_roundtrip(inst):
    from repro.isa import assemble_line, disassemble_line
    again = assemble_line(disassemble_line(inst))
    assert type(again) is type(inst)
    for field in vars(inst):
        if field == "index":
            continue
        assert getattr(again, field) == getattr(inst, field)


# -- weight tiling ----------------------------------------------------------------

@given(rows=st.integers(1, 5000), cols=st.integers(1, 5000),
       xr=st.integers(16, 512), xc=st.integers(16, 512))
def test_tiling_blocks_cover_matrix_exactly(rows, cols, xr, xc):
    t = WeightTiling(rows, cols, xr, xc)
    assert sum(t.block_rows(r) for r in range(t.row_blocks)) == rows
    assert sum(t.block_cols(c) for c in range(t.col_blocks)) == cols
    assert all(1 <= t.block_rows(r) <= xr for r in range(t.row_blocks))
    assert all(1 <= t.block_cols(c) <= xc for c in range(t.col_blocks))


# -- convolution geometry ----------------------------------------------------------

@given(h=st.integers(1, 300), k=st.integers(1, 11), s=st.integers(1, 4),
       p=st.integers(0, 5))
def test_conv_output_never_exceeds_padded_input(h, k, s, p):
    if h + 2 * p < k:
        return  # window larger than padded input: builder rejects it
    oh, _ = conv_out_hw(h, h, k, s, p)
    assert 1 <= oh <= h + 2 * p


@given(h=st.integers(3, 300), k=st.integers(1, 7), p=st.integers(0, 3))
def test_stride_one_padding_same_keeps_size(h, k, p):
    if k != 2 * p + 1:
        return  # "same" geometry requires k == 2p+1
    oh, ow = conv_out_hw(h, h, k, 1, p)
    assert (oh, ow) == (h, h)


# -- tile dependence -----------------------------------------------------------------

@given(st.integers(2, 64), st.integers(1, 32))
@settings(max_examples=30)
def test_required_tile_monotone_for_random_chain(size, tile_pixels):
    from repro.compiler import build_pipeline, n_tiles, required_tile
    from tests.conftest import build_chain_net
    pipe = build_pipeline(build_chain_net(size=max(4, size - size % 2)))
    for stage in pipe:
        for edge in stage.edges:
            producer = pipe.stage(edge.producer)
            last = -1
            for t in range(n_tiles(stage, tile_pixels)):
                req = required_tile(stage, edge, producer, tile_pixels, t)
                assert req >= last
                assert 0 <= req < n_tiles(producer, tile_pixels)
                last = req


# -- simulator determinism / fifo order ----------------------------------------------

@given(st.lists(st.integers(0, 50), min_size=1, max_size=40))
@settings(max_examples=50)
def test_fifo_preserves_order_under_random_delays(delays):
    sim = Simulator()
    fifo = Fifo(sim, 4)
    out = []

    def producer():
        for i, d in enumerate(delays):
            yield d
            yield from fifo.put(i)

    def consumer():
        for _ in delays:
            item = yield from fifo.get()
            out.append(item)
            yield 3

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert out == list(range(len(delays)))


@given(st.lists(st.tuples(st.integers(0, 100), st.floats(0, 10)),
                min_size=1, max_size=30))
def test_time_weighted_integral_matches_manual_sum(updates):
    w = TimeWeighted()
    manual = 0.0
    last_t, last_v = 0, 0.0
    for dt, v in updates:
        t = last_t + dt
        manual += last_v * (t - last_t)
        w.update(t, v)
        last_t, last_v = t, v
    horizon = last_t + 10
    manual += last_v * (horizon - last_t)
    assert w.integral(horizon) == pytest.approx(manual)


import pytest  # noqa: E402  (used by approx above)
