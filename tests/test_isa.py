"""Tests for the instruction set: classes, dependence footprints, groups,
programs, binary/text codecs, static verification."""

import pytest

from repro.isa import (
    ChipProgram,
    FlowInfo,
    Group,
    GroupError,
    GroupTable,
    MvmInst,
    Program,
    ProgramError,
    ScalarInst,
    TransferInst,
    VectorInst,
    VerificationError,
    assemble,
    assemble_line,
    decode,
    decode_bytes,
    disassemble,
    disassemble_line,
    encode,
    encode_bytes,
    ranges_overlap,
    verify_program,
)


class TestRanges:
    @pytest.mark.parametrize("a,b,expected", [
        ((0, 10), (5, 15), True),
        ((0, 10), (10, 20), False),    # half-open: touching != overlap
        ((5, 6), (0, 100), True),
        ((0, 1), (1, 2), False),
    ])
    def test_overlap(self, a, b, expected):
        assert ranges_overlap(a, b) is expected
        assert ranges_overlap(b, a) is expected


class TestInstructionFootprints:
    def test_mvm_reads_src_writes_dst(self):
        inst = MvmInst(group=3, src=100, src_bytes=50, dst=200, dst_bytes=80)
        assert inst.reads_mem() == ((100, 150),)
        assert inst.writes_mem() == ((200, 280),)
        assert inst.groups_used() == (3,)
        assert inst.unit == "matrix"

    def test_vector_two_source_footprint(self):
        inst = VectorInst(op="VADD", src1=0, src2=64, dst=128,
                          length=16, src_bytes=64, dst_bytes=64)
        assert inst.reads_mem() == ((0, 64), (64, 128))
        assert inst.writes_mem() == ((128, 192),)
        assert inst.n_sources == 2

    def test_vector_one_source_footprint(self):
        inst = VectorInst(op="VRELU", src1=0, length=8, src_bytes=32,
                          dst=64, dst_bytes=32)
        assert inst.reads_mem() == ((0, 32),)
        assert inst.n_sources == 1

    def test_unknown_vector_op_rejected(self):
        with pytest.raises(ValueError, match="unknown vector op"):
            VectorInst(op="VFLY")

    def test_send_reads_recv_writes(self):
        send = TransferInst(op="SEND", addr=10, bytes=20)
        recv = TransferInst(op="RECV", addr=10, bytes=20)
        assert send.reads_mem() and not send.writes_mem()
        assert recv.writes_mem() and not recv.reads_mem()

    def test_load_writes_store_reads(self):
        load = TransferInst(op="LOAD", addr=0, bytes=4)
        store = TransferInst(op="STORE", addr=0, bytes=4)
        assert load.writes_mem() == ((0, 4),)
        assert store.reads_mem() == ((0, 4),)

    def test_unknown_transfer_op_rejected(self):
        with pytest.raises(ValueError):
            TransferInst(op="TELEPORT")

    def test_scalar_register_footprints(self):
        li = ScalarInst(op="LI", rd=3, imm=7)
        add = ScalarInst(op="SADD", rd=1, rs1=2, rs2=3)
        assert li.writes_regs() == (3,)
        assert li.reads_regs() == ()
        assert add.reads_regs() == (2, 3)
        assert add.writes_regs() == (1,)

    def test_branch_is_control(self):
        assert ScalarInst(op="SBEQ", rs1=0, rs2=1, target=5).is_control
        assert ScalarInst(op="HALT").is_control
        assert not ScalarInst(op="SADD").is_control


class TestConflicts:
    def test_raw_through_memory(self):
        writer = MvmInst(group=0, src=0, src_bytes=4, dst=100, dst_bytes=50)
        reader = VectorInst(op="VRELU", src1=120, src_bytes=10,
                            dst=300, dst_bytes=10, length=10)
        assert reader.conflicts_with(writer)

    def test_war_through_memory(self):
        reader = VectorInst(op="VRELU", src1=100, src_bytes=50,
                            dst=300, dst_bytes=50, length=50)
        writer = MvmInst(group=0, src=0, src_bytes=4, dst=120, dst_bytes=10)
        assert writer.conflicts_with(reader)

    def test_waw_through_memory(self):
        a = VectorInst(op="VMOV", src1=0, src_bytes=4, dst=100, dst_bytes=50,
                       length=4)
        b = VectorInst(op="VMOV", src1=8, src_bytes=4, dst=140, dst_bytes=50,
                       length=4)
        assert b.conflicts_with(a)

    def test_reads_do_not_conflict(self):
        a = VectorInst(op="VRELU", src1=0, src_bytes=50, dst=100,
                       dst_bytes=50, length=50)
        b = VectorInst(op="VRELU", src1=0, src_bytes=50, dst=200,
                       dst_bytes=50, length=50)
        assert not b.conflicts_with(a)

    def test_structural_hazard_same_group(self):
        a = MvmInst(group=7, src=0, src_bytes=4, dst=100, dst_bytes=4)
        b = MvmInst(group=7, src=200, src_bytes=4, dst=300, dst_bytes=4)
        assert b.conflicts_with(a)

    def test_no_hazard_different_groups(self):
        a = MvmInst(group=1, src=0, src_bytes=4, dst=100, dst_bytes=4)
        b = MvmInst(group=2, src=0, src_bytes=4, dst=200, dst_bytes=4)
        assert not b.conflicts_with(a)

    def test_register_raw(self):
        writer = ScalarInst(op="LI", rd=5, imm=1)
        reader = ScalarInst(op="SADD", rd=6, rs1=5, rs2=0)
        assert reader.conflicts_with(writer)


class TestGroups:
    def test_define_and_get(self):
        table = GroupTable(core=0)
        g = table.define(layer="conv1", copy=0, row_block=2,
                         n_crossbars=4, rows=128, cols=512)
        assert table.get(g.group_id) is g
        assert g.active_cells == 128 * 512

    def test_dense_ids(self):
        table = GroupTable(core=0)
        ids = [table.define("l", 0, r, 1, 8, 8).group_id for r in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_crossbars_used_accumulates(self):
        table = GroupTable(core=0)
        table.define("a", 0, 0, 3, 8, 8)
        table.define("b", 0, 0, 5, 8, 8)
        assert table.crossbars_used == 8

    def test_undefined_group_raises(self):
        with pytest.raises(GroupError, match="undefined group"):
            GroupTable(core=0).get(3)

    def test_by_layer_buckets(self):
        table = GroupTable(core=0)
        table.define("a", 0, 0, 1, 8, 8)
        table.define("b", 0, 0, 1, 8, 8)
        table.define("a", 1, 0, 1, 8, 8)
        buckets = table.by_layer()
        assert len(buckets["a"]) == 2
        assert len(buckets["b"]) == 1

    def test_empty_group_rejected(self):
        with pytest.raises(GroupError):
            Group(group_id=0, layer="x", copy=0, row_block=0,
                  n_crossbars=0, rows=8, cols=8)


class TestProgram:
    def test_seal_appends_halt_and_numbers(self):
        p = Program(core=0)
        p.append(ScalarInst(op="NOP"))
        p.seal()
        assert isinstance(p.instructions[-1], ScalarInst)
        assert p.instructions[-1].op == "HALT"
        assert [i.index for i in p] == [0, 1]

    def test_seal_idempotent_halt(self):
        p = Program(core=0)
        p.append(ScalarInst(op="HALT"))
        p.seal()
        assert len(p) == 1

    def test_append_after_seal_rejected(self):
        p = Program(core=0).seal()
        with pytest.raises(ProgramError, match="sealed"):
            p.append(ScalarInst(op="NOP"))

    def test_counts_by_unit(self):
        p = Program(core=0)
        p.append(MvmInst(group=0, src=0, src_bytes=1, dst=0, dst_bytes=1))
        p.append(VectorInst(op="VRELU", src1=0, src_bytes=1, dst=0,
                            dst_bytes=1, length=1))
        p.seal()
        counts = p.counts_by_unit()
        assert counts == {"matrix": 1, "vector": 1, "transfer": 0, "scalar": 1}

    def test_listing_truncates(self):
        p = Program(core=0)
        for _ in range(10):
            p.append(ScalarInst(op="NOP"))
        p.seal()
        text = p.listing(limit=3)
        assert "more" in text


class TestEncoding:
    CASES = [
        MvmInst(group=3, src=1024, src_bytes=512, dst=8192, dst_bytes=256,
                count=4),
        VectorInst(op="VADD", src1=64, src2=128, dst=256, length=32,
                   src_bytes=128, dst_bytes=128),
        VectorInst(op="VMAXPOOL", src1=0, dst=512, length=64,
                   src_bytes=1024, dst_bytes=64),
        TransferInst(op="SEND", peer=9, addr=2048, bytes=512, flow=7, seq=3),
        TransferInst(op="RECV", peer=2, addr=0, bytes=64, flow=0, seq=0),
        TransferInst(op="LOAD", peer=0, addr=128, bytes=256, flow=0, seq=1),
        ScalarInst(op="LI", rd=5, imm=123456),
        ScalarInst(op="SBNE", rs1=1, rs2=2, target=17),
        ScalarInst(op="HALT"),
    ]

    @pytest.mark.parametrize("inst", CASES, ids=lambda i: repr(i))
    def test_word_roundtrip(self, inst):
        again = decode(encode(inst))
        assert type(again) is type(inst)
        for field in vars(inst):
            if field in ("layer", "index"):
                continue
            assert getattr(again, field) == getattr(inst, field), field

    @pytest.mark.parametrize("inst", CASES, ids=lambda i: repr(i))
    def test_bytes_roundtrip(self, inst):
        data = encode_bytes(inst)
        assert len(data) == 24
        again = decode_bytes(data)
        assert type(again) is type(inst)

    def test_field_overflow_rejected(self):
        from repro.isa import EncodingError
        with pytest.raises(EncodingError, match="does not fit"):
            encode(MvmInst(group=1 << 30, src=0, src_bytes=1, dst=0,
                           dst_bytes=1))

    def test_bad_word_length_rejected(self):
        from repro.isa import EncodingError
        with pytest.raises(EncodingError):
            decode_bytes(b"\x00" * 7)


class TestAssembly:
    def test_line_roundtrip(self):
        inst = MvmInst(group=2, src=64, src_bytes=24, dst=512, dst_bytes=96,
                       count=3, layer="conv1")
        line = disassemble_line(inst)
        again = assemble_line(line)
        assert isinstance(again, MvmInst)
        assert again.group == 2 and again.count == 3
        assert again.layer == "conv1"

    def test_program_roundtrip(self):
        program = [
            TransferInst(op="RECV", peer=1, addr=0, bytes=64, flow=2, seq=0),
            MvmInst(group=0, src=0, src_bytes=64, dst=128, dst_bytes=64,
                    count=1),
            VectorInst(op="VRELU", src1=128, dst=256, length=64,
                       src_bytes=64, dst_bytes=64),
            TransferInst(op="SEND", peer=2, addr=256, bytes=64, flow=3, seq=0),
            ScalarInst(op="HALT"),
        ]
        text = disassemble(program)
        again = assemble(text)
        assert len(again) == len(program)
        assert [type(i) for i in again] == [type(i) for i in program]

    def test_comments_and_blanks_skipped(self):
        text = "\n# a comment\n; another\n  \nNOP\n"
        out = assemble(text)
        assert len(out) == 1

    def test_unknown_opcode_reports_line(self):
        from repro.isa import AsmError
        with pytest.raises(AsmError, match="line 2"):
            assemble("NOP\nFROB x=1")

    def test_bad_value_rejected(self):
        from repro.isa import AsmError
        with pytest.raises(AsmError, match="non-integer"):
            assemble_line("MVM group=banana")


def _well_formed_chip(config) -> ChipProgram:
    """Two cores exchanging one message, with valid groups."""
    chip = ChipProgram(network="hand")
    table = GroupTable(core=0)
    table.define("l1", 0, 0, 1, 16, 16)
    p0 = Program(core=0, groups=table)
    p0.append(MvmInst(group=0, src=0, src_bytes=16, dst=64, dst_bytes=64,
                      layer="l1"))
    p0.append(TransferInst(op="SEND", peer=1, addr=64, bytes=64, flow=0,
                           seq=0, layer="l1"))
    chip.programs[0] = p0.seal()
    p1 = Program(core=1, groups=GroupTable(core=1))
    p1.append(TransferInst(op="RECV", peer=0, addr=0, bytes=64, flow=0,
                           seq=0, layer="l2"))
    chip.programs[1] = p1.seal()
    chip.flows[0] = FlowInfo(flow_id=0, src_core=0, dst_core=1, layer="l2",
                             n_messages=1, bytes_per_message=64)
    return chip


class TestVerification:
    def test_well_formed_passes(self, tiny_cfg):
        verify_program(_well_formed_chip(tiny_cfg), tiny_cfg)

    def test_unsealed_program_rejected(self, tiny_cfg):
        chip = ChipProgram(network="x")
        chip.programs[0] = Program(core=0)
        with pytest.raises(VerificationError, match="not sealed"):
            verify_program(chip, tiny_cfg)

    def test_missing_recv_detected(self, tiny_cfg):
        chip = _well_formed_chip(tiny_cfg)
        del chip.programs[1]
        with pytest.raises(VerificationError, match="sends vs"):
            verify_program(chip, tiny_cfg)

    def test_undefined_group_detected(self, tiny_cfg):
        chip = _well_formed_chip(tiny_cfg)
        bad = Program(core=1, groups=GroupTable(core=1))
        bad.append(MvmInst(group=5, src=0, src_bytes=4, dst=8, dst_bytes=4))
        bad.append(TransferInst(op="RECV", peer=0, addr=0, bytes=64, flow=0,
                                seq=0))
        chip.programs[1] = bad.seal()
        with pytest.raises(VerificationError, match="undefined group"):
            verify_program(chip, tiny_cfg)

    def test_memory_out_of_range_detected(self, tiny_cfg):
        chip = _well_formed_chip(tiny_cfg)
        huge = tiny_cfg.core.local_memory_bytes + 10
        bad = Program(core=2, groups=GroupTable(core=2))
        bad.append(VectorInst(op="VRELU", src1=huge, src_bytes=4, dst=0,
                              dst_bytes=4, length=1))
        chip.programs[2] = bad.seal()
        with pytest.raises(VerificationError, match="outside"):
            verify_program(chip, tiny_cfg)

    def test_peer_outside_chip_detected(self, tiny_cfg):
        chip = _well_formed_chip(tiny_cfg)
        bad = Program(core=2, groups=GroupTable(core=2))
        bad.append(TransferInst(op="SEND", peer=999, addr=0, bytes=4,
                                flow=0, seq=1))
        chip.programs[2] = bad.seal()
        with pytest.raises(VerificationError, match="peer"):
            verify_program(chip, tiny_cfg)

    def test_undeclared_flow_detected(self, tiny_cfg):
        chip = _well_formed_chip(tiny_cfg)
        extra = Program(core=2, groups=GroupTable(core=2))
        extra.append(TransferInst(op="SEND", peer=1, addr=0, bytes=4,
                                  flow=42, seq=0))
        chip.programs[2] = extra.seal()
        with pytest.raises(VerificationError, match="flow 42"):
            verify_program(chip, tiny_cfg)

    def test_non_dense_seq_detected(self, tiny_cfg):
        chip = _well_formed_chip(tiny_cfg)
        p0 = chip.programs[0]
        # rebuild core 0 with a gap in the sequence numbers
        table = p0.groups
        bad = Program(core=0, groups=table)
        bad.append(TransferInst(op="SEND", peer=1, addr=0, bytes=64, flow=0,
                                seq=5))
        chip.programs[0] = bad.seal()
        with pytest.raises(VerificationError):
            verify_program(chip, tiny_cfg)

    def test_branch_target_out_of_range_detected(self, tiny_cfg):
        chip = ChipProgram(network="x")
        p = Program(core=0, groups=GroupTable(core=0))
        p.append(ScalarInst(op="SJMP", target=99))
        chip.programs[0] = p.seal()
        with pytest.raises(VerificationError, match="target"):
            verify_program(chip, tiny_cfg)

    def test_register_out_of_range_detected(self, tiny_cfg):
        chip = ChipProgram(network="x")
        p = Program(core=0, groups=GroupTable(core=0))
        p.append(ScalarInst(op="LI", rd=40, imm=1))
        chip.programs[0] = p.seal()
        with pytest.raises(VerificationError, match="register"):
            verify_program(chip, tiny_cfg)

    def test_core_id_outside_chip_detected(self, tiny_cfg):
        chip = ChipProgram(network="x")
        p = Program(core=99, groups=GroupTable(core=99))
        chip.programs[99] = p.seal()
        with pytest.raises(VerificationError, match="outside"):
            verify_program(chip, tiny_cfg)
