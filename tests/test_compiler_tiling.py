"""Tests for weight tiling, tile dependence maps, levels and skews."""

import pytest

from repro.compiler import (
    build_pipeline,
    compute_levels,
    n_tiles,
    required_tile,
    tile_pixel_range,
    weight_tiling,
)
from repro.compiler.tiling import WeightTiling, edge_requirements, edge_skews


class TestWeightTiling:
    def test_exact_fit(self):
        t = WeightTiling(rows=256, cols=256, xbar_rows=128, xbar_cols=128)
        assert t.row_blocks == 2
        assert t.col_blocks == 2
        assert t.crossbars_per_copy == 4

    def test_partial_blocks(self):
        t = WeightTiling(rows=200, cols=100, xbar_rows=128, xbar_cols=128)
        assert t.row_blocks == 2
        assert t.col_blocks == 1
        assert t.block_rows(0) == 128
        assert t.block_rows(1) == 72
        assert t.block_cols(0) == 100

    def test_block_coverage_sums_to_matrix(self):
        t = WeightTiling(rows=300, cols=500, xbar_rows=128, xbar_cols=128)
        assert sum(t.block_rows(r) for r in range(t.row_blocks)) == 300
        assert sum(t.block_cols(c) for c in range(t.col_blocks)) == 500

    def test_out_of_range_block_raises(self):
        t = WeightTiling(rows=10, cols=10, xbar_rows=128, xbar_cols=128)
        with pytest.raises(Exception):
            t.block_rows(1)

    def test_from_stage(self, chain_net):
        pipe = build_pipeline(chain_net)
        t = weight_tiling(pipe.stage("conv1"), 128, 128)
        assert (t.rows, t.cols) == (27, 8)

    def test_non_compute_stage_rejected(self, residual_net):
        pipe = build_pipeline(residual_net)
        with pytest.raises(Exception):
            weight_tiling(pipe.stage("join"), 128, 128)


class TestTiles:
    def test_n_tiles_rounding(self, chain_net):
        pipe = build_pipeline(chain_net)
        conv1 = pipe.stage("conv1")  # 8x8 output = 64 pixels
        assert n_tiles(conv1, 16) == 4
        assert n_tiles(conv1, 60) == 2
        assert n_tiles(conv1, 64) == 1
        assert n_tiles(conv1, 1000) == 1

    def test_tile_ranges_partition_pixels(self, chain_net):
        pipe = build_pipeline(chain_net)
        conv1 = pipe.stage("conv1")
        covered = []
        for t in range(n_tiles(conv1, 12)):
            lo, hi = tile_pixel_range(conv1, 12, t)
            covered.extend(range(lo, hi))
        assert covered == list(range(conv1.out_pixels))

    def test_tile_out_of_range_raises(self, chain_net):
        pipe = build_pipeline(chain_net)
        with pytest.raises(Exception):
            tile_pixel_range(pipe.stage("conv1"), 16, 99)


class TestRequiredTile:
    def test_monotone_nondecreasing(self, residual_net):
        pipe = build_pipeline(residual_net)
        for stage in pipe:
            for edge in stage.edges:
                producer = pipe.stage(edge.producer)
                reqs = [required_tile(stage, edge, producer, 4, t)
                        for t in range(n_tiles(stage, 4))]
                assert reqs == sorted(reqs)

    def test_last_tile_requires_last_producer_tile_for_conv(self, chain_net):
        pipe = build_pipeline(chain_net)
        conv2 = pipe.stage("conv2")
        producer = pipe.stage(conv2.edges[0].producer)
        last = n_tiles(conv2, 4) - 1
        assert required_tile(conv2, conv2.edges[0], producer, 4, last) \
            == n_tiles(producer, 4) - 1

    def test_full_input_edge_requires_everything(self, chain_net):
        pipe = build_pipeline(chain_net)
        fc = pipe.stage("fc1")
        producer = pipe.stage(fc.edges[0].producer)
        assert required_tile(fc, fc.edges[0], producer, 4, 0) \
            == n_tiles(producer, 4) - 1

    def test_halo_requires_one_extra_row(self, chain_net):
        """3x3 pad-1 conv: tile 0 (first rows) needs the next input row."""
        pipe = build_pipeline(chain_net)
        conv2 = pipe.stage("conv2")
        producer = pipe.stage(conv2.edges[0].producer)
        req0 = required_tile(conv2, conv2.edges[0], producer, 8, 0)
        assert req0 >= 0
        # producer is 8x8 = 8 tiles of 8px (one row each); conv2 is pooled
        # to 4x4 so its tile 0 spans 2 output rows -> needs rows 0..4
        assert req0 < n_tiles(producer, 8) - 1

    def test_within_producer_bounds(self, residual_net):
        pipe = build_pipeline(residual_net)
        for stage in pipe:
            for edge in stage.edges:
                producer = pipe.stage(edge.producer)
                tp = n_tiles(producer, 4)
                for t in range(n_tiles(stage, 4)):
                    req = required_tile(stage, edge, producer, 4, t)
                    assert 0 <= req < tp


class TestLevels:
    def test_input_levels_are_tile_indices(self, chain_net):
        levels = compute_levels(build_pipeline(chain_net), 4)
        assert levels["input"] == list(range(len(levels["input"])))

    def test_strictly_increasing_per_stage(self, residual_net):
        levels = compute_levels(build_pipeline(residual_net), 4)
        for per_stage in levels.values():
            assert all(b > a for a, b in zip(per_stage, per_stage[1:]))

    def test_every_dependency_has_smaller_level(self, residual_net):
        pipe = build_pipeline(residual_net)
        levels = compute_levels(pipe, 4)
        reqs = edge_requirements(pipe, 4)
        for stage in pipe:
            if stage.kind == "input":
                continue
            for t in range(n_tiles(stage, 4)):
                for edge_idx, edge in enumerate(stage.edges):
                    req = reqs[(stage.name, edge_idx)][t]
                    assert levels[edge.producer][req] < levels[stage.name][t]

    def test_levels_cover_all_stages(self, branch_net):
        pipe = build_pipeline(branch_net)
        levels = compute_levels(pipe, 4)
        assert set(levels) == {s.name for s in pipe}


class TestSkews:
    def test_chain_edges_have_small_skew(self, chain_net):
        pipe = build_pipeline(chain_net)
        skews = edge_skews(pipe, 4)
        conv2_skew = skews[("conv2", 0)]
        assert 0 <= conv2_skew <= n_tiles(pipe.stage("conv1"), 4)

    def test_shortcut_skew_exceeds_chain_skew(self, residual_net):
        """The identity shortcut bypasses two convs: its skew must cover
        the halo lag accumulated along the main path."""
        pipe = build_pipeline(residual_net)
        skews = edge_skews(pipe, 4)
        join = pipe.stage("join")
        main_idx = next(i for i, e in enumerate(join.edges)
                        if e.producer == "main2")
        short_idx = next(i for i, e in enumerate(join.edges)
                         if e.producer == "stem")
        assert skews[("join", short_idx)] > skews[("join", main_idx)] or \
            skews[("join", short_idx)] >= 2

    def test_skews_nonnegative(self, branch_net):
        pipe = build_pipeline(branch_net)
        for value in edge_skews(pipe, 4).values():
            assert value >= 0

    def test_input_edges_not_windowed(self, chain_net):
        pipe = build_pipeline(chain_net)
        skews = edge_skews(pipe, 4)
        assert ("conv1", 0) not in skews  # producer is the input stage
