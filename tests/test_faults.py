"""Chaos suite: every self-healing path of the supervised WorkerPool.

Faults are deterministic directives embedded in the JobSpec
(:mod:`repro.engine.faults`), so each recovery path — in-place respawn,
crash retry, poison quarantine, timeout watchdog, undecodable-result
condemnation, warm growth — is provoked on purpose and pinned, not left
to luck.  Directives trip only inside pool workers; the serial path is
immune by construction.
"""

import pytest

from repro import Engine, JobSpec
from repro.config import tiny_chip
from repro.engine import JobFailed, JobPoisoned, JobTimeout
from repro.engine.faults import (
    FAULT_MODES,
    FaultError,
    directive_for,
    trip,
)


def _engine(**kw):
    kw.setdefault("retry_backoff", 0.01)
    return Engine(tiny_chip(), **kw)


class TestDirectives:
    def test_no_faults_is_no_directive(self):
        assert directive_for(JobSpec("mlp"), 0) is None

    def test_attempt_filter(self):
        spec = JobSpec("mlp", faults={"mode": "raise", "attempts": [0]})
        assert directive_for(spec, 0) == spec.faults
        assert directive_for(spec, 1) is None

    def test_unfiltered_directive_applies_to_every_attempt(self):
        spec = JobSpec("mlp", faults={"mode": "raise"})
        for attempt in (0, 1, 5):
            assert directive_for(spec, attempt) == spec.faults

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="frobnicate"):
            directive_for(JobSpec("mlp", faults={"mode": "frobnicate"}), 0)

    def test_non_dict_directive_rejected(self):
        with pytest.raises(ValueError, match="dict"):
            directive_for(JobSpec("mlp", faults="crash"), 0)

    def test_trip_raise_mode(self):
        with pytest.raises(FaultError, match="injected"):
            trip({"mode": "raise"})

    def test_trip_none_is_noop(self):
        trip(None)

    def test_modes_are_pinned(self):
        assert FAULT_MODES == ("crash", "exit", "hang", "raise", "garbage")

    def test_serial_path_never_trips_faults(self):
        """In-process execution ignores directives — a chaos spec can
        never take down the caller."""
        with _engine() as eng:
            report = eng.simulate(JobSpec("mlp", faults={"mode": "raise"}))
            assert report.cycles > 0

    def test_faults_round_trip_through_json(self):
        spec = JobSpec("mlp", timeout=2.5,
                       faults={"mode": "crash", "attempts": [0]})
        assert JobSpec.from_json(spec.to_json()) == spec


class TestCrashRecovery:
    def test_sigkill_one_of_four_mid_batch(self):
        """The acceptance scenario: killing 1 of 4 workers mid-batch
        still yields N results, leaves the pool serviceable, and a second
        identical batch recompiles nothing on the surviving lanes."""
        specs = [JobSpec("mlp", tag=i) for i in range(8)]
        with _engine() as eng:
            warm = eng.map(specs, workers=4)
            pool = eng._pool
            # Job 1 (lane 1) SIGKILLs its worker on attempt 0 only.
            chaos = list(specs)
            chaos[1] = JobSpec("mlp", tag=1,
                               faults={"mode": "crash", "attempts": [0]})
            out = eng.map(chaos, workers=4, errors="capture")
            assert [r.cycles for r in out] == [r.cycles for r in warm]
            assert eng._pool is pool and not pool.broken
            stats = eng.pool_stats()
            assert stats["respawns"] == 1
            assert stats["retries"] >= 1
            assert stats["poisoned"] == 0
            # Third identical batch: every lane answers from its warm
            # cache — zero new compiles anywhere (lane 1's fresh worker
            # compiled during the chaos batch's retry).
            third = eng.map(specs, workers=4)
            assert [r.compile_cache_misses for r in third] == [1] * 8
            assert [r.cycles for r in third] == [r.cycles for r in warm]

    def test_exit_nonzero_is_a_crash_and_retries(self):
        with _engine() as eng:
            fut = eng.submit(JobSpec(
                "mlp", faults={"mode": "exit", "code": 3, "attempts": [0]}))
            assert fut.result(timeout=120).cycles > 0
            assert eng.pool_stats()["respawns"] == 1

    def test_job_raised_exception_is_never_retried(self):
        """A job that *raises* is a result, not a crash: original type
        re-raised, zero respawns, zero retries."""
        with _engine() as eng:
            fut = eng.submit(JobSpec("mlp", faults={"mode": "raise"}))
            with pytest.raises(FaultError):
                fut.result(timeout=120)
            stats = eng.pool_stats()
            assert stats["respawns"] == 0
            assert stats["retries"] == 0

    def test_respawn_survives_future_batches(self):
        """After healing, the pool keeps its deterministic dealing: a
        later batch still lands warm on every lane."""
        specs = [JobSpec("mlp", tag=i) for i in range(4)]
        with _engine() as eng:
            eng.map(specs, workers=2)
            eng.map([JobSpec("mlp", tag=0,
                             faults={"mode": "crash", "attempts": [0]}),
                     JobSpec("mlp", tag=1)], workers=2, errors="capture")
            after = eng.map(specs, workers=2)
            assert all(r.cycles > 0 for r in after)
            assert eng.pool_stats()["respawns"] == 1


class TestPoisonQuarantine:
    def test_poison_job_is_quarantined_not_retried_forever(self):
        with _engine() as eng:
            outcomes = eng.map(
                [JobSpec("mlp", tag="a"),
                 JobSpec("mlp", tag="bad", faults={"mode": "crash"}),
                 JobSpec("mlp", tag="c")],
                workers=3, errors="capture")
            assert outcomes[0].cycles > 0
            assert isinstance(outcomes[1], JobPoisoned)
            assert outcomes[1].kind == "JobPoisoned"
            assert "quarantined" in outcomes[1].message
            assert outcomes[2].cycles > 0
            stats = eng.pool_stats()
            assert stats["poisoned"] == 1
            # max_retries=1: initial attempt + one retry = 2 crashes.
            assert stats["respawns"] == 2
            assert not eng._pool.broken

    def test_max_retries_zero_quarantines_on_first_crash(self):
        with _engine(max_retries=0) as eng:
            fut = eng.submit(JobSpec("mlp", faults={"mode": "crash"}))
            with pytest.raises(JobPoisoned):
                fut.result(timeout=120)
            assert eng.pool_stats()["respawns"] == 1

    def test_poisoned_is_a_jobfailed(self):
        """Capture paths classify quarantine like any other job failure."""
        assert issubclass(JobPoisoned, JobFailed)
        assert issubclass(JobTimeout, JobFailed)

    def test_pool_serves_identically_after_quarantine(self):
        specs = [JobSpec("mlp", tag=i) for i in range(4)]
        with _engine() as eng:
            before = eng.map(specs, workers=2)
            eng.map([JobSpec("mlp", faults={"mode": "crash"})] + specs[1:],
                    workers=2, errors="capture")
            after = eng.map(specs, workers=2)
            assert [r.cycles for r in after] == [r.cycles for r in before]


class TestTimeouts:
    def test_hung_job_times_out_and_worker_respawns(self):
        with _engine() as eng:
            fut = eng.submit(JobSpec("mlp", timeout=0.4,
                                     faults={"mode": "hang",
                                             "seconds": 60.0}))
            with pytest.raises(JobTimeout, match="0.4"):
                fut.result(timeout=60)
            stats = eng.pool_stats()
            assert stats["timeouts"] == 1
            assert stats["respawns"] == 1
            # The lane healed: the next job on the pool completes.
            assert eng.submit(JobSpec("mlp")).result(timeout=120).cycles > 0

    def test_engine_default_timeout_applies(self):
        with _engine(job_timeout=0.4) as eng:
            fut = eng.submit(JobSpec("mlp",
                                     faults={"mode": "hang",
                                             "seconds": 60.0}))
            with pytest.raises(JobTimeout):
                fut.result(timeout=60)

    def test_spec_timeout_overrides_engine_default(self):
        """A generous spec timeout must win over a tight engine default:
        the job completes."""
        with _engine(job_timeout=0.2) as eng:
            fut = eng.submit(JobSpec("mlp", timeout=120.0))
            assert fut.result(timeout=120).cycles > 0
            assert eng.pool_stats()["timeouts"] == 0

    def test_fast_job_with_timeout_unaffected(self):
        with _engine() as eng:
            fut = eng.submit(JobSpec("mlp", timeout=120.0))
            assert fut.result(timeout=120).cycles > 0
            assert eng.pool_stats()["respawns"] == 0


class TestUndecodableResults:
    def test_garbage_result_condemns_worker_once_and_retries(self):
        """Garbage on a result pipe blames the running job and replaces
        the worker exactly once — no condemnation loop (regression for
        the old `remaining` leak) — and the retry succeeds."""
        with _engine() as eng:
            fut = eng.submit(JobSpec(
                "mlp", faults={"mode": "garbage", "attempts": [0]}))
            assert fut.result(timeout=120).cycles > 0
            stats = eng.pool_stats()
            assert stats["respawns"] == 1
            assert stats["retries"] == 1
            assert not eng._pool.broken
            # Further traffic on the same pool stays healthy.
            reports = eng.map([JobSpec("mlp", tag=i) for i in range(4)],
                              workers=2)
            assert all(r.cycles > 0 for r in reports)
            assert eng.pool_stats()["respawns"] == 1

    def test_always_garbage_job_is_quarantined(self):
        with _engine() as eng:
            fut = eng.submit(JobSpec("mlp", faults={"mode": "garbage"}))
            with pytest.raises(JobPoisoned):
                fut.result(timeout=120)


class TestGrowablePool:
    def test_grow_spawns_delta_keeping_warm_lanes(self):
        """Asking for more workers widens the pool in place: the original
        lanes keep their compile caches (zero new misses on their jobs)."""
        with _engine() as eng:
            two = eng.map([JobSpec("mlp", tag=i) for i in range(2)],
                          workers=2)
            pool = eng._pool
            four = eng.map([JobSpec("mlp", tag=i) for i in range(4)],
                           workers=4)
            assert eng._pool is pool
            assert pool.size == 4 and eng.pool_size == 4
            # Jobs 0/1 land on the original lanes: warm (1 old miss, new
            # hits); jobs 2/3 on the fresh lanes compile once.
            assert [r.compile_cache_misses for r in four] == [1, 1, 1, 1]
            assert four[0].compile_cache_hits == two[0].compile_cache_hits + 1
            assert four[1].compile_cache_hits == two[1].compile_cache_hits + 1
            assert [r.cycles for r in four[:2]] == [r.cycles for r in two]

    def test_grow_is_noop_when_not_wider(self):
        from repro.engine.pool import WorkerPool

        pool = WorkerPool(2, tiny_chip())
        try:
            pool.grow(1)
            pool.grow(2)
            assert pool.size == 2
            with pytest.raises(ValueError):
                pool.grow(0)
        finally:
            pool.close()

    def test_grow_after_close_rejected(self):
        from repro.engine.pool import PoolUnavailable, WorkerPool

        pool = WorkerPool(1, tiny_chip())
        pool.close()
        with pytest.raises(PoolUnavailable):
            pool.grow(2)


class TestTelemetry:
    def test_pool_stats_before_any_pool(self):
        with _engine() as eng:
            assert eng.pool_stats() == {
                "size": 0, "respawns": 0, "retries": 0,
                "timeouts": 0, "poisoned": 0, "broken": False,
                "queue_depth": 0, "in_flight": 0, "ewma_service_s": 0.0}

    def test_stats_keys_pinned(self):
        with _engine() as eng:
            eng.map([JobSpec("mlp"), JobSpec("mlp")], workers=2)
            assert sorted(eng.pool_stats()) == [
                "broken", "ewma_service_s", "in_flight", "poisoned",
                "queue_depth", "respawns", "retries", "size", "timeouts"]
