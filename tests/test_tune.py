"""Tests for ``repro.tune``: cost-model contracts, the tuner, journaling.

The cost model's contract is *rank* fidelity — it must order design
points like the simulator does, not predict absolute cycles — so the
pinned gates are Spearman rank correlation against measured cycles,
monotonicity in the shard knob, and the load-aware-placement win on a
contended chip.  The tuner's contract is the acceptance bar of ROADMAP
item 4: beat both built-in mappings at their default placements on
measured cycles, re-verify the winner at cycle fidelity, and never
recompile a structure after round one.
"""

from __future__ import annotations

import json

import pytest

from repro.config import ConfigError, scaled, small_chip, validate
from repro.engine import Engine, JobSpec
from repro.tune import Candidate, CostModel, TuneReport, Tuner
from repro.tune.search import MAPPINGS, _read_tune_journal


# -- rank-correlation helper (average ranks for ties) -------------------------


def _ranks(values):
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) \
                and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman(xs, ys):
    rx, ry = _ranks(list(xs)), _ranks(list(ys))
    n = len(rx)
    mx, my = sum(rx) / n, sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    return cov / (vx * vy) ** 0.5


def test_spearman_helper():
    assert spearman([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
    assert spearman([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)


@pytest.fixture(scope="module")
def engine():
    with Engine(small_chip()) as eng:
        yield eng


# -- cost-model contracts -----------------------------------------------------


class TestCostModelRanking:
    @pytest.mark.parametrize("model,shard_options", [
        ("vgg8", (1,)),          # CNN: the shard knob is inert
        ("vit_tiny", (1, 4)),
        ("bert_tiny", (1, 4)),
    ])
    def test_rank_correlation_vs_measured(self, engine, model,
                                          shard_options):
        """Estimates must order (mapping, rob, shards) points like the
        simulator measures them: Spearman >= 0.8 per model."""
        base = small_chip()
        model_cost = CostModel()
        estimated, measured = [], []
        for mapping in MAPPINGS:
            for rob in (1, 8, 32):
                for shards in shard_options:
                    cand = Candidate(mapping, rob, shards)
                    compiled, cfg = engine.compile_for(
                        cand.spec(model, base))
                    estimated.append(
                        model_cost.estimate(compiled, cfg).cycles)
                    measured.append(engine.run(
                        cand.spec(model, base, fidelity="fast")).cycles)
        assert spearman(estimated, measured) >= 0.8

    def test_estimate_monotone_in_shards_vit(self, engine):
        """vit_tiny has enough shardable tiles that every extra shard
        strictly helps — the estimate must reflect that."""
        base = small_chip()
        cycles = []
        for shards in (1, 2, 4):
            cand = Candidate("performance_first", 8, shards)
            compiled, cfg = engine.compile_for(cand.spec("vit_tiny", base))
            cycles.append(CostModel().estimate(compiled, cfg).cycles)
        assert cycles[0] > cycles[1] > cycles[2]

    def test_estimate_monotone_in_shards_bert(self, engine):
        """bert_tiny's shard groups cap at its tile count, so estimates
        are non-increasing (shards 2 and 4 may coincide), never worse."""
        base = small_chip()
        cycles = []
        for shards in (1, 2, 4):
            cand = Candidate("performance_first", 8, shards)
            compiled, cfg = engine.compile_for(cand.spec("bert_tiny", base))
            cycles.append(CostModel().estimate(compiled, cfg).cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]
        assert cycles[0] > cycles[2]

    def test_estimate_reports_per_core_and_flows(self, engine):
        compiled, cfg = engine.compile_for(
            Candidate("performance_first", 8).spec("vit_tiny", small_chip()))
        est = CostModel().estimate(compiled, cfg)
        assert est.cycles == max(est.per_core_cycles.values())
        assert est.flow_cycles > 0
        assert est.energy_pj > 0

    def test_objective_scalars(self, engine):
        compiled, cfg = engine.compile_for(
            Candidate("performance_first", 8).spec("mlp", small_chip()))
        est = CostModel().estimate(compiled, cfg)
        assert est.objective("latency") == float(est.cycles)
        assert est.objective("energy") == est.energy_pj
        assert est.objective("edp") == est.cycles * est.energy_pj
        with pytest.raises(ValueError, match="objective"):
            est.objective("throughput")


class TestLoadAwarePlacement:
    def test_beats_distance_on_contended_chip(self, engine):
        """On a 9-core chip every neighbour of the attention home core is
        hot with crossbar work; trading one hop for an idle core must be
        a measured win, not just a modelled one."""
        contended = validate(scaled(small_chip(), cores=9))
        cycles = {}
        for placement in ("distance", "load_aware"):
            cand = Candidate("performance_first", 8, 4, placement)
            cycles[placement] = engine.run(
                cand.spec("vit_tiny", contended, fidelity="fast")).cycles
        assert cycles["load_aware"] < cycles["distance"]

    def test_distance_default_matches_explicit(self, engine):
        base = small_chip()
        explicit = Candidate("performance_first", 8, 4, "distance")
        compiled_explicit, _ = engine.compile_for(
            explicit.spec("vit_tiny", base))
        compiled_default, _ = engine.compile_for(
            JobSpec("vit_tiny", config=base, mapping="performance_first",
                    rob_size=8, attention_shards=4))
        assert (compiled_explicit.placement.shard_groups
                == compiled_default.placement.shard_groups)

    def test_invalid_placement_rejected(self):
        with pytest.raises(ConfigError, match="shard_placement"):
            validate(small_chip().with_shard_placement("random"))


# -- candidate generation -----------------------------------------------------


class TestCandidates:
    def test_key_and_round_trip(self):
        cand = Candidate("performance_first", 16, 4, "load_aware")
        assert cand.key() == "performance_first/rob16/shards4/load_aware"
        assert Candidate.from_dict(cand.to_dict()) == cand

    def test_shards_capped_at_core_count(self):
        tuner = Tuner("vit_tiny", shard_counts=(1, 8, 64))
        cands = tuner.candidates(validate(scaled(small_chip(), cores=4)),
                                 shardable=True)
        assert max(c.attention_shards for c in cands) == 4

    def test_non_shardable_network_collapses_shard_knobs(self):
        tuner = Tuner("vgg8")
        cands = tuner.candidates(small_chip(), shardable=False)
        assert {c.attention_shards for c in cands} == {1}
        assert {c.shard_placement for c in cands} == {"distance"}
        # 2 mappings x 5 ROB sizes, nothing else
        assert len(cands) == 10

    def test_placements_collapse_at_one_shard(self):
        tuner = Tuner("vit_tiny", shard_counts=(1, 4))
        cands = tuner.candidates(small_chip(), shardable=True)
        singles = [c for c in cands if c.attention_shards == 1]
        assert all(c.shard_placement == "distance" for c in singles)
        sharded = [c for c in cands if c.attention_shards == 4]
        assert {c.shard_placement for c in sharded} \
            == {"distance", "load_aware"}

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            Tuner("mlp", objective="goodness")
        with pytest.raises(ValueError, match="budget"):
            Tuner("mlp", budget=0)
        with pytest.raises(ValueError, match="top_k"):
            Tuner("mlp", top_k=0)
        with pytest.raises(ValueError, match="placements"):
            Tuner("mlp", placements=("random",))


# -- the tuner ----------------------------------------------------------------


class TestTuner:
    @pytest.mark.parametrize("model", ["vgg8", "vit_tiny"])
    def test_beats_both_builtin_mappings(self, engine, model):
        """Acceptance: the tuned point beats BOTH built-in mappings at
        the base configuration's defaults, on cycle-verified cycles —
        for a CNN and for an attention model."""
        tuner = Tuner(model, small_chip(), budget=4, top_k=1,
                      engine=engine)
        report = tuner.tune()
        assert report.winner is not None
        assert report.winner_measured["fidelity"] == "cycle"
        for mapping in MAPPINGS:
            assert mapping in report.baselines
            assert report.baselines[mapping]["fidelity"] == "cycle"
            assert (report.winner_measured["cycles"]
                    < report.baselines[mapping]["cycles"])
            assert report.speedups[mapping] > 1.0

    def test_pruning_respects_budget(self, engine):
        tuner = Tuner("vit_tiny", small_chip(), budget=3, top_k=1,
                      engine=engine)
        report = tuner.tune()
        assert report.evaluated == 3
        assert report.pruned == report.considered - 3
        assert report.budget == 3

    def test_config_delta_names_changed_knobs(self, engine):
        tuner = Tuner("vit_tiny", small_chip(), budget=4, top_k=1,
                      engine=engine)
        report = tuner.tune()
        base = small_chip()
        for path, delta in report.config_delta.items():
            section, _, leaf = path.partition(".")
            assert delta["base"] == getattr(
                getattr(base, section), leaf)
        winner = report.winner
        if winner.rob_size != base.core.rob_size:
            assert report.config_delta["core.rob_size"]["tuned"] \
                == winner.rob_size

    def test_zero_recompile_after_round_one(self):
        """Pinned: compile misses == unique program structures (mapping x
        effective shard knobs); every measurement — fast, cycle re-verify,
        baselines — reuses round one's artifacts, and a second tune run
        compiles nothing at all."""
        with Engine(small_chip()) as eng:
            tuner = Tuner("vit_tiny", small_chip(), budget=4, top_k=1,
                          rob_sizes=(8, 16), shard_counts=(1, 4),
                          engine=eng, workers=1)
            tuner.tune()
            stats = eng.compile_stats()
            # structures: 2 mappings x (shards1 + shards4 x 2 placements);
            # ROB size and fidelity share one compile entry per structure.
            assert stats["misses"] == 6
            tuner.tune()
            after = eng.compile_stats()
            assert after["misses"] == 6
            assert after["hits"] > stats["hits"]

    def test_objective_edp_picks_a_winner(self, engine):
        tuner = Tuner("mlp", small_chip(), objective="edp", budget=2,
                      top_k=1, engine=engine)
        report = tuner.tune()
        assert report.objective == "edp"
        assert report.winner is not None
        assert report.winner_measured["energy_pj"] > 0


class TestJournal:
    def test_streams_and_resumes(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        with Engine(small_chip()) as eng:
            tuner = Tuner("vit_tiny", small_chip(), budget=3, top_k=1,
                          rob_sizes=(8, 16), shard_counts=(1, 4),
                          engine=eng)
            first = tuner.tune(journal=journal)
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        # 3 fast + 1 cycle + 2 baselines + summary
        assert sum(1 for r in lines if "key" in r) == 4
        assert sum(1 for r in lines if "baseline" in r) == 2
        assert lines[-1]["summary"]["winner"] == first.winner.key()

        with Engine(small_chip()) as eng:
            tuner = Tuner("vit_tiny", small_chip(), budget=3, top_k=1,
                          rob_sizes=(8, 16), shard_counts=(1, 4),
                          engine=eng)
            second = tuner.tune(journal=journal, resume=True)
        assert second.resumed == 6  # every measurement replayed
        assert second.winner == first.winner
        assert second.winner_measured == first.winner_measured
        assert second.baselines == first.baselines

    def test_torn_tail_terminated_not_concatenated(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        journal.write_text('{"key": "torn-and-unfinish')  # no newline
        with Engine(small_chip()) as eng:
            tuner = Tuner("mlp", small_chip(), budget=1, top_k=1,
                          rob_sizes=(8,), engine=eng)
            tuner.tune(journal=journal, resume=True)
        lines = journal.read_text().splitlines()
        assert lines[0] == '{"key": "torn-and-unfinish'
        for line in lines[1:]:
            json.loads(line)  # every appended record parses

    def test_reader_skips_foreign_and_torn_lines(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        journal.write_text("\n".join([
            json.dumps({"key": "a/rob1/shards1/distance",
                        "fidelity": "fast", "report": {"cycles": 1}}),
            "not json at all",
            json.dumps({"unrelated": True}),
            json.dumps({"baseline": "performance_first",
                        "report": {"cycles": 2}}),
            '{"key": "torn',
        ]))
        done = _read_tune_journal(journal)
        assert ("a/rob1/shards1/distance", "fast") in done
        assert ("baseline", "performance_first") in done
        assert len(done) == 2

    def test_missing_journal_reads_empty(self, tmp_path):
        assert _read_tune_journal(tmp_path / "absent.jsonl") == {}


class TestTuneReport:
    def test_json_round_trip(self, engine):
        tuner = Tuner("vit_tiny", small_chip(), budget=2, top_k=1,
                      rob_sizes=(8, 16), shard_counts=(1, 4),
                      engine=engine)
        report = tuner.tune()
        restored = TuneReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.winner == report.winner
        assert restored.considered == report.considered
        assert restored.pruned == report.pruned

    def test_save_load(self, engine, tmp_path):
        tuner = Tuner("mlp", small_chip(), budget=1, top_k=1,
                      rob_sizes=(8,), engine=engine)
        report = tuner.tune()
        path = tmp_path / "report.json"
        report.save(path)
        assert TuneReport.load(path).to_dict() == report.to_dict()

    def test_summary_readable(self, engine):
        tuner = Tuner("mlp", small_chip(), budget=2, top_k=1,
                      rob_sizes=(1, 8), engine=engine)
        report = tuner.tune()
        text = report.summary()
        assert "winner:" in text
        assert report.winner.key() in text
        assert "baseline performance_first" in text
        assert "pruned" in text


class TestTuneCLI:
    def test_smoke_writes_report_and_journal(self, tmp_path, capsys):
        from repro.runner.cli import main
        report_path = tmp_path / "report.json"
        journal_path = tmp_path / "journal.jsonl"
        code = main(["tune", "mlp", "--preset", "tiny", "--budget", "2",
                     "--top-k", "1", "--report", str(report_path),
                     "--output", str(journal_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "winner:" in out
        report = TuneReport.load(report_path)
        assert report.winner is not None
        records = [json.loads(line)
                   for line in journal_path.read_text().splitlines()]
        assert "summary" in records[-1]

    def test_resume_requires_output(self, capsys):
        from repro.runner.cli import main
        assert main(["tune", "mlp", "--preset", "tiny", "--resume"]) == 2
        assert "--resume requires --output" in capsys.readouterr().err

    def test_fidelity_flags_on_mappings_and_rob(self, capsys):
        from repro.runner.cli import main
        assert main(["mappings", "--model", "mlp", "--preset", "tiny",
                     "--fidelity", "fast"]) == 0
        assert main(["rob", "--model", "mlp", "--preset", "tiny",
                     "--sizes", "1,8", "--fidelity", "fast"]) == 0
        out = capsys.readouterr().out
        assert "normalized" in out
