"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    DeadlockError,
    Event,
    SimulationError,
    Simulator,
)


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0

    def test_call_after_runs_at_right_time(self):
        sim = Simulator()
        seen = []
        sim.call_after(7, lambda _: seen.append(sim.now))
        sim.run()
        assert seen == [7]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(5, lambda _: seen.append(sim.now))
        sim.run()
        assert seen == [5]

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.call_after(10, lambda _: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(3, lambda _: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1, lambda _: None)

    def test_fifo_order_within_same_cycle(self):
        sim = Simulator()
        seen = []
        for tag in "abc":
            sim.call_after(4, lambda _, t=tag: seen.append(t))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_events_interleave_across_times(self):
        sim = Simulator()
        seen = []
        sim.call_after(9, lambda _: seen.append(9))
        sim.call_after(3, lambda _: seen.append(3))
        sim.call_after(6, lambda _: seen.append(6))
        sim.run()
        assert seen == [3, 6, 9]

    def test_run_until_pauses_and_resumes(self):
        sim = Simulator()
        seen = []
        sim.call_after(5, lambda _: seen.append(5))
        sim.call_after(15, lambda _: seen.append(15))
        sim.run(until=10)
        assert seen == [5]
        assert sim.now == 10
        sim.run()
        assert seen == [5, 15]

    def test_stop_halts_processing(self):
        sim = Simulator()
        seen = []
        sim.call_after(1, lambda _: (seen.append(1), sim.stop()))
        sim.call_after(2, lambda _: seen.append(2))
        sim.run()
        assert seen == [1]
        assert sim.pending == 1


class TestProcesses:
    def test_timed_wait(self):
        sim = Simulator()
        log = []

        def proc():
            yield 3
            log.append(sim.now)
            yield 4
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [3, 7]

    def test_zero_delay_yield_resumes_same_cycle(self):
        sim = Simulator()
        log = []

        def proc():
            yield 0
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0]

    def test_event_wait_and_notify(self):
        sim = Simulator()
        ev = Event(sim, "go")
        log = []

        def waiter():
            cause = yield ev
            log.append((sim.now, cause))

        def notifier():
            yield 5
            ev.notify()

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        assert log == [(5, ev)]

    def test_notify_with_delay(self):
        sim = Simulator()
        ev = Event(sim)
        log = []

        def waiter():
            yield ev
            log.append(sim.now)

        sim.spawn(waiter())
        ev.notify(delay=8)
        sim.run()
        assert log == [8]

    def test_notify_wakes_all_waiters(self):
        sim = Simulator()
        ev = Event(sim)
        woken = []

        def waiter(tag):
            yield ev
            woken.append(tag)

        for tag in range(4):
            sim.spawn(waiter(tag))
        ev.notify(delay=1)
        sim.run()
        assert sorted(woken) == [0, 1, 2, 3]

    def test_notify_only_wakes_current_waiters(self):
        """A process that starts waiting after the notify is not woken."""
        sim = Simulator()
        ev = Event(sim)
        woken = []

        def early():
            yield ev
            woken.append("early")

        def late():
            yield 5
            yield ev
            woken.append("late")

        sim.spawn(early())
        late_proc = sim.spawn(late())
        ev.notify(delay=1)
        with pytest.raises(DeadlockError):
            sim.run()
        assert woken == ["early"]
        assert not late_proc.done

    def test_anyof_wakes_on_first(self):
        sim = Simulator()
        a, b = Event(sim, "a"), Event(sim, "b")
        log = []

        def waiter():
            cause = yield AnyOf(a, b)
            log.append((sim.now, cause.name))

        sim.spawn(waiter())
        b.notify(delay=3)
        a.notify(delay=9)
        sim.run()
        assert log == [(3, "b")]

    def test_allof_waits_for_all(self):
        sim = Simulator()
        a, b, c = (Event(sim, n) for n in "abc")
        log = []

        def waiter():
            yield AllOf(a, b, c)
            log.append(sim.now)

        sim.spawn(waiter())
        a.notify(delay=2)
        b.notify(delay=7)
        c.notify(delay=4)
        sim.run()
        assert log == [7]

    def test_anyof_requires_events(self):
        with pytest.raises(ValueError):
            AnyOf()

    def test_allof_requires_events(self):
        with pytest.raises(ValueError):
            AllOf()

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.spawn(proc())
        with pytest.raises(SimulationError, match="unsupported condition"):
            sim.run()

    def test_negative_process_delay_raises(self):
        sim = Simulator()

        def proc():
            yield -3

        sim.spawn(proc())
        with pytest.raises(SimulationError, match="negative delay"):
            sim.run()

    def test_process_done_flag(self):
        sim = Simulator()

        def proc():
            yield 1

        p = sim.spawn(proc())
        assert not p.done
        sim.run()
        assert p.done

    def test_finished_event_fires(self):
        sim = Simulator()
        log = []

        def worker():
            yield 6

        worker_proc = sim.spawn(worker())

        def watcher():
            yield worker_proc.finished
            log.append(sim.now)

        sim.spawn(watcher())
        sim.run()
        assert log == [6]

    def test_finished_event_after_completion(self):
        """Accessing .finished after the process ended still notifies."""
        sim = Simulator()

        def worker():
            yield 1

        p = sim.spawn(worker())
        sim.run()
        log = []

        def watcher():
            yield p.finished
            log.append(sim.now)

        sim.spawn(watcher())
        sim.run()
        assert log == [1]

    def test_nested_generators_via_yield_from(self):
        sim = Simulator()
        log = []

        def inner():
            yield 5
            return 42

        def outer():
            value = yield from inner()
            log.append((sim.now, value))

        sim.spawn(outer())
        sim.run()
        assert log == [(5, 42)]


class TestDeadlockDetection:
    def test_blocked_process_reported(self):
        sim = Simulator()
        ev = Event(sim)

        def stuck():
            yield ev

        sim.spawn(stuck(), name="stucky")
        with pytest.raises(DeadlockError, match="stucky"):
            sim.run()

    def test_no_deadlock_when_all_finish(self):
        sim = Simulator()

        def fine():
            yield 3

        sim.spawn(fine())
        sim.run()  # should not raise

    def test_detection_can_be_disabled(self):
        sim = Simulator()
        ev = Event(sim)

        def stuck():
            yield ev

        sim.spawn(stuck())
        sim.run(detect_deadlock=False)  # no exception


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []
            ev = Event(sim)

            def pinger():
                for _ in range(10):
                    yield 3
                    ev.notify()
                    trace.append(("ping", sim.now))

            def ponger():
                for _ in range(10):
                    yield ev
                    trace.append(("pong", sim.now))

            sim.spawn(pinger())
            sim.spawn(ponger())
            sim.run()
            return trace

        assert run_once() == run_once()
