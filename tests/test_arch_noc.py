"""Tests for the mesh NoC, routing, global memory and flow channels."""

import dataclasses

import pytest

from repro.arch import FlowChannel, GlobalMemory, MeshNoc, xy_route
from repro.arch.energy import EnergyMeter
from repro.config import paper_chip, tiny_chip
from repro.isa import FlowInfo
from repro.sim import Simulator


class TestRouting:
    def test_same_node_empty_route(self):
        assert xy_route((2, 3), (2, 3)) == []

    def test_route_length_is_manhattan_distance(self):
        for src in [(0, 0), (3, 5), (7, 7)]:
            for dst in [(0, 0), (2, 2), (7, 0)]:
                path = xy_route(src, dst)
                expected = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
                assert len(path) == expected

    def test_x_before_y(self):
        path = xy_route((0, 0), (2, 2))
        # first moves change the column (x dimension)
        assert path[0] == ((0, 0), (0, 1))
        assert path[1] == ((0, 1), (0, 2))
        assert path[2] == ((0, 2), (1, 2))

    def test_route_is_connected(self):
        path = xy_route((5, 1), (0, 6))
        for (a, b), (c, _d) in zip(path, path[1:]):
            assert b == c

    def test_route_links_are_unit_steps(self):
        for (r1, c1), (r2, c2) in xy_route((0, 0), (7, 7)):
            assert abs(r1 - r2) + abs(c1 - c2) == 1


def _noc(config=None):
    sim = Simulator()
    config = config or paper_chip()
    return sim, MeshNoc(sim, config, EnergyMeter())


class TestMeshNoc:
    def test_transmit_latency_scales_with_hops(self):
        sim, noc = _noc()
        times = {}

        def sender(tag, dst):
            yield from noc.transmit(0, dst, 64)
            times[tag] = sim.now

        sim.spawn(sender("near", 1))
        sim.run()
        sim2, noc2 = _noc()

        def sender2():
            yield from noc2.transmit(0, 63, 64)
            times["far"] = sim2.now

        sim2.spawn(sender2())
        sim2.run()
        assert times["far"] > times["near"]

    def test_local_transfer_is_free(self):
        sim, noc = _noc()
        done = []

        def sender():
            yield from noc.transmit(5, 5, 1024)
            done.append(sim.now)

        sim.spawn(sender())
        sim.run()
        assert done == [0]
        assert noc.byte_hops == 0

    def test_same_node_accounting(self):
        """A zero-hop message is a real message (the local delivery
        happens, so ``messages_sent``/``bytes_sent`` count it) but it
        touches no link: no byte-hops, no per-link traffic, no NoC energy
        and no latency."""
        sim = Simulator()
        cfg = paper_chip()
        meter = EnergyMeter()
        noc = MeshNoc(sim, cfg, meter)

        def sender():
            yield from noc.transmit(3, 3, 512)

        sim.spawn(sender())
        sim.run()
        assert noc.messages_sent == 1
        assert noc.bytes_sent == 512
        assert noc.byte_hops == 0
        assert noc.link_bytes == {}
        assert meter.pj["noc"] == 0.0
        assert sim.now == 0  # delivered without advancing time

    def test_contention_serializes_shared_link(self):
        cfg = paper_chip()
        sim, noc = _noc(cfg)
        finish = []

        def sender():
            yield from noc.transmit(0, 1, 320)
            finish.append(sim.now)

        sim.spawn(sender())
        sim.spawn(sender())
        sim.run()
        # second message waits for the first on the single 0->1 link
        assert finish[1] >= 2 * (finish[0] - 0)

    def test_no_contention_mode(self):
        cfg = paper_chip()
        cfg = dataclasses.replace(cfg, noc=dataclasses.replace(
            cfg.noc, model_contention=False))
        sim, noc = _noc(cfg)
        finish = []

        def sender():
            yield from noc.transmit(0, 1, 320)
            finish.append(sim.now)

        sim.spawn(sender())
        sim.spawn(sender())
        sim.run()
        assert finish[0] == finish[1]

    def test_no_contention_cycle_count(self):
        """Pin the single-yield fast path: an uncontended traversal takes
        exactly hops * (hop_cycles + serialization) and a multi-process
        mix (mesh + gmem port) stays cycle-deterministic."""
        cfg = tiny_chip()
        cfg = dataclasses.replace(cfg, noc=dataclasses.replace(
            cfg.noc, model_contention=False))
        sim = Simulator()
        meter = EnergyMeter()
        noc = MeshNoc(sim, cfg, meter)
        gmem = GlobalMemory(sim, cfg, noc, meter)
        finish = {}

        def sender(tag, src, dst, nbytes):
            yield from noc.transmit(src, dst, nbytes)
            finish[tag] = sim.now

        def loader(tag, core, nbytes):
            yield from gmem.access(core, nbytes, write=False)
            finish[tag] = sim.now

        sim.spawn(sender("mesh", 0, 3, 96))       # 2 hops on the 2x2 mesh
        sim.spawn(loader("near_load", 1, 64))     # 1 hop to gmem at (0,0)
        sim.spawn(loader("far_load", 3, 64))      # 2 hops, loses the port
        sim.run()
        per_hop = cfg.noc.hop_cycles + -(-96 // cfg.noc.link_bytes_per_cycle)
        assert finish["mesh"] == 2 * per_hop
        gmem_cost = cfg.chip.global_memory_latency_cycles \
            + -(-64 // cfg.chip.global_memory_bytes_per_cycle)
        hop64 = cfg.noc.hop_cycles + -(-64 // cfg.noc.link_bytes_per_cycle)
        assert finish["near_load"] == hop64 + gmem_cost
        # the far core reaches the port second and waits for it
        assert finish["far_load"] == max(2 * hop64, finish["near_load"]) \
            + gmem_cost

    def test_traffic_accounting(self):
        sim, noc = _noc()

        def sender():
            yield from noc.transmit(0, 2, 100)

        sim.spawn(sender())
        sim.run()
        assert noc.messages_sent == 1
        assert noc.bytes_sent == 100
        assert noc.byte_hops == 200  # 2 hops

    def test_noc_energy_charged(self):
        cfg = paper_chip()
        sim = Simulator()
        meter = EnergyMeter()
        noc = MeshNoc(sim, cfg, meter)

        def sender():
            yield from noc.transmit(0, 1, 100)

        sim.spawn(sender())
        sim.run()
        assert meter.pj["noc"] == pytest.approx(
            cfg.energy.noc_pj_per_byte_hop * 100)


class TestGlobalMemory:
    def test_access_pays_latency_and_bandwidth(self):
        cfg = tiny_chip()
        sim = Simulator()
        meter = EnergyMeter()
        noc = MeshNoc(sim, cfg, meter)
        gmem = GlobalMemory(sim, cfg, noc, meter)
        done = []

        def reader():
            yield from gmem.access(0, 320, write=False)
            done.append(sim.now)

        sim.spawn(reader())
        sim.run()
        min_cycles = cfg.chip.global_memory_latency_cycles \
            + 320 // cfg.chip.global_memory_bytes_per_cycle
        assert done[0] >= min_cycles
        assert gmem.bytes_read == 320

    def test_port_serializes_concurrent_access(self):
        cfg = tiny_chip()
        sim = Simulator()
        meter = EnergyMeter()
        noc = MeshNoc(sim, cfg, meter)
        gmem = GlobalMemory(sim, cfg, noc, meter)
        finish = []

        def writer():
            yield from gmem.access(0, 64, write=True)
            finish.append(sim.now)

        sim.spawn(writer())
        sim.spawn(writer())
        sim.run()
        assert finish[1] > finish[0]
        assert gmem.bytes_written == 128

    def test_energy_charged_per_byte(self):
        cfg = tiny_chip()
        sim = Simulator()
        meter = EnergyMeter()
        gmem = GlobalMemory(sim, cfg, MeshNoc(sim, cfg, meter), meter)

        def reader():
            yield from gmem.access(1, 50, write=False)

        sim.spawn(reader())
        sim.run()
        assert meter.pj["global_mem"] == pytest.approx(
            cfg.energy.global_mem_pj_per_byte * 50)


def _flow(sim, noc, window=2, n=8):
    info = FlowInfo(flow_id=0, src_core=0, dst_core=1, layer="l",
                    n_messages=n, bytes_per_message=64, window=window)
    return FlowChannel(sim, info, noc, window)


class TestFlowChannel:
    def test_messages_arrive_in_order(self):
        sim, noc = _noc(tiny_chip())
        flow = _flow(sim, noc, window=4)
        got = []

        def sender():
            for _ in range(4):
                yield from flow.send(64)

        def receiver():
            for seq in range(4):
                yield from flow.recv(seq)
                got.append((seq, sim.now))

        sim.spawn(sender())
        sim.spawn(receiver())
        sim.run()
        assert [g[0] for g in got] == [0, 1, 2, 3]
        assert all(b[1] >= a[1] for a, b in zip(got, got[1:]))

    def test_window_blocks_sender(self):
        sim, noc = _noc(tiny_chip())
        flow = _flow(sim, noc, window=2)
        sent = []

        def sender():
            for i in range(4):
                yield from flow.send(64)
                sent.append((i, sim.now))

        def receiver():
            yield 500
            for seq in range(4):
                yield from flow.recv(seq)

        sim.spawn(sender())
        sim.spawn(receiver())
        sim.run()
        # messages 0,1 go immediately; 2,3 wait for the receiver at 500
        assert sent[1][1] < 500
        assert sent[2][1] >= 500
        assert flow.stall_cycles > 0

    def test_out_of_order_recv_rejected(self):
        sim, noc = _noc(tiny_chip())
        flow = _flow(sim, noc)

        def receiver():
            yield from flow.recv(3)

        sim.spawn(receiver())
        with pytest.raises(RuntimeError, match="out of order"):
            sim.run()

    def test_recv_blocks_until_arrival(self):
        sim, noc = _noc(tiny_chip())
        flow = _flow(sim, noc)
        got_at = []

        def receiver():
            yield from flow.recv(0)
            got_at.append(sim.now)

        def sender():
            yield 100
            yield from flow.send(64)

        sim.spawn(receiver())
        sim.spawn(sender())
        sim.run()
        assert got_at[0] >= 100

    def test_outstanding_counter(self):
        sim, noc = _noc(tiny_chip())
        flow = _flow(sim, noc, window=4)

        def sender():
            yield from flow.send(64)
            yield from flow.send(64)

        sim.spawn(sender())
        sim.run(detect_deadlock=False)
        assert flow.outstanding == 2
