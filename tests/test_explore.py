"""Tests for the design-space exploration API."""

import pytest

from repro.config import ConfigError, small_chip
from repro.explore import (
    ExplorationPoint,
    explore,
    pareto_front,
    with_param,
)


class TestWithParam:
    def test_nested_field(self):
        cfg = with_param(small_chip(), "core.rob_size", 13)
        assert cfg.core.rob_size == 13

    def test_special_cores_path(self):
        cfg = with_param(small_chip(), "chip.cores", 4)
        assert cfg.chip.n_cores == 4

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="core.flux"):
            with_param(small_chip(), "core.flux", 1)

    def test_unknown_field_error_names_path_and_valid_keys(self):
        with pytest.raises(ValueError) as excinfo:
            with_param(small_chip(), "core.flux", 1)
        message = str(excinfo.value)
        assert "'core.flux'" in message          # the full dotted path
        assert "'flux'" in message               # the failing segment
        assert "rob_size" in message             # valid keys at that level
        assert "vector_lanes" in message

    def test_unknown_section_error_names_sections(self):
        with pytest.raises(ValueError) as excinfo:
            with_param(small_chip(), "cor.rob_size", 1)
        message = str(excinfo.value)
        assert "'cor.rob_size'" in message
        assert "compiler" in message and "crossbar" in message

    def test_path_through_leaf_rejected(self):
        with pytest.raises(ValueError, match="leaf"):
            with_param(small_chip(), "core.rob_size.bits", 1)

    def test_invalid_value_rejected_by_validation(self):
        with pytest.raises(ConfigError):
            with_param(small_chip(), "core.rob_size", 0)

    def test_original_config_untouched(self):
        base = small_chip()
        with_param(base, "core.rob_size", 2)
        assert base.core.rob_size != 2 or True
        assert base == small_chip()


def _fake_point(latency, energy, **params):
    class _Stub:
        cycles = latency
        total_energy_pj = energy
    return ExplorationPoint(params=tuple(params.items()), report=_Stub())


class TestParetoFront:
    def test_single_point_is_front(self):
        p = _fake_point(10, 10.0)
        assert pareto_front([p]) == [p]

    def test_dominated_point_excluded(self):
        good = _fake_point(10, 10.0)
        bad = _fake_point(20, 20.0)
        assert pareto_front([good, bad]) == [good]

    def test_tradeoff_points_both_kept(self):
        fast = _fake_point(10, 100.0)
        frugal = _fake_point(100, 10.0)
        front = pareto_front([fast, frugal])
        assert set(map(id, front)) == {id(fast), id(frugal)}

    def test_duplicate_points_one_representative(self):
        a = _fake_point(10, 10.0)
        b = _fake_point(10, 10.0)
        front = pareto_front([a, b])
        assert len(front) == 1
        assert front[0] is a  # first in input order wins, deterministically

    def test_empty_input_empty_front(self):
        assert pareto_front([]) == []

    def test_all_dominated_single_survivor(self):
        best = _fake_point(1, 1.0)
        pts = [_fake_point(10, 10.0), best, _fake_point(5, 5.0),
               _fake_point(2, 2.0)]
        assert pareto_front(pts) == [best]

    def test_all_ties_single_representative(self):
        pts = [_fake_point(7, 3.0) for _ in range(5)]
        front = pareto_front(pts)
        assert len(front) == 1
        assert front[0] is pts[0]

    def test_deterministic_across_orders(self):
        a, b, c = (_fake_point(10, 100.0), _fake_point(100, 10.0),
                   _fake_point(10, 100.0))
        first = [(p.latency, p.energy) for p in pareto_front([a, b, c])]
        second = [(p.latency, p.energy) for p in pareto_front([c, b, a])]
        assert first == second == [(10, 100.0), (100, 10.0)]

    def test_front_sorted_by_latency(self):
        pts = [_fake_point(100, 10.0), _fake_point(10, 100.0),
               _fake_point(50, 50.0)]
        front = pareto_front(pts)
        latencies = [p.latency for p in front]
        assert latencies == sorted(latencies)


class TestExplore:
    @pytest.fixture(scope="class")
    def exploration(self):
        return explore("mlp", small_chip(), {
            "core.rob_size": [1, 8],
            "noc.hop_cycles": [2, 8],
        })

    def test_full_grid_evaluated(self, exploration):
        assert len(exploration.points) == 4
        assert not exploration.failures

    def test_params_recorded(self, exploration):
        combos = {p.params for p in exploration.points}
        assert (("core.rob_size", 1), ("noc.hop_cycles", 2)) in combos

    def test_best_latency_is_minimum(self, exploration):
        best = exploration.best_latency()
        assert best.latency == min(p.latency for p in exploration.points)

    def test_pareto_subset_of_points(self, exploration):
        front = exploration.pareto()
        assert front
        ids = {id(p) for p in exploration.points}
        assert all(id(p) in ids for p in front)

    def test_table_lists_all_points(self, exploration):
        text = exploration.table()
        assert text.count("rob_size=") == 4
        assert "*" in text

    def test_infeasible_points_recorded_as_failures(self):
        ex = explore("vgg16", small_chip(), {
            "core.crossbars_per_core": [2, 128],
        })
        assert ex.failures          # 2 crossbars/core cannot host vgg16
        assert ex.points            # 128 can
        assert "failed" in ex.table()


def test_explore_records_empty_exception_messages():
    """A failing design point with an empty error message is recorded as a
    failure (by exception type) instead of aborting the sweep."""
    from repro.explore.space import _first_line

    assert _first_line(ValueError("boom")) == "boom"
    assert _first_line(ValueError()) == "ValueError"
    assert _first_line(ValueError("a\nb")) == "a"
