"""Tests for weight bit-slicing (multi-bit weights across columns)."""

import dataclasses

import pytest

from repro import simulate
from repro.compiler import build_pipeline, compile_network, weight_tiling
from repro.config import ConfigError, CrossbarConfig, validate
from tests.conftest import build_chain_net


def _sliced(cfg):
    return dataclasses.replace(cfg, crossbar=dataclasses.replace(
        cfg.crossbar, bit_sliced=True))


class TestConfig:
    def test_default_is_unsliced(self):
        assert CrossbarConfig().slices_per_weight == 1

    def test_slices_from_precisions(self):
        xbar = CrossbarConfig(weight_bits=8, cell_bits=2, bit_sliced=True)
        assert xbar.slices_per_weight == 4

    def test_partial_slice_rounds_up(self):
        xbar = CrossbarConfig(weight_bits=8, cell_bits=3, bit_sliced=True)
        assert xbar.slices_per_weight == 3

    def test_slices_exceeding_columns_rejected(self, tiny_cfg):
        bad = dataclasses.replace(tiny_cfg, crossbar=dataclasses.replace(
            tiny_cfg.crossbar, bit_sliced=True, weight_bits=256,
            cell_bits=1, cols=64))
        with pytest.raises(ConfigError, match="bit_sliced"):
            validate(bad)


class TestTiling:
    def test_column_multiplier_expands_cols(self, chain_net):
        pipe = build_pipeline(chain_net)
        stage = pipe.stage("conv1")
        dense = weight_tiling(stage, 128, 128, 1)
        sliced = weight_tiling(stage, 128, 128, 4)
        assert sliced.cols == dense.cols * 4
        assert sliced.crossbars_per_copy >= dense.crossbars_per_copy

    def test_crossbar_demand_grows(self, small_cfg):
        # channels wide enough that 4x columns spills into extra blocks
        net = build_chain_net(channels=64, size=8)
        dense = compile_network(net, small_cfg)
        sliced = compile_network(net, _sliced(small_cfg))
        dense_tiles = {n: p.tiling.crossbars_per_copy
                       for n, p in dense.placement.plans.items()}
        sliced_tiles = {n: p.tiling.crossbars_per_copy
                        for n, p in sliced.placement.plans.items()}
        assert all(sliced_tiles[n] >= dense_tiles[n] for n in dense_tiles)
        assert any(sliced_tiles[n] > dense_tiles[n] for n in dense_tiles)


class TestEndToEnd:
    def test_sliced_network_runs(self, chain_net, small_cfg):
        report = simulate(chain_net, _sliced(small_cfg))
        assert report.cycles > 0

    def test_slicing_costs_latency_and_energy(self, small_cfg):
        net = build_chain_net(channels=16, size=16)
        dense = simulate(net, small_cfg)
        sliced = simulate(net, _sliced(small_cfg))
        assert sliced.cycles >= dense.cycles
        assert sliced.total_energy_pj > dense.total_energy_pj

    def test_adc_energy_scales_with_slices(self, small_cfg):
        net = build_chain_net(channels=16, size=16)
        dense = simulate(net, small_cfg)
        sliced = simulate(net, _sliced(small_cfg))
        # 4x the physical columns -> ~4x the ADC conversions
        ratio = sliced.energy_pj["adc"] / dense.energy_pj["adc"]
        assert ratio > 2.0
