"""Tests for the public API, reports, sweeps and CLI."""

import json

import pytest

from repro import simulate
from repro.analysis import (
    ascii_bars,
    comm_ratios,
    energy_breakdown,
    normalize,
    nth_conv_layer,
    series_table,
    unit_breakdown,
)
from repro.config import small_chip, tiny_chip
from repro.runner import compare_mappings, compare_with_baseline, sweep_rob
from repro.runner.cli import main
from tests.conftest import build_chain_net


@pytest.fixture(scope="module")
def chain_report():
    return simulate(build_chain_net(), small_chip())


class TestSimulateApi:
    def test_accepts_model_name(self):
        report = simulate("vgg8", small_chip())
        assert report.network == "vgg8"
        assert report.cycles > 0

    def test_accepts_graph(self, chain_report):
        assert chain_report.network == "chain"

    def test_mapping_override(self):
        report = simulate(build_chain_net(), small_chip(),
                          mapping="utilization_first")
        assert report.mapping == "utilization_first"

    def test_rob_override_changes_latency(self):
        wide = simulate(build_chain_net(), small_chip(), rob_size=16)
        narrow = simulate(build_chain_net(), small_chip(), rob_size=1)
        assert wide.cycles < narrow.cycles

    def test_default_config_is_paper_chip(self):
        report = simulate(build_chain_net())
        assert report.config_name == "paper-64core"

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            simulate("nonexistent_net", tiny_chip())


class TestReport:
    def test_derived_metrics_consistent(self, chain_report):
        r = chain_report
        assert r.seconds == pytest.approx(r.cycles * 1e-9)  # 1 GHz
        assert r.total_energy_pj == pytest.approx(sum(r.energy_pj.values()))
        assert r.avg_power_mw == pytest.approx(
            r.total_energy_pj * 1e-12 / r.seconds * 1e3)

    def test_comm_ratio_bounds(self, chain_report):
        for layer in chain_report.layer_names():
            assert 0.0 <= chain_report.comm_ratio(layer) <= 1.0

    def test_json_roundtrip(self, chain_report, tmp_path):
        path = tmp_path / "report.json"
        chain_report.save(path)
        data = json.loads(path.read_text())
        assert data["cycles"] == chain_report.cycles
        assert data["network"] == "chain"

    def test_summary_mentions_key_numbers(self, chain_report):
        text = chain_report.summary()
        assert f"{chain_report.cycles:,}" in text
        assert "uJ" in text


class TestSweeps:
    def test_compare_mappings_shape(self):
        cmp = compare_mappings(build_chain_net(), small_chip())
        assert cmp.utilization.mapping == "utilization_first"
        assert cmp.performance.mapping == "performance_first"
        assert cmp.latency_ratio > 0
        assert cmp.energy_ratio > 0

    def test_sweep_rob_normalization(self):
        sweep = sweep_rob(build_chain_net(), small_chip(), sizes=(1, 8))
        norm = sweep.normalized_latency()
        assert norm[1] == 1.0
        assert norm[8] <= 1.0

    def test_compare_with_baseline(self):
        cmp = compare_with_baseline(build_chain_net(), small_chip())
        assert cmp.baseline_cycles > 0
        assert cmp.latency_vs_baseline > 0
        assert cmp.baseline_comm_ratio


class TestAnalysis:
    def test_unit_breakdown_sums_layer_busy(self, chain_report):
        totals = unit_breakdown(chain_report)
        manual = 0
        for busy in chain_report.layer_busy.values():
            manual += sum(busy.values())
        assert sum(totals.values()) == manual

    def test_comm_ratios_keys(self, chain_report):
        ratios = comm_ratios(chain_report)
        assert set(ratios) == set(chain_report.layer_names())

    def test_energy_breakdown_sums_to_one(self, chain_report):
        shares = energy_breakdown(chain_report)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_nth_conv_layer(self, chain_report):
        assert nth_conv_layer(chain_report, 1) == "conv1"
        assert nth_conv_layer(chain_report, 2) == "conv2"
        with pytest.raises(IndexError):
            nth_conv_layer(chain_report, 99)

    def test_normalize_to_reference(self):
        out = normalize({"a": 2.0, "b": 4.0}, reference="a")
        assert out == {"a": 1.0, "b": 2.0}

    def test_normalize_default_max(self):
        out = normalize({"a": 2.0, "b": 4.0})
        assert out["b"] == 1.0

    def test_normalize_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize({"a": 0.0}, reference="a")

    def test_ascii_bars_renders_all_rows(self):
        text = ascii_bars({"one": 1.0, "two": 0.5}, title="t")
        assert "one" in text and "two" in text and "t" in text

    def test_ascii_bars_empty(self):
        assert "(no data)" in ascii_bars({})

    def test_series_table_alignment(self):
        text = series_table({"r1": {"c1": 1.0, "c2": 2.0},
                             "r2": {"c1": 3.0}})
        assert "c1" in text and "r2" in text
        assert "-" in text  # missing cell placeholder


class TestCli:
    def test_models_listing(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "resnet18" in out

    def test_presets_listing(self, capsys):
        assert main(["presets"]) == 0
        assert "paper" in capsys.readouterr().out

    def test_run_small(self, capsys):
        assert main(["run", "--model", "vgg8", "--preset", "small"]) == 0
        out = capsys.readouterr().out
        assert "latency" in out

    def test_run_writes_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["run", "--model", "vgg8", "--preset", "small",
                     "--json", str(path)]) == 0
        assert json.loads(path.read_text())["network"] == "vgg8"

    def test_compile_listing(self, capsys):
        assert main(["compile", "--model", "vgg8", "--preset", "small",
                     "--listing", "5"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out

    def test_config_file_loading(self, tmp_path, capsys):
        cfg = small_chip()
        path = tmp_path / "arch.json"
        cfg.save(path)
        assert main(["run", "--model", "vgg8", "--config", str(path)]) == 0
        assert "small-16core" in capsys.readouterr().out
