"""End-to-end integration tests: the paper's experimental claims in
miniature (fast configs), plus cross-mapping/topology robustness.

These assert the *shape* of each result (who wins, monotonicity), which is
what EXPERIMENTS.md tracks at full scale.
"""

import pytest

from repro import simulate
from repro.baseline import run_baseline
from repro.config import small_chip
from repro.models import build_model
from tests.conftest import build_branch_net, build_chain_net, build_residual_net


NETS = [build_chain_net, build_residual_net, build_branch_net]


class TestRobustness:
    @pytest.mark.parametrize("builder", NETS, ids=lambda b: b.__name__)
    @pytest.mark.parametrize("mapping", ["performance_first",
                                         "utilization_first"])
    def test_all_topologies_complete(self, builder, mapping, small_cfg):
        report = simulate(builder(), small_cfg, mapping=mapping)
        assert report.cycles > 0
        assert report.total_energy_pj > 0

    @pytest.mark.parametrize("rob", [1, 2, 4, 16])
    def test_residual_completes_across_rob_sizes(self, rob, small_cfg):
        report = simulate(build_residual_net(), small_cfg, rob_size=rob)
        assert report.cycles > 0

    def test_imagenet_scale_network_compiles_and_runs(self):
        """One bigger-resolution network to exercise larger tile counts."""
        net = build_chain_net(size=32, channels=16)
        report = simulate(net, small_chip())
        assert report.cycles > 0

    def test_simulation_is_deterministic(self, small_cfg):
        a = simulate(build_residual_net(), small_cfg)
        b = simulate(build_residual_net(), small_cfg)
        assert a.cycles == b.cycles
        assert a.total_energy_pj == pytest.approx(b.total_energy_pj)


class TestFig3Shape:
    """Performance-first beats utilization-first (Fig. 3), miniature."""

    @pytest.mark.parametrize("name", ["alexnet", "resnet18"])
    def test_performance_first_wins_latency(self, name, small_cfg):
        cfg = small_cfg.with_rob_size(1)
        perf = simulate(name, cfg, mapping="performance_first")
        util = simulate(name, cfg, mapping="utilization_first")
        assert perf.cycles < util.cycles

    def test_performance_first_wins_energy(self, small_cfg):
        cfg = small_cfg.with_rob_size(1)
        perf = simulate("resnet18", cfg, mapping="performance_first")
        util = simulate("resnet18", cfg, mapping="utilization_first")
        assert perf.total_energy_pj < util.total_energy_pj

    def test_utilization_first_uses_fewer_cores(self, small_cfg):
        perf = simulate("alexnet", small_cfg, mapping="performance_first")
        util = simulate("alexnet", small_cfg, mapping="utilization_first")
        assert util.cores_used <= perf.cores_used


class TestFig4Shape:
    """Latency falls with ROB size, with diminishing returns (Fig. 4)."""

    def test_latency_monotone_nonincreasing(self, small_cfg):
        cycles = [simulate("alexnet", small_cfg, rob_size=r).cycles
                  for r in (1, 4, 8, 16)]
        assert all(b <= a * 1.01 for a, b in zip(cycles, cycles[1:]))

    def test_diminishing_returns(self, small_cfg):
        c1 = simulate("resnet18", small_cfg, rob_size=1).cycles
        c4 = simulate("resnet18", small_cfg, rob_size=4).cycles
        c12 = simulate("resnet18", small_cfg, rob_size=12).cycles
        c16 = simulate("resnet18", small_cfg, rob_size=16).cycles
        early_gain = c1 - c4
        late_gain = c12 - c16
        assert early_gain > late_gain


class TestFig5Shape:
    """Sync communication costs more than ideal-async, and more so on
    join-heavy topologies (Fig. 5)."""

    def test_baseline_not_slower_than_ours_on_chains(self, small_cfg):
        net = build_model("vgg8")
        ours = simulate(net, small_cfg)
        base = run_baseline(net, small_cfg)
        # the behaviour-level model never pays sync/contention costs
        assert base.cycles <= ours.cycles * 1.5

    def test_join_topology_pays_more_than_chain(self, small_cfg):
        """Ours/baseline ratio is worse for the residual net than the
        chain — synchronized transfers penalize joins (the Fig. 5 story).
        Measured on a narrow NoC (the comm-bound regime of Section IV-B).
        """
        import dataclasses
        cfg = dataclasses.replace(small_cfg, noc=dataclasses.replace(
            small_cfg.noc, link_bytes_per_cycle=2, hop_cycles=4))
        ratios = {}
        for name in ("vgg8", "resnet18"):
            net = build_model(name)
            ours = simulate(net, cfg)
            base = run_baseline(net, cfg)
            ratios[name] = ours.cycles / base.cycles
        assert ratios["resnet18"] >= ratios["vgg8"] * 0.95


class TestProgramExecutionInvariants:
    def test_all_instructions_retire(self, small_cfg):
        from repro.arch import ChipModel
        from repro.compiler import compile_network
        result = compile_network(build_residual_net(), small_cfg)
        model = ChipModel(result.program, small_cfg)
        model.run()
        for core_id, program in result.program.programs.items():
            core = model.cores[core_id]
            # every instruction except HALT goes through the ROB
            assert core.rob.retired_count == len(program) - 1
            assert core.rob.empty

    def test_noc_bytes_match_flow_declarations(self, small_cfg):
        from repro.arch import ChipModel
        from repro.compiler import compile_network
        result = compile_network(build_chain_net(), small_cfg)
        model = ChipModel(result.program, small_cfg)
        raw = model.run()
        declared = sum(
            min(f.n_messages, f.n_messages) * f.bytes_per_message
            for f in result.program.flows.values())
        # gmem traffic also crosses the NoC; sent bytes >= flow payloads
        assert raw.noc["bytes"] >= declared * 0.5

    def test_energy_scales_with_work(self, small_cfg):
        small = simulate(build_chain_net(size=8), small_cfg)
        large = simulate(build_chain_net(size=16), small_cfg)
        assert large.energy_pj["xbar"] > small.energy_pj["xbar"]
        assert large.energy_pj["adc"] > small.energy_pj["adc"]
